#include "comm/remote_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

#include "util/audit.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace vela::comm {

namespace {

using session::encode_ctrl_record;
using session::encode_data_record;
using session::kRecAck;
using session::kRecData;
using session::kRecGoodbye;
using session::kRecHello;
using session::Record;
using session::RecordParser;
using session::write_all;
using session::write_all_timed;

// Handshake budgets: real-time bounds on a loopback round trip, not
// protocol time (same rationale as the loopback SocketTransport).
constexpr int kHandshakeBudgetMs = 2000;
constexpr int kReplayBudgetMs = 5000;

}  // namespace

class RemoteSocketTransport::Impl {
 public:
  using Role = RemoteSocketTransport::Role;

  Impl(Role role, const session::PeerIdentity& id, util::Clock* clock,
       ReconnectPolicy policy, std::uint16_t dial_port, PeerListener* listener)
      : role_(role),
        id_(id),
        clock_(clock != nullptr ? clock : &util::system_clock()),
        policy_(policy),
        dial_port_(dial_port),
        listener_(listener),
        jitter_rng_(policy.jitter_seed) {}

  // --- establishment --------------------------------------------------------

  void connect_as_dialer() {
    std::shared_ptr<Conn> conn;
    for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
      if (attempt > 1) backoff_sleep(attempt);
      conn = dial_once();
      if (conn != nullptr) break;
    }
    VELA_CHECK_MSG(conn != nullptr,
                   "remote transport: could not reach master on port "
                       << dial_port_ << " after " << policy_.max_attempts
                       << " attempt(s)");
    publish(conn);
  }

  void adopt_peer(AcceptedPeer peer) {
    VELA_CHECK_MSG(peer.valid(), "remote transport: adopt of an invalid peer");
    auto conn = std::make_shared<Conn>();
    conn->fd = peer.fd;
    if (!peer.leftover.empty()) {
      conn->parser.feed(peer.leftover.data(), peer.leftover.size());
    }
    if (role_ == Role::kReceiver) {
      // Receiver offers its hello on (re)connect; on first contact that is
      // hello(0), which the sender prunes as a no-op.
      const auto hello = encode_ctrl_record(
          kRecHello, next_expected_.load(std::memory_order_acquire));
      std::lock_guard<std::mutex> wl(conn->write_mutex);
      write_all(conn->fd, hello.data(), hello.size());
    }
    publish(conn);
  }

  // --- Transport API --------------------------------------------------------

  bool send(const std::vector<std::uint8_t>& frame) {
    VELA_CHECK_MSG(role_ == Role::kSender,
                   "send() on a receiver-role remote transport");
    std::lock_guard<std::mutex> op(op_mutex_);
    if (closed_.load(std::memory_order_acquire)) return false;

    std::shared_ptr<Conn> conn = snapshot();
    std::vector<std::uint8_t> record;
    {
      std::lock_guard<std::mutex> st(state_mutex_);
      const std::uint64_t seq = next_seq_++;
      record = encode_data_record(seq, frame);
      replay_.emplace_back(seq, frame);
      std::lock_guard<std::mutex> sl(stats_mutex_);
      ++stats_.frames_sent;
    }
    drain_inbound(conn);

    bool wrote = false;
    {
      std::lock_guard<std::mutex> wl(conn->write_mutex);
      wrote = write_all(conn->fd, record.data(), record.size());
    }
    if (wrote) return true;
    // Write failed: the connection is gone. recover() replays everything
    // unacknowledged — including this frame — so a successful resume means
    // the frame is on the wire.
    return recover(conn);
  }

  // `timeout_ms` < 0 blocks indefinitely, 0 polls.
  PopStatus receive_within(long timeout_ms, std::vector<std::uint8_t>* out) {
    VELA_CHECK_MSG(role_ == Role::kReceiver,
                   "receive() on a sender-role remote transport");
    std::lock_guard<std::mutex> op(op_mutex_);
    // Poll deadlines are OS-level waits, the injection point itself.
    // vela-lint: allow(naked-clock)
    const auto deadline =
        timeout_ms < 0
            ? std::chrono::steady_clock::time_point::max()
            // vela-lint: allow(naked-clock)
            : std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
    while (true) {
      if (closed_.load(std::memory_order_acquire) && !goodbye_received_) {
        // Locally closed receiver: report end-of-stream.
        return PopStatus::kClosed;
      }
      std::shared_ptr<Conn> conn = snapshot();
      Record rec;
      if (conn->parser.next(&rec)) {
        if (rec.type == kRecData) {
          const std::uint64_t expected =
              next_expected_.load(std::memory_order_acquire);
          if (rec.seq == expected) {
            next_expected_.store(expected + 1, std::memory_order_release);
            send_ack(conn, expected + 1);
            *out = std::move(rec.frame);
            return PopStatus::kOk;
          }
          VELA_CHECK_MSG(rec.seq < expected,
                         "session resume broke ordering: got seq "
                             << rec.seq << ", expected " << expected);
          // Replayed record we already delivered: discard (exactly-once)
          // and re-ack so the sender prunes its replay buffer.
          {
            std::lock_guard<std::mutex> sl(stats_mutex_);
            ++stats_.duplicates_discarded;
          }
          send_ack(conn, expected);
          continue;
        }
        VELA_CHECK_MSG(rec.type == kRecGoodbye,
                       "unexpected session record on data direction: "
                           << static_cast<int>(rec.type));
        goodbye_received_ = true;
        continue;
      }
      if (goodbye_received_) return PopStatus::kClosed;
      if (dead_.load(std::memory_order_acquire)) return PopStatus::kClosed;
      if (conn->eof) {
        // EOF without goodbye: connection lost, not closed — resume.
        if (!recover(conn)) return PopStatus::kClosed;
        continue;
      }

      int wait_ms = -1;
      if (timeout_ms >= 0) {
        // vela-lint: allow(naked-clock)
        const auto remaining = deadline - std::chrono::steady_clock::now();
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
                .count();
        if (ms < 0 && timeout_ms != 0) return PopStatus::kTimeout;
        wait_ms = ms < 0 ? 0 : static_cast<int>(ms);
      }
      pollfd pfd{};
      pfd.fd = conn->fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        VELA_CHECK_MSG(false, "poll(): " + std::string(std::strerror(errno)));
      }
      if (ready == 0) {
        if (timeout_ms == 0) return PopStatus::kTimeout;
        continue;  // re-check the deadline at the loop top
      }
      std::uint8_t buf[65536];
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET || errno == EPIPE) {
          conn->eof = true;
          continue;
        }
        VELA_CHECK_MSG(false, "recv(): " + std::string(std::strerror(errno)));
      }
      if (n == 0) {
        conn->eof = true;
        continue;
      }
      conn->parser.feed(buf, static_cast<std::size_t>(n));
    }
  }

  void close() {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    std::shared_ptr<Conn> conn = snapshot();
    if (conn == nullptr) return;
    if (role_ == Role::kSender) {
      // Goodbye after the last complete record, then FIN: close-then-drain
      // for the remote receiver, exactly the loopback contract.
      const auto bye = encode_ctrl_record(kRecGoodbye, 0);
      std::lock_guard<std::mutex> wl(conn->write_mutex);
      write_all(conn->fd, bye.data(), bye.size());
      ::shutdown(conn->fd, SHUT_WR);
    } else {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  SessionStats session_stats() const {
    std::lock_guard<std::mutex> sl(stats_mutex_);
    return stats_;
  }

  const session::PeerIdentity& identity() const { return id_; }

  void sever_for_testing() {
    std::shared_ptr<Conn> conn = snapshot();
    if (conn != nullptr) ::shutdown(conn->fd, SHUT_RDWR);
  }

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mutex;  // serializes writers (data/replay/ack/bye)
    RecordParser parser;     // inbound stream (data or acks, per role)
    bool eof = false;

    ~Conn() {
      if (fd >= 0) ::close(fd);
    }
  };

  std::shared_ptr<Conn> snapshot() const {
    std::lock_guard<std::mutex> lock(conn_ptr_mutex_);
    return conn_;
  }

  void publish(const std::shared_ptr<Conn>& conn) {
    std::lock_guard<std::mutex> lock(conn_ptr_mutex_);
    conn_ = conn;
  }

  void backoff_sleep(int attempt) {
    const auto base = policy_.backoff_base.count();
    double delay = static_cast<double>(base);
    for (int k = 2; k < attempt; ++k) delay *= policy_.backoff_multiplier;
    delay = std::min(delay, static_cast<double>(policy_.backoff_max.count()));
    std::int64_t jitter = 0;
    {
      std::lock_guard<std::mutex> st(state_mutex_);
      jitter = static_cast<std::int64_t>(
          jitter_rng_.uniform_index(static_cast<std::uint64_t>(base) + 1));
    }
    clock_->sleep_for(
        std::chrono::milliseconds(static_cast<std::int64_t>(delay) + jitter));
  }

  // One dial + identify (+ hello for the receiver role). nullptr on failure.
  std::shared_ptr<Conn> dial_once() {
    const int fd = session::dial_socket(dial_port_);
    if (fd < 0) return nullptr;
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    const auto ident = session::encode_ident_record(id_);
    if (!write_all_timed(fd, ident.data(), ident.size(), kHandshakeBudgetMs)) {
      return nullptr;  // Conn dtor closes fd
    }
    if (role_ == Role::kReceiver) {
      const auto hello = encode_ctrl_record(
          kRecHello, next_expected_.load(std::memory_order_acquire));
      if (!write_all_timed(fd, hello.data(), hello.size(),
                           kHandshakeBudgetMs)) {
        return nullptr;
      }
    }
    return conn;
  }

  // Opportunistic drain of the reverse path on the send side: cumulative
  // acks prune the replay buffer; a hello (the master receiver's initial or
  // post-resume offer) prunes the same way.
  void drain_inbound(const std::shared_ptr<Conn>& conn) {
    while (true) {
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n <= 0) break;
      conn->parser.feed(buf, static_cast<std::size_t>(n));
    }
    Record rec;
    while (conn->parser.next(&rec)) {
      VELA_CHECK_MSG(rec.type == kRecAck || rec.type == kRecHello,
                     "unexpected session record on ack direction: "
                         << static_cast<int>(rec.type));
      std::lock_guard<std::mutex> st(state_mutex_);
      prune_replay_locked(rec.seq);
    }
  }

  void prune_replay_locked(std::uint64_t next_expected) {
    while (!replay_.empty() && replay_.front().first < next_expected) {
      replay_.pop_front();
    }
  }

  // Receiver-side cumulative ack. Best-effort: a lost ack only delays
  // pruning (the reconnect hello is the authoritative sync point).
  void send_ack(const std::shared_ptr<Conn>& conn,
                std::uint64_t next_expected) {
    const auto ack = encode_ctrl_record(kRecAck, next_expected);
    std::lock_guard<std::mutex> wl(conn->write_mutex);
    write_all(conn->fd, ack.data(), ack.size());
  }

  // Obtains a fresh identified connection after a loss: the dialer redials
  // and re-identifies; the acceptor waits for the peer to do so via the
  // listener's resume mailbox. nullptr if this attempt failed.
  std::shared_ptr<Conn> reestablish(int attempt) {
    if (dial_port_ != 0) {
      if (attempt > 1) backoff_sleep(attempt);
      return dial_once();
    }
    // Acceptor: the per-attempt wait doubles as the backoff (the peer
    // drives the redial schedule).
    const auto wait = std::chrono::milliseconds(
        std::max<std::int64_t>(policy_.backoff_max.count(), 50));
    AcceptedPeer peer =
        listener_->take_resume(id_.rank, id_.lane, id_.session_id, wait);
    if (!peer.valid()) return nullptr;
    auto conn = std::make_shared<Conn>();
    conn->fd = peer.fd;
    if (!peer.leftover.empty()) {
      conn->parser.feed(peer.leftover.data(), peer.leftover.size());
    }
    return conn;
  }

  // Session resume after a connection loss (DESIGN.md §11/§12): bounded
  // attempts; receiver offers hello(next_expected), sender waits for the
  // hello, prunes its replay buffer to it and replays the rest. Returns
  // false once the budget is exhausted — the session is dead and the
  // transport reports closed (the layers above turn that into
  // WorkerFailedError → respawn-or-degrade).
  bool recover(const std::shared_ptr<Conn>& old_conn) {
    if (dead_.load(std::memory_order_acquire)) return false;
    if (goodbye_received_ || closed_.load(std::memory_order_acquire)) {
      return false;
    }
    if (snapshot() != old_conn) return true;  // already resumed

    for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
      std::shared_ptr<Conn> fresh = reestablish(attempt);
      if (fresh == nullptr) continue;

      if (role_ == Role::kReceiver) {
        const auto hello = encode_ctrl_record(
            kRecHello, next_expected_.load(std::memory_order_acquire));
        bool sent = false;
        {
          std::lock_guard<std::mutex> wl(fresh->write_mutex);
          sent = write_all_timed(fresh->fd, hello.data(), hello.size(),
                                 kHandshakeBudgetMs);
        }
        if (!sent) continue;
      } else {
        // Sender: block for the receiver's hello (stale acks may precede
        // it), then prune and replay.
        Record rec;
        bool got_hello = false;
        while (session::read_record_blocking(fresh->fd, &fresh->parser, &rec,
                                             kHandshakeBudgetMs)) {
          if (rec.type == kRecHello) {
            got_hello = true;
            break;
          }
          if (rec.type == kRecAck) continue;  // pruned below via hello
          break;  // anything else is a protocol violation; retry
        }
        if (!got_hello) continue;
        std::lock_guard<std::mutex> st(state_mutex_);
        prune_replay_locked(rec.seq);
        bool ok = true;
        {
          std::lock_guard<std::mutex> wl(fresh->write_mutex);
          for (const auto& [seq, frame] : replay_) {
            const auto record = encode_data_record(seq, frame);
            if (!write_all_timed(fresh->fd, record.data(), record.size(),
                                 kReplayBudgetMs)) {
              ok = false;
              break;
            }
            {
              std::lock_guard<std::mutex> sl(stats_mutex_);
              ++stats_.replayed_frames;
              stats_.replayed_bytes += record.size();
            }
            if (audit::enabled()) {
              audit::ConservationLedger::instance().on_session_replay(
                  record.size());
            }
          }
        }
        if (!ok) {
          ::shutdown(fresh->fd, SHUT_RDWR);
          continue;
        }
      }

      publish(fresh);
      ::shutdown(old_conn->fd, SHUT_RDWR);
      {
        std::lock_guard<std::mutex> sl(stats_mutex_);
        ++stats_.reconnects;
      }
      VELA_LOG_DEBUG("session") << "remote lane rank=" << id_.rank
                                << " lane=" << static_cast<int>(id_.lane)
                                << " resumed after " << attempt
                                << " attempt(s)";
      return true;
    }

    dead_.store(true, std::memory_order_release);
    closed_.store(true, std::memory_order_release);
    ::shutdown(old_conn->fd, SHUT_RDWR);
    VELA_LOG_WARN("session") << "remote lane rank=" << id_.rank
                             << " lane=" << static_cast<int>(id_.lane)
                             << ": reconnect budget exhausted ("
                             << policy_.max_attempts
                             << " attempts); session dead";
    return false;
  }

  const Role role_;
  const session::PeerIdentity id_;
  util::Clock* clock_;
  const ReconnectPolicy policy_;
  const std::uint16_t dial_port_;  // 0 = acceptor side
  PeerListener* listener_;         // acceptor side only (non-owning)

  std::mutex op_mutex_;  // serializes the public send/receive callers

  // Sender session state. Lock order (never reversed): op_mutex_ →
  // state_mutex_ → conn_ptr_mutex_/Conn::write_mutex → stats_mutex_.
  std::mutex state_mutex_;
  std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> replay_;
  std::uint64_t next_seq_ = 0;  // guarded by state_mutex_
  Rng jitter_rng_;              // guarded by state_mutex_

  mutable std::mutex conn_ptr_mutex_;
  std::shared_ptr<Conn> conn_;  // guarded by conn_ptr_mutex_

  std::atomic<std::uint64_t> next_expected_{0};
  bool goodbye_received_ = false;  // guarded by op_mutex_
  std::atomic<bool> closed_{false};
  std::atomic<bool> dead_{false};

  mutable std::mutex stats_mutex_;
  SessionStats stats_;  // guarded by stats_mutex_
};

RemoteSocketTransport::RemoteSocketTransport() = default;
RemoteSocketTransport::~RemoteSocketTransport() = default;

std::unique_ptr<RemoteSocketTransport> RemoteSocketTransport::dial(
    std::uint16_t port, Role role, const session::PeerIdentity& id,
    util::Clock* clock, ReconnectPolicy policy) {
  auto t = std::unique_ptr<RemoteSocketTransport>(
      new RemoteSocketTransport());  // vela-lint: allow(naked-new) -- private ctor
  t->impl_ = std::make_unique<Impl>(role, id, clock, policy, port, nullptr);
  t->impl_->connect_as_dialer();
  return t;
}

std::unique_ptr<RemoteSocketTransport> RemoteSocketTransport::adopt(
    AcceptedPeer peer, Role role, PeerListener* listener, util::Clock* clock,
    ReconnectPolicy policy) {
  VELA_CHECK_MSG(listener != nullptr,
                 "remote transport: acceptor side needs a listener");
  auto t = std::unique_ptr<RemoteSocketTransport>(
      new RemoteSocketTransport());  // vela-lint: allow(naked-new) -- private ctor
  t->impl_ =
      std::make_unique<Impl>(role, peer.id, clock, policy, 0, listener);
  t->impl_->adopt_peer(std::move(peer));
  return t;
}

bool RemoteSocketTransport::send(std::vector<std::uint8_t> frame) {
  return impl_->send(frame);
}

std::optional<std::vector<std::uint8_t>> RemoteSocketTransport::receive() {
  std::vector<std::uint8_t> frame;
  if (impl_->receive_within(-1, &frame) != PopStatus::kOk) return std::nullopt;
  return frame;
}

std::optional<std::vector<std::uint8_t>> RemoteSocketTransport::try_receive() {
  std::vector<std::uint8_t> frame;
  if (impl_->receive_within(0, &frame) != PopStatus::kOk) return std::nullopt;
  return frame;
}

PopStatus RemoteSocketTransport::receive_for(std::chrono::milliseconds timeout,
                                             std::vector<std::uint8_t>* out) {
  const long ms = static_cast<long>(timeout.count());
  return impl_->receive_within(ms < 0 ? 0 : ms, out);
}

void RemoteSocketTransport::close() { impl_->close(); }

bool RemoteSocketTransport::closed() const { return impl_->closed(); }

SessionStats RemoteSocketTransport::session_stats() const {
  return impl_->session_stats();
}

const session::PeerIdentity& RemoteSocketTransport::identity() const {
  return impl_->identity();
}

void RemoteSocketTransport::sever_for_testing() {
  impl_->sever_for_testing();
}

}  // namespace vela::comm
