// Session-record codec of the socket fabric (DESIGN.md §11, §12).
//
// Every byte on a socket-backed lane travels inside a session record. The
// loopback SocketTransport and the multi-process RemoteSocketTransport speak
// the SAME stream layout (little-endian):
//
//   kData    := u8 1 | u64 seq | u32 frame_len | frame[frame_len]
//   kAck     := u8 2 | u64 next_expected_seq      (reverse direction)
//   kHello   := u8 3 | u64 next_expected_seq      (resume handshake)
//   kGoodbye := u8 4                              (graceful close)
//   kIdent   := u8 5 | u32 magic | u32 version | u32 rank | u8 lane |
//               u64 capacity | u64 session_id     (peer discovery, §12)
//
// kIdent is the multi-process peer-discovery handshake: the dialing worker
// announces who it is (rank, lane, hosted-expert capacity) and which
// transport session it belongs to, layered UNDER the kHello resume records —
// a reconnecting peer re-identifies with the same session id, then the
// ordinary hello/ack resume takes over, so reconnect semantics are exactly
// the single-process session layer's. This codec is shared so the two
// implementations cannot drift.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/transport.h"

namespace vela::comm::session {

enum : std::uint8_t {
  kRecData = 1,
  kRecAck = 2,
  kRecHello = 3,
  kRecGoodbye = 4,
  kRecIdent = 5,
};

// "VELA" little-endian; a dialer that opens with anything else is not a
// vela_node and is rejected by the listener without crashing it.
inline constexpr std::uint32_t kIdentMagic = 0x414C4556u;
inline constexpr std::uint32_t kIdentVersion = 1;
// u8 type + u32 magic + u32 version + u32 rank + u8 lane + u64 capacity +
// u64 session_id.
inline constexpr std::size_t kIdentRecordBytes = 30;

// The two lanes of a master↔worker DuplexLink, as announced in kIdent.
enum : std::uint8_t {
  kLaneToWorker = 0,  // master → worker data; the dialing worker receives
  kLaneToMaster = 1,  // worker → master data; the dialing worker sends
};

// Worker identity carried by a kIdent record.
struct PeerIdentity {
  std::uint32_t rank = 0;
  std::uint8_t lane = kLaneToWorker;
  std::uint64_t capacity = 0;    // experts the worker hosts at start
  std::uint64_t session_id = 0;  // stable across reconnects of one process
};

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v);
[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p);
[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p);

struct Record {
  std::uint8_t type = 0;
  std::uint64_t seq = 0;            // kData/kAck/kHello
  PeerIdentity ident;               // kIdent only
  bool ident_valid = false;         // magic+version checked out
  std::vector<std::uint8_t> frame;  // kData only
};

// Incremental session-record segmenter: the session-envelope counterpart of
// FrameDecoder (socket reads never align with record boundaries). An unknown
// record type or an oversize frame length fails a VELA_CHECK — a
// desynchronized stream cannot be resynchronized. Feed from listener-side
// handshakes instead goes through next_lenient(), which reports corruption
// as a rejection rather than aborting the process.
class RecordParser {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  [[nodiscard]] bool next(Record* out);
  // Like next(), but a malformed stream sets *corrupt and returns false
  // instead of failing a check (the listener rejects the peer and lives on).
  [[nodiscard]] bool next_lenient(Record* out, bool* corrupt);
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }
  // Moves out any bytes buffered past the last extracted record (a
  // handshake reader hands them to the adopting transport's parser).
  [[nodiscard]] std::vector<std::uint8_t> take_buffered() {
    return std::move(buffer_);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

[[nodiscard]] std::vector<std::uint8_t> encode_data_record(
    std::uint64_t seq, const std::vector<std::uint8_t>& frame);
[[nodiscard]] std::vector<std::uint8_t> encode_ctrl_record(std::uint8_t type,
                                                           std::uint64_t seq);
[[nodiscard]] std::vector<std::uint8_t> encode_ident_record(
    const PeerIdentity& id);

// --- socket plumbing shared by the loopback and remote backends -------------

// Blocking write with EINTR retry; false on a dead peer.
bool write_all(int fd, const std::uint8_t* data, std::size_t size);

// Non-blocking write with a real-time budget: used where the only drainer
// may itself be momentarily stalled (reconnect replay), so a wedged peer
// fails the attempt instead of deadlocking.
bool write_all_timed(int fd, const std::uint8_t* data, std::size_t size,
                     int budget_ms);

// Blocking read of one record with a real-time deadline (handshakes). False
// on EOF, timeout or — in lenient mode — a malformed stream.
bool read_record_blocking(int fd, RecordParser* parser, Record* out,
                          int budget_ms, bool lenient = false);

// Creates a listening TCP socket on 127.0.0.1:`port` with SO_REUSEADDR set.
// `port` 0 binds an ephemeral port; the actually-bound port is written to
// *bound_port either way (reported back to the launcher). A bind collision
// (EADDRINUSE) is retried up to `bind_attempts` times with `retry_delay`
// slept on `clock` between attempts — bounded, on the injected clock, so
// collision behavior is testable in virtual time. Returns the listener fd;
// fails a VELA_CHECK once the attempt budget is exhausted.
int make_listen_socket(std::uint16_t port, std::uint16_t* bound_port,
                       int backlog, int bind_attempts,
                       std::chrono::milliseconds retry_delay,
                       util::Clock* clock);

// Connects to 127.0.0.1:`port` with TCP_NODELAY. Returns -1 on failure.
int dial_socket(std::uint16_t port);

}  // namespace vela::comm::session
