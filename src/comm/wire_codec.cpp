#include "comm/wire_codec.h"

#include <cstdlib>

#include "tensor/ops.h"
#include "tensor/qblock.h"
#include "util/check.h"

namespace vela::comm {

const char* wire_dtype_name(WireDtype d) {
  switch (d) {
    case WireDtype::kDefault:
      return "default";
    case WireDtype::kFp32:
      return "fp32";
    case WireDtype::kFp16:
      return "fp16";
    case WireDtype::kInt8:
      return "int8";
  }
  return "?";
}

WireDtype parse_wire_dtype(const std::string& name) {
  if (name.empty() || name == "default") return WireDtype::kDefault;
  if (name == "fp32") return WireDtype::kFp32;
  if (name == "fp16") return WireDtype::kFp16;
  if (name == "int8") return WireDtype::kInt8;
  VELA_CHECK_MSG(false, "VELA_WIRE_DTYPE must be fp32|fp16|int8, got '"
                            << name << "'");
  return WireDtype::kDefault;
}

WireDtype wire_dtype_from_env() {
  const char* env = std::getenv("VELA_WIRE_DTYPE");
  return env == nullptr ? WireDtype::kDefault : parse_wire_dtype(env);
}

unsigned wire_block_from_env() {
  const char* env = std::getenv("VELA_WIRE_BLOCK");
  if (env == nullptr || *env == '\0') return 0;
  const unsigned block = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  VELA_CHECK_MSG(qblock::valid_block(block),
                 "VELA_WIRE_BLOCK must be 32 or 64, got '" << env << "'");
  return block;
}

WireCodec WireCodec::resolve(WireDtype requested, unsigned legacy_bits,
                             bool legacy_quantize, unsigned requested_block) {
  WireDtype dtype = requested;
  if (dtype == WireDtype::kDefault) dtype = wire_dtype_from_env();
  WireCodec codec;
  switch (dtype) {
    case WireDtype::kDefault:
      // Pre-tier behavior, bit for bit: accounting follows the config's
      // wire_bits; numerics follow quantize_wire (only meaningful at 16).
      codec.dtype =
          legacy_quantize && legacy_bits == 16 ? WireDtype::kFp16
                                               : WireDtype::kFp32;
      codec.bits = legacy_bits;
      codec.transforms = codec.dtype == WireDtype::kFp16;
      return codec;
    case WireDtype::kFp32:
      codec.dtype = WireDtype::kFp32;
      codec.bits = 32;
      codec.transforms = false;
      return codec;
    case WireDtype::kFp16:
      codec.dtype = WireDtype::kFp16;
      codec.bits = 16;
      codec.transforms = true;
      return codec;
    case WireDtype::kInt8: {
      unsigned block = requested_block;
      if (block == 0) block = wire_block_from_env();
      if (block == 0) block = qblock::kDefaultBlock;
      VELA_CHECK_MSG(qblock::valid_block(block),
                     "int8 wire block must be 32 or 64, got " << block);
      codec.dtype = WireDtype::kInt8;
      codec.bits = 8;
      codec.block = block;
      codec.transforms = true;
      return codec;
    }
  }
  VELA_CHECK(false);
  return codec;
}

Tensor WireCodec::apply(const Tensor& payload) const {
  switch (dtype) {
    case WireDtype::kFp16:
      return ops::to_half_precision(payload);
    case WireDtype::kInt8:
      return qblock::roundtrip(payload, block);
    default:
      return payload;  // identity copy
  }
}

}  // namespace vela::comm
