// Master-side accept multiplexer for the multi-process deployment mode
// (DESIGN.md §12).
//
// One PeerListener owns the master's single listen port. Worker processes
// dial it — twice each, once per DuplexLink lane — and open every
// connection with a kIdent record announcing (rank, lane, expert capacity,
// transport session id). The accept loop validates the identity and sorts
// the connection into a per-(rank, lane) mailbox:
//
//   * first connection of a (rank, lane)          → fresh-peer mailbox,
//     claimed by take_peer() (the master builds a RemoteSocketTransport
//     around it);
//   * same (rank, lane, session id) again         → resume mailbox, claimed
//     by take_resume() (the transport's reconnect path adopts it and the
//     ordinary kHello session resume takes over);
//   * second fresh connection while one is already
//     pending for the same (rank, lane)           → duplicate identity,
//     rejected;
//   * bad magic/version/lane, truncated or non-ident
//     opening record                              → malformed, rejected.
//
// Rejection means: close that fd, bump a counter, keep listening. A
// misbehaving dialer must never take the listener (and with it the whole
// master) down.
//
// Port handling (satellite of ISSUE 7): SO_REUSEADDR is always set, port 0
// binds an ephemeral port reported back through bound_port() (the launcher
// passes it to the workers), and a bind collision on a fixed port is
// retried a bounded number of times on the injected clock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/session.h"

namespace vela::comm {

struct PeerListenerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral; see bound_port()
  int backlog = 128;
  // Bounded bind-collision retry (EADDRINUSE on a fixed port), slept on
  // `clock` between attempts.
  int bind_attempts = 5;
  std::chrono::milliseconds bind_retry_delay{50};
  // Per-connection deadline for the opening kIdent record; a dialer that
  // stalls mid-handshake is rejected as malformed.
  int handshake_budget_ms = 5000;
  util::Clock* clock = nullptr;  // defaults to the system clock
};

// A connection the listener accepted and identified. `leftover` holds any
// bytes that arrived after the kIdent record (a pipelined hello or early
// data) — the adopting transport must feed them to its parser first.
struct AcceptedPeer {
  int fd = -1;
  session::PeerIdentity id;
  std::vector<std::uint8_t> leftover;
  [[nodiscard]] bool valid() const { return fd >= 0; }
};

class PeerListener {
 public:
  explicit PeerListener(const PeerListenerConfig& cfg);
  ~PeerListener();

  PeerListener(const PeerListener&) = delete;
  PeerListener& operator=(const PeerListener&) = delete;

  // The actually-bound port (== cfg.port unless that was 0).
  [[nodiscard]] std::uint16_t bound_port() const { return port_; }

  // Blocks until the first connection for (rank, lane) arrives; an invalid
  // AcceptedPeer on timeout. The wait is a real-time bound on peer startup,
  // not protocol time.
  [[nodiscard]] AcceptedPeer take_peer(std::uint32_t rank, std::uint8_t lane,
                                       std::chrono::milliseconds timeout);

  // Blocks until the peer re-identifies (same session id) after a
  // connection loss; an invalid AcceptedPeer on timeout.
  [[nodiscard]] AcceptedPeer take_resume(std::uint32_t rank,
                                         std::uint8_t lane,
                                         std::uint64_t session_id,
                                         std::chrono::milliseconds timeout);

  // Stops accepting and closes every unclaimed connection. Idempotent;
  // the destructor calls it.
  void stop();

  // Handshake observability (the property tests assert on these).
  [[nodiscard]] std::uint64_t accepted_peers() const;
  [[nodiscard]] std::uint64_t rejected_malformed() const;
  [[nodiscard]] std::uint64_t rejected_duplicate() const;

 private:
  void accept_loop();
  void handle_connection(int fd);

  using LaneKey = std::pair<std::uint32_t, std::uint8_t>;

  util::Clock* clock_;
  int handshake_budget_ms_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;                    // guarded by mutex_
  std::map<LaneKey, AcceptedPeer> fresh_;   // pending unclaimed, one per lane
  std::map<LaneKey, std::deque<AcceptedPeer>> resumes_;
  std::map<LaneKey, std::uint64_t> claimed_sessions_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_malformed_ = 0;
  std::uint64_t rejected_duplicate_ = 0;

  std::thread accept_thread_;
};

// Factory — how everything above comm constructs a listener (vela_lint's
// direct-transport rule keeps ad-hoc construction out of the runtimes).
[[nodiscard]] std::unique_ptr<PeerListener> make_peer_listener(
    const PeerListenerConfig& cfg = {});

}  // namespace vela::comm
