// Point-to-point channel between two processes of the runtime.
//
// The channel actually moves the Message (thread-to-thread) and, as a side
// effect, attributes its wire size to the owning TrafficMeter and to a
// per-endpoint byte ledger the CommClock later converts into time. This is
// the NCCL/TCP substitution: payload integrity is real (tests fine-tune
// through it bit-exactly), transport speed is modelled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "comm/fault_injector.h"
#include "comm/message.h"
#include "comm/traffic_meter.h"
#include "util/blocking_queue.h"

namespace vela::comm {

class Channel {
 public:
  // `src_node`/`dst_node` locate the endpoints for traffic attribution.
  // `meter` may be null (un-metered control channels).
  Channel(std::size_t src_node, std::size_t dst_node, TrafficMeter* meter);

  // Sends a message; records its wire size. Returns false if closed.
  bool send(Message msg);

  // Blocks for the next message; nullopt once closed and drained.
  std::optional<Message> receive();
  std::optional<Message> try_receive();
  // Timed receive: kOk fills *out, kTimeout means nothing arrived, kClosed
  // means the channel is closed and drained. The retry layer is built on
  // this — a timeout is a suspected fault, a close a confirmed one.
  PopStatus receive_for(std::chrono::milliseconds timeout, Message* out);

  // Attaches a fault injector (may be null to detach). `link` and `dir`
  // identify this channel in the injector's per-lane fault plan. While an
  // injector is attached every outgoing message is checksummed.
  void set_fault_injector(FaultInjector* injector, std::size_t link,
                          LinkDir dir);
  bool closed() const { return queue_.closed(); }

  void close();
  std::size_t pending() const { return queue_.size(); }

  std::size_t src_node() const { return src_; }
  std::size_t dst_node() const { return dst_; }
  std::uint64_t bytes_sent() const { return bytes_sent_.load(); }
  std::uint64_t messages_sent() const { return messages_sent_.load(); }

 private:
  std::size_t src_, dst_;
  TrafficMeter* meter_;
  BlockingQueue<Message> queue_;
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  FaultInjector* injector_ = nullptr;
  std::size_t injector_link_ = 0;
  LinkDir injector_dir_ = LinkDir::kToWorker;
};

// The bidirectional master↔worker link: a pair of channels.
struct DuplexLink {
  DuplexLink(std::size_t master_node, std::size_t worker_node,
             TrafficMeter* meter)
      : to_worker(master_node, worker_node, meter),
        to_master(worker_node, master_node, meter) {}

  Channel to_worker;
  Channel to_master;

  // Attaches `injector` (null detaches) to both directions under lane id
  // `link` (the worker index in the master's fleet).
  void set_fault_injector(FaultInjector* injector, std::size_t link) {
    to_worker.set_fault_injector(injector, link, LinkDir::kToWorker);
    to_master.set_fault_injector(injector, link, LinkDir::kToMaster);
  }

  void close() {
    to_worker.close();
    to_master.close();
  }
};

}  // namespace vela::comm
