#include "comm/peer_listener.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace vela::comm {

PeerListener::PeerListener(const PeerListenerConfig& cfg)
    : clock_(cfg.clock != nullptr ? cfg.clock : &util::system_clock()),
      handshake_budget_ms_(cfg.handshake_budget_ms) {
  listen_fd_ =
      session::make_listen_socket(cfg.port, &port_, cfg.backlog,
                                  cfg.bind_attempts, cfg.bind_retry_delay,
                                  clock_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

PeerListener::~PeerListener() { stop(); }

void PeerListener::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Closing the listen socket wakes the accept loop's poll.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, peer] : fresh_) {
    if (peer.fd >= 0) ::close(peer.fd);
  }
  fresh_.clear();
  for (auto& [key, queue] : resumes_) {
    for (AcceptedPeer& peer : queue) {
      if (peer.fd >= 0) ::close(peer.fd);
    }
  }
  resumes_.clear();
  cv_.notify_all();
}

void PeerListener::accept_loop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_) return;
    }
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;  // listener torn down
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // stop() shut the socket down
    }
    handle_connection(fd);
  }
}

void PeerListener::handle_connection(int fd) {
  // Read exactly the opening record, leniently: corruption is the PEER's
  // problem, never the listener's. Everything already buffered past the
  // ident travels on as `leftover`.
  session::RecordParser parser;
  session::Record rec;
  const bool got = session::read_record_blocking(fd, &parser, &rec,
                                                 handshake_budget_ms_,
                                                 /*lenient=*/true);
  if (!got || rec.type != session::kRecIdent || !rec.ident_valid) {
    ::close(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_malformed_;
    VELA_LOG_DEBUG("listener") << "rejected malformed handshake";
    return;
  }

  AcceptedPeer peer;
  peer.fd = fd;
  peer.id = rec.ident;
  peer.leftover = parser.take_buffered();

  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_) {
    ::close(fd);
    return;
  }
  const LaneKey key{peer.id.rank, peer.id.lane};
  const auto claimed = claimed_sessions_.find(key);
  if (claimed != claimed_sessions_.end() &&
      claimed->second == peer.id.session_id) {
    // The same process re-identifying after a connection loss: session
    // resume. The kHello layer above takes over from here.
    resumes_[key].push_back(std::move(peer));
    ++accepted_;
    cv_.notify_all();
    return;
  }
  if (fresh_.count(key) != 0) {
    // Two live dialers claiming the same (rank, lane): whichever connected
    // first wins; the imposter is cut loose without disturbing anyone.
    ::close(fd);
    ++rejected_duplicate_;
    VELA_LOG_WARN("listener")
        << "rejected duplicate identity rank=" << peer.id.rank
        << " lane=" << static_cast<int>(peer.id.lane);
    return;
  }
  fresh_.emplace(key, std::move(peer));
  ++accepted_;
  cv_.notify_all();
}

AcceptedPeer PeerListener::take_peer(std::uint32_t rank, std::uint8_t lane,
                                     std::chrono::milliseconds timeout) {
  const LaneKey key{rank, lane};
  std::unique_lock<std::mutex> lock(mutex_);
  const bool ok = cv_.wait_for(lock, timeout, [&] {
    return stopped_ || fresh_.count(key) != 0;
  });
  if (!ok || stopped_ || fresh_.count(key) == 0) return {};
  AcceptedPeer peer = std::move(fresh_[key]);
  fresh_.erase(key);
  claimed_sessions_[key] = peer.id.session_id;
  return peer;
}

AcceptedPeer PeerListener::take_resume(std::uint32_t rank, std::uint8_t lane,
                                       std::uint64_t session_id,
                                       std::chrono::milliseconds timeout) {
  const LaneKey key{rank, lane};
  std::unique_lock<std::mutex> lock(mutex_);
  auto find = [&]() -> AcceptedPeer* {
    auto it = resumes_.find(key);
    if (it == resumes_.end()) return nullptr;
    while (!it->second.empty() &&
           it->second.front().id.session_id != session_id) {
      // A resume from a session we already gave up on: discard.
      ::close(it->second.front().fd);
      it->second.pop_front();
    }
    return it->second.empty() ? nullptr : &it->second.front();
  };
  const bool ok = cv_.wait_for(lock, timeout,
                               [&] { return stopped_ || find() != nullptr; });
  if (!ok || stopped_) return {};
  AcceptedPeer* front = find();
  if (front == nullptr) return {};
  AcceptedPeer peer = std::move(*front);
  resumes_[key].pop_front();
  return peer;
}

std::uint64_t PeerListener::accepted_peers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

std::uint64_t PeerListener::rejected_malformed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_malformed_;
}

std::uint64_t PeerListener::rejected_duplicate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_duplicate_;
}

std::unique_ptr<PeerListener> make_peer_listener(
    const PeerListenerConfig& cfg) {
  return std::make_unique<PeerListener>(cfg);
}

}  // namespace vela::comm
