#include "model/router_planting.h"

#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela::model {

PlantedRouting plant_locality(MoETransformer& model,
                              const data::SyntheticCorpus& corpus,
                              const PlantingConfig& cfg) {
  const ModelConfig& mc = model.config();
  const std::size_t domains = corpus.num_domains();
  VELA_CHECK_MSG(domains <= mc.model_dim,
                 "planting needs one embedding dim per domain");

  PlantedRouting routing = PlantedRouting::generate(
      mc.num_layers, mc.num_experts, domains, cfg.popularity_zipf, cfg.seed);

  // 1) Embedding: add a strong component on the domain-signal coordinate.
  //    Coordinate d carries the signal of domain d.
  Tensor& emb = model.embedding().weight().mutable_value();
  for (std::size_t t = 0; t < mc.vocab; ++t) {
    emb.at(t, corpus.domain_of_token(t)) += cfg.embed_gain;
  }

  // 2) Gate weights: rewrite each block's router so preferred experts read
  //    the domain coordinate with a confidently large weight.
  Rng noise_rng(cfg.seed ^ 0x9A7EULL);
  for (std::size_t l = 0; l < mc.num_layers; ++l) {
    Tensor& w = model.block(l).gate().weight().mutable_value();  // [E, H]
    for (std::size_t e = 0; e < mc.num_experts; ++e) {
      for (std::size_t h = 0; h < mc.model_dim; ++h) {
        w.at(e, h) = static_cast<float>(noise_rng.normal(0.0, cfg.gate_noise));
      }
    }
    const float gain =
        cfg.gate_gain *
        (1.0f + cfg.depth_compensation * static_cast<float>(l));
    for (std::size_t d = 0; d < domains; ++d) {
      const auto [primary, secondary] = routing.preference(l, d);
      w.at(primary, d) += gain;
      w.at(secondary, d) += gain * cfg.secondary_ratio;
    }
  }

  // 3) Damp the attention out-projections so the residual stream keeps the
  //    planted embedding signal dominant across all L blocks (a property
  //    real pre-trained models have by virtue of training; we install it).
  for (auto& p : model.parameters()) {
    if (p.name.find(".wo.weight") != std::string::npos) {
      p.var.mutable_value().scale_(cfg.residual_damp);
    }
  }
  return routing;
}

}  // namespace vela::model
