#include "model/router_planting.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace vela::model {

PlantedRouting PlantedRouting::generate(std::size_t num_layers,
                                        std::size_t num_experts,
                                        std::size_t num_domains,
                                        double popularity_zipf,
                                        std::uint64_t seed) {
  VELA_CHECK(num_layers > 0 && num_experts >= 2 && num_domains > 0);
  PlantedRouting out;
  out.num_experts_ = num_experts;
  out.prefs_.resize(num_layers);
  ZipfSampler popularity(num_experts, popularity_zipf);
  for (std::size_t l = 0; l < num_layers; ++l) {
    Rng rng(seed * 0x100000001B3ULL + l);
    // A per-layer permutation decides WHICH experts are the popular ones, so
    // hot experts differ across blocks like in Fig. 7.
    std::vector<std::size_t> perm(num_experts);
    for (std::size_t e = 0; e < num_experts; ++e) perm[e] = e;
    rng.shuffle(perm);
    out.prefs_[l].resize(num_domains);
    for (std::size_t d = 0; d < num_domains; ++d) {
      const std::size_t primary = perm[popularity.sample(rng)];
      std::size_t secondary = primary;
      while (secondary == primary) secondary = perm[popularity.sample(rng)];
      out.prefs_[l][d] = {primary, secondary};
    }
  }
  return out;
}

std::pair<std::size_t, std::size_t> PlantedRouting::preference(
    std::size_t layer, std::size_t domain) const {
  VELA_CHECK(layer < prefs_.size() && domain < prefs_[layer].size());
  return prefs_[layer][domain];
}

Tensor PlantedRouting::expected_probability(
    const std::vector<double>& domain_dist) const {
  VELA_CHECK(domain_dist.size() == num_domains());
  Tensor p({num_layers(), num_experts_});
  for (std::size_t l = 0; l < num_layers(); ++l) {
    for (std::size_t d = 0; d < num_domains(); ++d) {
      const auto [primary, secondary] = prefs_[l][d];
      p.at(l, primary) += static_cast<float>(domain_dist[d]);
      p.at(l, secondary) += static_cast<float>(domain_dist[d]);
    }
  }
  return p;
}

PlantedRouting plant_locality(MoETransformer& model,
                              const data::SyntheticCorpus& corpus,
                              const PlantingConfig& cfg) {
  const ModelConfig& mc = model.config();
  const std::size_t domains = corpus.num_domains();
  VELA_CHECK_MSG(domains <= mc.model_dim,
                 "planting needs one embedding dim per domain");

  PlantedRouting routing = PlantedRouting::generate(
      mc.num_layers, mc.num_experts, domains, cfg.popularity_zipf, cfg.seed);

  // 1) Embedding: add a strong component on the domain-signal coordinate.
  //    Coordinate d carries the signal of domain d.
  Tensor& emb = model.embedding().weight().mutable_value();
  for (std::size_t t = 0; t < mc.vocab; ++t) {
    emb.at(t, corpus.domain_of_token(t)) += cfg.embed_gain;
  }

  // 2) Gate weights: rewrite each block's router so preferred experts read
  //    the domain coordinate with a confidently large weight.
  Rng noise_rng(cfg.seed ^ 0x9A7EULL);
  for (std::size_t l = 0; l < mc.num_layers; ++l) {
    Tensor& w = model.block(l).gate().weight().mutable_value();  // [E, H]
    for (std::size_t e = 0; e < mc.num_experts; ++e) {
      for (std::size_t h = 0; h < mc.model_dim; ++h) {
        w.at(e, h) = static_cast<float>(noise_rng.normal(0.0, cfg.gate_noise));
      }
    }
    const float gain =
        cfg.gate_gain *
        (1.0f + cfg.depth_compensation * static_cast<float>(l));
    for (std::size_t d = 0; d < domains; ++d) {
      const auto [primary, secondary] = routing.preference(l, d);
      w.at(primary, d) += gain;
      w.at(secondary, d) += gain * cfg.secondary_ratio;
    }
  }

  // 3) Damp the attention out-projections so the residual stream keeps the
  //    planted embedding signal dominant across all L blocks (a property
  //    real pre-trained models have by virtue of training; we install it).
  for (auto& p : model.parameters()) {
    if (p.name.find(".wo.weight") != std::string::npos) {
      p.var.mutable_value().scale_(cfg.residual_damp);
    }
  }
  return routing;
}

}  // namespace vela::model
