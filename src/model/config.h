// Model configurations.
//
// Two kinds of presets exist:
//   * runnable presets (tiny_mistral, tiny_test) — small enough to really
//     fine-tune end-to-end with the autograd engine on a CPU; shaped after
//     the paper's TinyMistral-6x248M measurement subject (12 blocks × 6
//     experts, top-2);
//   * shape presets (mixtral_8x7b, gritlm_8x7b) — carry the real models'
//     routing-relevant dimensions (L=32, E=8, k=2, H=4096, 16-bit features)
//     and are consumed by the traffic/time accounting paths that regenerate
//     Figs. 5–7. They are never instantiated as weight tensors.
#pragma once

#include <cstddef>
#include <string>

#include "nn/linear.h"

namespace vela::model {

struct ModelConfig {
  std::string name;
  std::size_t vocab = 96;
  std::size_t model_dim = 32;    // H, the token feature size
  std::size_t hidden_dim = 64;   // expert FFN hidden size
  std::size_t num_layers = 12;   // L, number of MoE blocks
  std::size_t num_experts = 6;   // E, experts per block
  std::size_t top_k = 2;         // experts selected per token
  std::size_t num_heads = 2;
  unsigned wire_bits = 16;       // b, bit depth of exchanged features
  nn::LoRAConfig lora{8, 16.0f, true};

  // Runnable: the TinyMistral-like measurement model of §III.
  static ModelConfig tiny_mistral();
  // Runnable: minimal config for unit tests.
  static ModelConfig tiny_test();
  // Shape-only: Mixtral-8x7B dimensions for traffic accounting (§V).
  static ModelConfig mixtral_8x7b_shape();
  // Shape-only: GritLM-8x7B (same architecture as Mixtral).
  static ModelConfig gritlm_8x7b_shape();

  // Bytes moved per token per direction for one MoE block dispatch:
  // H * b / 8 (the paper's D_{n,l} building block).
  std::size_t bytes_per_token() const { return model_dim * wire_bits / 8; }

  std::string to_string() const;
};

}  // namespace vela::model
