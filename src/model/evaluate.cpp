#include "model/evaluate.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vela::model {

EvalResult evaluate_perplexity(
    MoETransformer& model,
    const std::vector<std::vector<std::size_t>>& dataset,
    std::size_t batch_size) {
  VELA_CHECK(!dataset.empty() && batch_size > 0);
  EvalResult result;
  double weighted_loss = 0.0;
  for (std::size_t start = 0; start < dataset.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, dataset.size());
    std::vector<std::vector<std::size_t>> batch(dataset.begin() + start,
                                                dataset.begin() + end);
    std::size_t batch_tokens = 0;
    for (const auto& seq : batch) {
      VELA_CHECK(seq.size() >= 2);
      batch_tokens += seq.size() - 1;
    }
    const float loss = model.loss_batch(batch).value()[0];
    weighted_loss += double(loss) * double(batch_tokens);
    result.tokens += batch_tokens;
  }
  result.mean_loss = weighted_loss / double(result.tokens);
  result.perplexity = std::exp(result.mean_loss);
  return result;
}

}  // namespace vela::model
