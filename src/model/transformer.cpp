#include "model/transformer.h"

#include <numeric>

#include "util/check.h"

namespace vela::model {

MoETransformer::MoETransformer(const ModelConfig& cfg,
                               moe::ExpertBackend* backend, Rng& rng,
                               bool trainable_gate)
    : cfg_(cfg) {
  VELA_CHECK(backend != nullptr);
  embed_ = std::make_unique<nn::Embedding>("embed", cfg.vocab, cfg.model_dim,
                                           rng, /*trainable=*/false);
  register_module("embed", embed_.get());
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    const std::string prefix = "layer" + std::to_string(l);
    attn_norms_.push_back(
        std::make_unique<nn::RMSNorm>(prefix + ".attn_norm", cfg.model_dim));
    attns_.push_back(std::make_unique<nn::CausalSelfAttention>(
        prefix + ".attn", cfg.model_dim, cfg.num_heads, cfg.lora, rng));
    moe_norms_.push_back(
        std::make_unique<nn::RMSNorm>(prefix + ".moe_norm", cfg.model_dim));
    blocks_.push_back(std::make_unique<moe::MoEBlock>(
        prefix + ".moe", l, cfg.model_dim, cfg.num_experts, cfg.top_k, rng,
        backend, trainable_gate));
    register_module(prefix + ".attn_norm", attn_norms_.back().get());
    register_module(prefix + ".attn", attns_.back().get());
    register_module(prefix + ".moe_norm", moe_norms_.back().get());
    register_module(prefix + ".moe", blocks_.back().get());
  }
  final_norm_ = std::make_unique<nn::RMSNorm>("final_norm", cfg.model_dim);
  register_module("final_norm", final_norm_.get());
  lm_head_ = std::make_unique<nn::LoRALinear>("lm_head", cfg.model_dim,
                                              cfg.vocab, cfg.lora, rng);
  register_module("lm_head", lm_head_.get());
}

ag::Variable MoETransformer::forward_batch(
    const std::vector<std::vector<std::size_t>>& seqs,
    moe::RoutingStats* stats) {
  VELA_CHECK(!seqs.empty());
  // Per-sequence embeddings.
  std::vector<ag::Variable> xs;
  xs.reserve(seqs.size());
  std::vector<std::size_t> lens;
  for (const auto& seq : seqs) {
    VELA_CHECK_MSG(!seq.empty(), "empty sequence in batch");
    xs.push_back(embed_->forward(seq));
    lens.push_back(seq.size());
  }

  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    // Attention is per sequence (causal structure is intra-sequence).
    for (auto& x : xs) {
      x = ag::add(x, attns_[l]->forward(attn_norms_[l]->forward(x)));
    }
    // MoE pre-processing reshape: flatten all sequences into one token list.
    ag::Variable flat = xs.size() == 1 ? xs[0] : ag::concat_rows(xs);
    ag::Variable moe_out =
        ag::add(flat, blocks_[l]->forward(moe_norms_[l]->forward(flat), stats));
    // Post-processing: split back into sequences.
    if (xs.size() == 1) {
      xs[0] = moe_out;
    } else {
      std::size_t offset = 0;
      for (std::size_t s = 0; s < xs.size(); ++s) {
        std::vector<std::size_t> range(lens[s]);
        std::iota(range.begin(), range.end(), offset);
        xs[s] = ag::gather_rows(moe_out, range);
        offset += lens[s];
      }
    }
  }

  ag::Variable flat = xs.size() == 1 ? xs[0] : ag::concat_rows(xs);
  return lm_head_->forward(final_norm_->forward(flat));
}

ag::Variable MoETransformer::loss_batch(
    const std::vector<std::vector<std::size_t>>& seqs,
    moe::RoutingStats* stats, float aux_loss_weight) {
  std::vector<std::vector<std::size_t>> inputs;
  std::vector<std::size_t> targets;
  inputs.reserve(seqs.size());
  for (const auto& seq : seqs) {
    VELA_CHECK_MSG(seq.size() >= 2,
                   "next-token loss needs sequences of length >= 2");
    inputs.emplace_back(seq.begin(), seq.end() - 1);
    targets.insert(targets.end(), seq.begin() + 1, seq.end());
  }
  ag::Variable logits = forward_batch(inputs, stats);
  ag::Variable loss = ag::cross_entropy(logits, targets);
  if (aux_loss_weight > 0.0f) {
    for (auto& block : blocks_) {
      loss = ag::add(loss, ag::scale(moe::load_balance_loss(
                                         block->last_gate_output()),
                                     aux_loss_weight));
    }
  }
  return loss;
}

moe::MoEBlock& MoETransformer::block(std::size_t l) {
  VELA_CHECK(l < blocks_.size());
  return *blocks_[l];
}

std::vector<moe::RoutePlan> MoETransformer::last_plans() const {
  std::vector<moe::RoutePlan> plans;
  plans.reserve(blocks_.size());
  for (const auto& b : blocks_) plans.push_back(b->last_plan());
  return plans;
}

}  // namespace vela::model
