// The MoE transformer: the full runnable model (Fig. 1, right side).
//
// Architecture per block (pre-norm residual, Mistral-style):
//   x = x + Attention(RMSNorm(x))          — per sequence
//   x = x + MoEBlock(RMSNorm(x))           — over the flattened token list
// followed by a final RMSNorm and an LM head.
//
// The MoE path performs the paper's pre-/post-processing reshape explicitly:
// the batch of [T, H] sequences is concatenated into one [ΣT, H] token
// matrix before gating (tokens are processed individually in the MoE block,
// regardless of their sequence origin) and split back afterwards.
//
// Expert computation is delegated to an ExpertBackend, so the same backbone
// runs dense (LocalExpertBackend), under VELA's broker, or under the EP
// baseline — the backbone is "transparent to the fine-tuning process".
#pragma once

#include <memory>
#include <vector>

#include "model/config.h"
#include "moe/moe_block.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/norm.h"

namespace vela::model {

class MoETransformer : public nn::Module {
 public:
  // `backend` hosts the experts and must outlive the model. If
  // `trainable_gate` is set the router weights receive gradients (used only
  // by the Theorem 1 experiments; the paper's fine-tuning keeps them frozen).
  MoETransformer(const ModelConfig& cfg, moe::ExpertBackend* backend, Rng& rng,
                 bool trainable_gate = false);

  // Next-token logits for a batch of token sequences; returns the flattened
  // [Σ|seq|, vocab] logits in batch order. Routing is recorded into `stats`
  // when non-null.
  ag::Variable forward_batch(const std::vector<std::vector<std::size_t>>& seqs,
                             moe::RoutingStats* stats = nullptr);

  // Mean next-token cross-entropy over the batch: sequence s contributes
  // targets seq[1..] predicted from inputs seq[..len-1]. Scalar Variable.
  // When aux_loss_weight > 0, the Switch-style load-balancing loss of every
  // MoE block is added with that weight (the pre-training regime of §III —
  // meaningful only with trainable gates).
  ag::Variable loss_batch(const std::vector<std::vector<std::size_t>>& seqs,
                          moe::RoutingStats* stats = nullptr,
                          float aux_loss_weight = 0.0f);

  const ModelConfig& config() const { return cfg_; }
  moe::MoEBlock& block(std::size_t l);
  std::size_t num_blocks() const { return blocks_.size(); }
  nn::Embedding& embedding() { return *embed_; }

  // Routing decisions of the most recent forward pass, one per block.
  std::vector<moe::RoutePlan> last_plans() const;

 private:
  ModelConfig cfg_;
  std::unique_ptr<nn::Embedding> embed_;
  std::vector<std::unique_ptr<nn::RMSNorm>> attn_norms_;
  std::vector<std::unique_ptr<nn::CausalSelfAttention>> attns_;
  std::vector<std::unique_ptr<nn::RMSNorm>> moe_norms_;
  std::vector<std::unique_ptr<moe::MoEBlock>> blocks_;
  std::unique_ptr<nn::RMSNorm> final_norm_;
  std::unique_ptr<nn::LoRALinear> lm_head_;
};

}  // namespace vela::model
