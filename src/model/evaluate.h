// Evaluation utilities: token-weighted mean loss and perplexity.
#pragma once

#include <cstddef>
#include <vector>

#include "model/transformer.h"

namespace vela::model {

struct EvalResult {
  double mean_loss = 0.0;    // mean next-token cross entropy (nats)
  double perplexity = 0.0;   // exp(mean_loss)
  std::size_t tokens = 0;    // predicted tokens counted
};

// Forward-only evaluation over `dataset`, batched; losses are weighted by
// each batch's predicted-token count so the result equals the corpus-level
// mean regardless of batching.
EvalResult evaluate_perplexity(
    MoETransformer& model,
    const std::vector<std::vector<std::size_t>>& dataset,
    std::size_t batch_size);

}  // namespace vela::model
