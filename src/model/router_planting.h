// Pre-trained router construction ("router planting").
//
// The paper studies models whose routers were *already trained*: each expert
// has acquired domain specializations, so expert access is biased and stable
// (§III). We cannot download Mixtral's weights here, so we construct the same
// phenomenon: every corpus domain d gets, per MoE block, a (primary,
// secondary) expert preference sampled from a Zipf popularity law, and the
// gate/embedding weights are written so that tokens of domain d produce
// confidently-high logits for exactly those experts. On top of this planted
// initialization, fine-tuning then proceeds with real gradients — Theorem 1's
// stability is *verified*, not assumed.
//
// The same preference model doubles as the generative routing model for the
// Mixtral-shape experiments (Figs. 5–7), where no weight tensors exist: see
// PlantedRouting::generate and moe::SyntheticRouter.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/corpus.h"
#include "model/transformer.h"
#include "tensor/tensor.h"

namespace vela::model {

struct PlantingConfig {
  double popularity_zipf = 1.0;  // expert popularity skew within a block
  float embed_gain = 4.0f;       // domain-signal strength in embeddings
  // Gate logit strength for preferred experts. Calibrated (not saturated):
  // with the default embedding gain, block-1 top-2 score sums land mostly in
  // 0.7–0.95, matching the paper's Fig. 3(b) distribution.
  float gate_gain = 0.6f;
  // The residual stream accumulates noise with depth, diluting the planted
  // signal after RMSNorm; the effective gain of block l is
  // gate_gain · (1 + depth_compensation · l) to keep routing confidence
  // roughly uniform across blocks.
  float depth_compensation = 0.12f;
  float secondary_ratio = 0.65f; // secondary expert's share of gate_gain
  float gate_noise = 0.02f;      // stddev of non-signal gate weights
  float residual_damp = 0.3f;    // scale applied to attention out-projections
  std::uint64_t seed = 42;
};

// The planted routing ground truth: per (layer, domain) the preferred
// expert pair, plus analytic access probabilities.
class PlantedRouting {
 public:
  // Samples preferences only — no model required (used for shape presets).
  static PlantedRouting generate(std::size_t num_layers,
                                 std::size_t num_experts,
                                 std::size_t num_domains,
                                 double popularity_zipf, std::uint64_t seed);

  std::size_t num_layers() const { return prefs_.size(); }
  std::size_t num_experts() const { return num_experts_; }
  std::size_t num_domains() const {
    return prefs_.empty() ? 0 : prefs_[0].size();
  }

  // (primary, secondary) experts for tokens of `domain` in block `layer`.
  std::pair<std::size_t, std::size_t> preference(std::size_t layer,
                                                 std::size_t domain) const;

  // Analytic selection-frequency matrix P ∈ R^{L×E} under a given domain
  // usage distribution: P[l][e] = Σ_d P(domain = d)·1{e ∈ pref(l, d)}.
  // Rows sum to 2 (top-2 routing).
  Tensor expected_probability(const std::vector<double>& domain_dist) const;

 private:
  std::size_t num_experts_ = 0;
  // prefs_[layer][domain] = (primary, secondary)
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> prefs_;
};

// Writes the planted bias into a runnable model's embedding and gate weights
// and damps the attention residual noise. Returns the ground-truth routing.
// Requires corpus.num_domains() <= model_dim.
PlantedRouting plant_locality(MoETransformer& model,
                              const data::SyntheticCorpus& corpus,
                              const PlantingConfig& cfg);

}  // namespace vela::model
