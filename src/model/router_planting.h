// Pre-trained router construction ("router planting").
//
// The paper studies models whose routers were *already trained*: each expert
// has acquired domain specializations, so expert access is biased and stable
// (§III). We cannot download Mixtral's weights here, so we construct the same
// phenomenon: every corpus domain d gets, per MoE block, a (primary,
// secondary) expert preference sampled from a Zipf popularity law, and the
// gate/embedding weights are written so that tokens of domain d produce
// confidently-high logits for exactly those experts. On top of this planted
// initialization, fine-tuning then proceeds with real gradients — Theorem 1's
// stability is *verified*, not assumed.
//
// The preference model itself (moe::PlantedRouting) lives one layer down in
// moe/planted_routing.h, where the synthetic router can reach it without a
// moe -> model layering inversion; this header adds the weight-writing half
// that needs a runnable MoETransformer.
#pragma once

#include <cstdint>

#include "data/corpus.h"
#include "model/transformer.h"
#include "moe/planted_routing.h"

namespace vela::model {

// Back-compat alias: the ground-truth type predates the moe/ split and is
// named model::PlantedRouting throughout the tests/benches.
using PlantedRouting = moe::PlantedRouting;

struct PlantingConfig {
  double popularity_zipf = 1.0;  // expert popularity skew within a block
  float embed_gain = 4.0f;       // domain-signal strength in embeddings
  // Gate logit strength for preferred experts. Calibrated (not saturated):
  // with the default embedding gain, block-1 top-2 score sums land mostly in
  // 0.7–0.95, matching the paper's Fig. 3(b) distribution.
  float gate_gain = 0.6f;
  // The residual stream accumulates noise with depth, diluting the planted
  // signal after RMSNorm; the effective gain of block l is
  // gate_gain · (1 + depth_compensation · l) to keep routing confidence
  // roughly uniform across blocks.
  float depth_compensation = 0.12f;
  float secondary_ratio = 0.65f; // secondary expert's share of gate_gain
  float gate_noise = 0.02f;      // stddev of non-signal gate weights
  float residual_damp = 0.3f;    // scale applied to attention out-projections
  std::uint64_t seed = 42;
};

// Writes the planted bias into a runnable model's embedding and gate weights
// and damps the attention residual noise. Returns the ground-truth routing.
// Requires corpus.num_domains() <= model_dim.
PlantedRouting plant_locality(MoETransformer& model,
                              const data::SyntheticCorpus& corpus,
                              const PlantingConfig& cfg);

}  // namespace vela::model
