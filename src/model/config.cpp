#include "model/config.h"

#include <sstream>

namespace vela::model {

ModelConfig ModelConfig::tiny_mistral() {
  ModelConfig cfg;
  cfg.name = "tiny-mistral-6x";
  cfg.vocab = 96;
  cfg.model_dim = 48;
  cfg.hidden_dim = 96;
  cfg.num_layers = 12;
  cfg.num_experts = 6;
  cfg.top_k = 2;
  cfg.num_heads = 2;
  cfg.wire_bits = 16;
  return cfg;
}

ModelConfig ModelConfig::tiny_test() {
  ModelConfig cfg;
  cfg.name = "tiny-test";
  cfg.vocab = 40;
  cfg.model_dim = 16;
  cfg.hidden_dim = 32;
  cfg.num_layers = 2;
  cfg.num_experts = 4;
  cfg.top_k = 2;
  cfg.num_heads = 2;
  cfg.wire_bits = 32;
  cfg.lora = nn::LoRAConfig{4, 8.0f, true};
  return cfg;
}

ModelConfig ModelConfig::mixtral_8x7b_shape() {
  ModelConfig cfg;
  cfg.name = "mixtral-8x7b";
  cfg.vocab = 32000;
  cfg.model_dim = 4096;
  cfg.hidden_dim = 14336;
  cfg.num_layers = 32;
  cfg.num_experts = 8;
  cfg.top_k = 2;
  cfg.num_heads = 32;
  cfg.wire_bits = 16;
  return cfg;
}

ModelConfig ModelConfig::gritlm_8x7b_shape() {
  ModelConfig cfg = mixtral_8x7b_shape();
  cfg.name = "gritlm-8x7b";
  return cfg;
}

std::string ModelConfig::to_string() const {
  std::ostringstream os;
  os << name << " (L=" << num_layers << ", E=" << num_experts
     << ", k=" << top_k << ", H=" << model_dim << ", hidden=" << hidden_dim
     << ", vocab=" << vocab << ", b=" << wire_bits << ")";
  return os.str();
}

}  // namespace vela::model
