#include "model/generate.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace vela::model {

std::vector<std::size_t> generate(MoETransformer& model,
                                  const std::vector<std::size_t>& prompt,
                                  const GenerateOptions& options, Rng& rng,
                                  moe::RoutingStats* stats) {
  VELA_CHECK_MSG(!prompt.empty(), "generation needs a non-empty prompt");
  VELA_CHECK(options.temperature >= 0.0f);
  std::vector<std::size_t> sequence = prompt;

  for (std::size_t i = 0; i < options.max_new_tokens; ++i) {
    // No KV cache in this reference implementation: re-run the prefix.
    const Tensor logits = model.forward_batch({sequence}, stats).value();
    const std::size_t last = logits.rows() - 1;
    const std::size_t vocab = logits.cols();

    std::size_t next;
    // Temperature 0 is an assigned sentinel (greedy decoding), never the
    // result of arithmetic. vela-lint: allow(float-equality)
    if (options.temperature == 0.0f) {
      next = 0;
      for (std::size_t v = 1; v < vocab; ++v) {
        if (logits.at(last, v) > logits.at(last, next)) next = v;
      }
    } else {
      // Temperature softmax, optionally truncated to the top-k logits.
      std::vector<std::size_t> candidates(vocab);
      for (std::size_t v = 0; v < vocab; ++v) candidates[v] = v;
      if (options.top_k > 0 && options.top_k < vocab) {
        std::partial_sort(candidates.begin(),
                          candidates.begin() + static_cast<long>(options.top_k),
                          candidates.end(), [&](std::size_t a, std::size_t b) {
                            return logits.at(last, a) > logits.at(last, b);
                          });
        candidates.resize(options.top_k);
      }
      float mx = logits.at(last, candidates[0]);
      for (std::size_t v : candidates) mx = std::max(mx, logits.at(last, v));
      std::vector<double> weights;
      weights.reserve(candidates.size());
      for (std::size_t v : candidates) {
        weights.push_back(
            std::exp((logits.at(last, v) - mx) / options.temperature));
      }
      next = candidates[rng.categorical(weights)];
    }
    sequence.push_back(next);
  }
  return sequence;
}

}  // namespace vela::model
