// Autoregressive text generation from the MoE transformer.
//
// The deployment-side counterpart of fine-tuning (the setting Lina/Fiddler/
// MoE-Infinity optimize): greedy or temperature sampling over the model's
// next-token distribution. Works against any ExpertBackend, so generation
// can run through VELA's distributed broker exactly like training forwards.
#pragma once

#include <cstddef>
#include <vector>

#include "model/transformer.h"
#include "util/rng.h"

namespace vela::model {

struct GenerateOptions {
  std::size_t max_new_tokens = 32;
  // 0 → greedy argmax decoding; otherwise softmax temperature.
  float temperature = 0.0f;
  // Restrict sampling to the k most likely tokens (0 disables top-k).
  std::size_t top_k = 0;
};

// Extends `prompt` by up to max_new_tokens ids. The prompt must be
// non-empty; the result includes the prompt prefix. `stats` (optional)
// accumulates routing decisions — generation-time expert access profiling.
std::vector<std::size_t> generate(MoETransformer& model,
                                  const std::vector<std::size_t>& prompt,
                                  const GenerateOptions& options, Rng& rng,
                                  moe::RoutingStats* stats = nullptr);

}  // namespace vela::model
