#include "data/corpus.h"

#include <algorithm>

#include "util/check.h"

namespace vela::data {

CorpusConfig CorpusConfig::wikitext_like(std::size_t vocab,
                                         std::size_t domains) {
  CorpusConfig cfg;
  cfg.name = "wikitext-like";
  cfg.vocab = vocab;
  cfg.num_domains = domains;
  cfg.domain_zipf = 1.3;
  cfg.token_zipf = 0.9;
  cfg.purity = 0.92;
  return cfg;
}

CorpusConfig CorpusConfig::alpaca_like(std::size_t vocab,
                                       std::size_t domains) {
  CorpusConfig cfg;
  cfg.name = "alpaca-like";
  cfg.vocab = vocab;
  cfg.num_domains = domains;
  cfg.domain_zipf = 0.45;
  cfg.token_zipf = 0.6;
  cfg.purity = 0.72;
  return cfg;
}

CorpusConfig CorpusConfig::shakespeare_like(std::size_t vocab,
                                            std::size_t domains) {
  CorpusConfig cfg;
  cfg.name = "shakespeare-like";
  cfg.vocab = vocab;
  cfg.num_domains = domains;
  // Tiny-Shakespeare is a single homogeneous corpus: domain usage is
  // concentrated AND every batch looks alike (low per-sequence coherence:
  // token topics are near-iid draws from the corpus topic law), which is
  // what makes Fig. 3(c)'s per-step frequencies so flat.
  cfg.domain_zipf = 1.5;
  cfg.token_zipf = 1.0;
  cfg.purity = 0.3;
  return cfg;
}

CorpusConfig CorpusConfig::uniform(std::size_t vocab, std::size_t domains) {
  CorpusConfig cfg;
  cfg.name = "uniform";
  cfg.vocab = vocab;
  cfg.num_domains = domains;
  cfg.domain_zipf = 0.0;
  cfg.token_zipf = 0.0;
  cfg.purity = 1.0 / static_cast<double>(domains);  // fully mixed
  return cfg;
}

SyntheticCorpus::SyntheticCorpus(CorpusConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      seed_(seed),
      domain_sampler_(cfg_.num_domains, cfg_.domain_zipf),
      token_sampler_((cfg_.vocab + cfg_.num_domains - 1) / cfg_.num_domains,
                     cfg_.token_zipf) {
  VELA_CHECK(cfg_.vocab >= cfg_.num_domains && cfg_.num_domains > 0);
  VELA_CHECK(cfg_.purity >= 0.0 && cfg_.purity <= 1.0);
  // Build the per-domain token tables and shuffle rank order per domain so
  // the "head" tokens of different domains are unrelated ids.
  Rng table_rng(seed_ ^ 0xD0A11CEULL);
  domain_tokens_.resize(cfg_.num_domains);
  for (std::size_t t = 0; t < cfg_.vocab; ++t) {
    domain_tokens_[t % cfg_.num_domains].push_back(t);
  }
  for (auto& table : domain_tokens_) table_rng.shuffle(table);
}

std::size_t SyntheticCorpus::domain_of_token(std::size_t token) const {
  VELA_CHECK(token < cfg_.vocab);
  return token % cfg_.num_domains;
}

std::size_t SyntheticCorpus::sample_token_in_domain(std::size_t domain,
                                                    Rng& rng) const {
  const auto& table = domain_tokens_[domain];
  std::size_t rank = token_sampler_.sample(rng);
  if (rank >= table.size()) rank = table.size() - 1;  // ragged last domain
  return table[rank];
}

std::vector<std::size_t> SyntheticCorpus::sample_sequence(std::size_t len,
                                                          Rng& rng) const {
  VELA_CHECK(len > 0);
  const std::size_t seq_domain = domain_sampler_.sample(rng);
  std::vector<std::size_t> seq;
  seq.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    std::size_t domain = seq_domain;
    if (rng.uniform() >= cfg_.purity) {
      // Topic drift: off-topic tokens follow the corpus-level topic
      // popularity, not a uniform law — so the marginal token-domain
      // distribution equals the domain popularity for any purity, and
      // purity only controls how coherent individual sequences are.
      domain = domain_sampler_.sample(rng);
    }
    seq.push_back(sample_token_in_domain(domain, rng));
  }
  return seq;
}

std::vector<std::vector<std::size_t>> SyntheticCorpus::sample_batch(
    std::size_t batch_size, std::size_t len, Rng& rng) const {
  std::vector<std::vector<std::size_t>> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    batch.push_back(sample_sequence(len, rng));
  }
  return batch;
}

std::vector<std::vector<std::size_t>> SyntheticCorpus::make_dataset(
    std::size_t num_sequences, std::size_t len) const {
  Rng rng(seed_);
  std::vector<std::vector<std::size_t>> dataset;
  dataset.reserve(num_sequences);
  for (std::size_t i = 0; i < num_sequences; ++i) {
    dataset.push_back(sample_sequence(len, rng));
  }
  return dataset;
}

std::vector<double> SyntheticCorpus::domain_distribution() const {
  // Both on-topic and drifted tokens draw their domain from the same
  // popularity law, so the marginal is exactly the domain pmf.
  std::vector<double> dist(cfg_.num_domains, 0.0);
  for (std::size_t d = 0; d < cfg_.num_domains; ++d) {
    dist[d] = domain_sampler_.pmf(d);
  }
  return dist;
}

}  // namespace vela::data
