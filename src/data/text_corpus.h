// Real-text fine-tuning corpus: char-level tokenization + sliding windows.
//
// The synthetic corpora drive the calibrated experiments; this wrapper is for
// actually fine-tuning on text the way the paper fine-tunes TinyMistral on
// Tiny-Shakespeare. Ships with an embedded public-domain Shakespeare sample
// so the examples run without any downloads.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/tokenizer.h"

namespace vela::data {

class TextCorpus {
 public:
  // Splits `text` into sliding windows of `sequence_length` token ids,
  // advancing by `stride` (stride == sequence_length → disjoint windows).
  TextCorpus(const std::string& text, std::size_t sequence_length,
             std::size_t stride);

  const CharTokenizer& tokenizer() const { return tokenizer_; }
  std::size_t vocab_size() const { return tokenizer_.vocab_size(); }
  std::size_t num_sequences() const { return sequences_.size(); }
  const std::vector<std::vector<std::size_t>>& sequences() const {
    return sequences_;
  }

  std::string decode(const std::vector<std::size_t>& ids) const {
    return tokenizer_.decode(ids);
  }

  // ~1.5 KB of public-domain Shakespeare (the opening of Richard III's
  // famous soliloquy plus sonnet fragments) — enough for the tiny models.
  static std::string tiny_shakespeare_sample();

 private:
  CharTokenizer tokenizer_;
  std::vector<std::vector<std::size_t>> sequences_;
};

}  // namespace vela::data
