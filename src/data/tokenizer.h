// Character-level tokenizer.
//
// The paper's TinyMistral measurement uses Tiny-Shakespeare, a character-level
// corpus; this tokenizer provides the same granularity for the examples that
// fine-tune on real text snippets. Synthetic corpora bypass it and emit token
// ids directly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vela::data {

class CharTokenizer {
 public:
  // Vocabulary = the distinct characters of `corpus`, sorted; unknown
  // characters encode to id 0.
  explicit CharTokenizer(const std::string& corpus);

  std::size_t vocab_size() const { return chars_.size(); }
  std::vector<std::size_t> encode(const std::string& text) const;
  std::string decode(const std::vector<std::size_t>& ids) const;

 private:
  std::vector<char> chars_;
  std::vector<int> char_to_id_;  // indexed by unsigned char, -1 = unknown
};

}  // namespace vela::data
