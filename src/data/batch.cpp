#include "data/batch.h"

#include <numeric>

#include "util/check.h"

namespace vela::data {

BatchIterator::BatchIterator(std::vector<std::vector<std::size_t>> dataset,
                             std::size_t batch_size, std::uint64_t seed,
                             bool shuffle)
    : dataset_(std::move(dataset)),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  VELA_CHECK(!dataset_.empty());
  VELA_CHECK(batch_size_ > 0);
  order_.resize(dataset_.size());
  std::iota(order_.begin(), order_.end(), 0);
  reshuffle();
}

void BatchIterator::reshuffle() {
  if (shuffle_) rng_.shuffle(order_);
  cursor_ = 0;
}

std::vector<std::vector<std::size_t>> BatchIterator::next() {
  std::vector<std::vector<std::size_t>> batch;
  batch.reserve(batch_size_);
  while (batch.size() < batch_size_) {
    if (cursor_ == order_.size()) {
      ++epochs_;
      reshuffle();
    }
    batch.push_back(dataset_[order_[cursor_++]]);
  }
  return batch;
}

}  // namespace vela::data
