// Synthetic fine-tuning corpora with a planted domain structure.
//
// The paper's datasets differ in exactly one property that matters to VELA:
// how concentrated the induced expert-access distribution is (Fig. 7 —
// WikiText concentrates on a few hot experts, Alpaca is flatter). The
// generators reproduce that control surface:
//
//   * every token id belongs to one of `num_domains` topic domains;
//   * a sequence first samples its domain from a Zipf(domain_zipf)
//     popularity law, then emits tokens from that domain with probability
//     `purity`, otherwise from a random domain (topic drift / stop words);
//   * within a domain, token frequencies follow Zipf(token_zipf).
//
// Since the router is planted to prefer domain-specific experts (see
// model/router_planting.h), domain concentration translates directly into
// expert locality: high domain_zipf + high purity ⇒ WikiText-like hot
// experts; low values ⇒ Alpaca-like near-uniform access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace vela::data {

struct CorpusConfig {
  std::string name;
  std::size_t vocab = 96;
  std::size_t num_domains = 6;
  double domain_zipf = 1.0;  // sequence-domain popularity skew
  double token_zipf = 0.8;   // within-domain token popularity skew
  double purity = 0.9;       // P(token comes from the sequence's domain)

  // Concentrated language-modeling corpus (WikiText-103 stand-in).
  static CorpusConfig wikitext_like(std::size_t vocab, std::size_t domains);
  // Flatter instruction-tuning corpus (Alpaca stand-in).
  static CorpusConfig alpaca_like(std::size_t vocab, std::size_t domains);
  // Single-author theatrical text (Tiny-Shakespeare stand-in, §III).
  static CorpusConfig shakespeare_like(std::size_t vocab, std::size_t domains);
  // Uniform control: no locality at all (adversarial input for VELA).
  static CorpusConfig uniform(std::size_t vocab, std::size_t domains);
};

class SyntheticCorpus {
 public:
  SyntheticCorpus(CorpusConfig cfg, std::uint64_t seed);

  const CorpusConfig& config() const { return cfg_; }

  // Token ids of domain d are {t : t mod num_domains == d}.
  std::size_t domain_of_token(std::size_t token) const;
  std::size_t num_domains() const { return cfg_.num_domains; }

  // Samples one sequence of `len` token ids.
  std::vector<std::size_t> sample_sequence(std::size_t len, Rng& rng) const;
  std::vector<std::vector<std::size_t>> sample_batch(std::size_t batch_size,
                                                     std::size_t len,
                                                     Rng& rng) const;

  // A fixed dataset (deterministic in the corpus seed): the fine-tuning
  // set that the profiler pre-passes and the trainer then iterates.
  std::vector<std::vector<std::size_t>> make_dataset(std::size_t num_sequences,
                                                     std::size_t len) const;

  // Stationary domain usage distribution (for analysis/tests): probability
  // that a random token belongs to each domain.
  std::vector<double> domain_distribution() const;

 private:
  std::size_t sample_token_in_domain(std::size_t domain, Rng& rng) const;

  CorpusConfig cfg_;
  std::uint64_t seed_;
  ZipfSampler domain_sampler_;
  ZipfSampler token_sampler_;  // rank within a domain
  // Per-domain shuffled rank→token tables so "popular" tokens differ across
  // domains even when domains share sizes.
  std::vector<std::vector<std::size_t>> domain_tokens_;
};

}  // namespace vela::data
