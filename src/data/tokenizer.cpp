#include "data/tokenizer.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace vela::data {

CharTokenizer::CharTokenizer(const std::string& corpus)
    : char_to_id_(256, -1) {
  VELA_CHECK(!corpus.empty());
  std::set<char> distinct(corpus.begin(), corpus.end());
  chars_.assign(distinct.begin(), distinct.end());
  for (std::size_t i = 0; i < chars_.size(); ++i) {
    char_to_id_[static_cast<unsigned char>(chars_[i])] = static_cast<int>(i);
  }
}

std::vector<std::size_t> CharTokenizer::encode(const std::string& text) const {
  std::vector<std::size_t> ids;
  ids.reserve(text.size());
  for (char c : text) {
    const int id = char_to_id_[static_cast<unsigned char>(c)];
    ids.push_back(id >= 0 ? static_cast<std::size_t>(id) : 0);
  }
  return ids;
}

std::string CharTokenizer::decode(const std::vector<std::size_t>& ids) const {
  std::string text;
  text.reserve(ids.size());
  for (std::size_t id : ids) {
    VELA_CHECK(id < chars_.size());
    text.push_back(chars_[id]);
  }
  return text;
}

}  // namespace vela::data
