// Mini-batch iteration over a fixed fine-tuning dataset.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace vela::data {

// Cycles through a dataset in shuffled epochs, returning `batch_size`
// sequences per step — the paper fine-tunes for a fixed number of steps, so
// the iterator wraps around as needed.
class BatchIterator {
 public:
  BatchIterator(std::vector<std::vector<std::size_t>> dataset,
                std::size_t batch_size, std::uint64_t seed,
                bool shuffle = true);

  std::vector<std::vector<std::size_t>> next();

  std::size_t batch_size() const { return batch_size_; }
  std::size_t dataset_size() const { return dataset_.size(); }
  std::size_t epochs_completed() const { return epochs_; }

 private:
  void reshuffle();

  std::vector<std::vector<std::size_t>> dataset_;
  std::size_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
  std::size_t epochs_ = 0;
};

}  // namespace vela::data
