#include "data/text_corpus.h"

#include "util/check.h"

namespace vela::data {

TextCorpus::TextCorpus(const std::string& text, std::size_t sequence_length,
                       std::size_t stride)
    : tokenizer_(text) {
  VELA_CHECK(sequence_length >= 2);
  VELA_CHECK(stride >= 1);
  const std::vector<std::size_t> ids = tokenizer_.encode(text);
  VELA_CHECK_MSG(ids.size() >= sequence_length,
                 "text shorter than one sequence window");
  for (std::size_t start = 0; start + sequence_length <= ids.size();
       start += stride) {
    sequences_.emplace_back(ids.begin() + static_cast<long>(start),
                            ids.begin() + static_cast<long>(start + sequence_length));
  }
}

std::string TextCorpus::tiny_shakespeare_sample() {
  return
      "Now is the winter of our discontent\n"
      "Made glorious summer by this sun of York;\n"
      "And all the clouds that lour'd upon our house\n"
      "In the deep bosom of the ocean buried.\n"
      "Now are our brows bound with victorious wreaths;\n"
      "Our bruised arms hung up for monuments;\n"
      "Our stern alarums changed to merry meetings,\n"
      "Our dreadful marches to delightful measures.\n"
      "Grim-visaged war hath smooth'd his wrinkled front;\n"
      "And now, instead of mounting barded steeds\n"
      "To fright the souls of fearful adversaries,\n"
      "He capers nimbly in a lady's chamber\n"
      "To the lascivious pleasing of a lute.\n"
      "Shall I compare thee to a summer's day?\n"
      "Thou art more lovely and more temperate:\n"
      "Rough winds do shake the darling buds of May,\n"
      "And summer's lease hath all too short a date:\n"
      "Sometime too hot the eye of heaven shines,\n"
      "And often is his gold complexion dimm'd;\n"
      "And every fair from fair sometime declines,\n"
      "By chance, or nature's changing course, untrimm'd;\n"
      "But thy eternal summer shall not fade,\n"
      "Nor lose possession of that fair thou ow'st;\n"
      "Nor shall Death brag thou wander'st in his shade,\n"
      "When in eternal lines to time thou grow'st;\n"
      "So long as men can breathe, or eyes can see,\n"
      "So long lives this, and this gives life to thee.\n"
      "When forty winters shall besiege thy brow,\n"
      "And dig deep trenches in thy beauty's field,\n"
      "Thy youth's proud livery, so gazed on now,\n"
      "Will be a tatter'd weed, of small worth held.\n";
}

}  // namespace vela::data
