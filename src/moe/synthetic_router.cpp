#include "moe/synthetic_router.h"

#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace vela::moe {

SyntheticRouter::SyntheticRouter(const PlantedRouting* routing,
                                 SyntheticRouterConfig cfg)
    : routing_(routing), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  VELA_CHECK(routing_ != nullptr);
  VELA_CHECK(cfg_.domain_dist.size() == routing_->num_domains());
  VELA_CHECK(cfg_.routing_noise >= 0.0 && cfg_.routing_noise <= 1.0);
  domain_dist_ = cfg_.domain_dist;
  normalize_in_place(domain_dist_);
}

std::vector<RoutePlan> SyntheticRouter::sample_step(std::size_t num_tokens) {
  VELA_CHECK(num_tokens > 0);
  const std::size_t num_layers = routing_->num_layers();
  const std::size_t num_experts = routing_->num_experts();

  std::vector<RoutePlan> plans(num_layers);
  for (auto& plan : plans) {
    plan.num_tokens = num_tokens;
    plan.num_experts = num_experts;
    plan.top_k = 2;
    plan.expert_tokens.assign(num_experts, {});
  }

  for (std::size_t t = 0; t < num_tokens; ++t) {
    // A token's domain identity is shared across all blocks.
    const std::size_t domain = rng_.categorical(domain_dist_);
    for (std::size_t l = 0; l < num_layers; ++l) {
      auto [first, second] = routing_->preference(l, domain);
      if (rng_.uniform() < cfg_.routing_noise) {
        first = static_cast<std::size_t>(rng_.uniform_index(num_experts));
      }
      if (rng_.uniform() < cfg_.routing_noise || second == first) {
        do {
          second = static_cast<std::size_t>(rng_.uniform_index(num_experts));
        } while (second == first);
      }
      plans[l].expert_tokens[first].push_back(t);
      plans[l].expert_tokens[second].push_back(t);
    }
  }
  // Groups are ascending by construction (tokens visited in order), but an
  // expert can appear as both `first` for one token and `second` for another
  // — still ascending per group since each token pushes at most once per
  // group.

  // Advance the drift: random walk on log-weights.
  if (cfg_.drift_sigma > 0.0) {
    for (auto& w : domain_dist_) {
      w *= std::exp(cfg_.drift_sigma * rng_.normal());
    }
    normalize_in_place(domain_dist_);
  }
  return plans;
}

Tensor SyntheticRouter::estimate_probability(std::size_t num_tokens) {
  // Sample one large step without advancing drift.
  const double saved_sigma = cfg_.drift_sigma;
  const std::vector<double> saved_dist = domain_dist_;
  cfg_.drift_sigma = 0.0;
  const auto plans = sample_step(num_tokens);
  cfg_.drift_sigma = saved_sigma;
  domain_dist_ = saved_dist;

  Tensor p({routing_->num_layers(), routing_->num_experts()});
  for (std::size_t l = 0; l < plans.size(); ++l) {
    for (std::size_t e = 0; e < routing_->num_experts(); ++e) {
      p.at(l, e) = static_cast<float>(plans[l].expert_tokens[e].size()) /
                   static_cast<float>(num_tokens);
    }
  }
  return p;
}

}  // namespace vela::moe
