// Top-k softmax gating mechanism (§II of the paper).
//
// For every token the gate computes softmax logits over the E experts of its
// block, selects the k most probable experts, and produces combine weights
// p_i / Σ p_i over the selected set — which is exactly a softmax over the
// selected logits (Eq. (1)). The selection itself is discrete and therefore
// non-differentiable; the combine weights are differentiable w.r.t. the gate
// logits, matching the standard MoE training recipe. The gate layer is frozen
// in the paper's fine-tuning setting (Shen et al.: tuning it degrades the
// model), but it can be constructed trainable for the Theorem 1 study.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace vela::moe {

// The routing decision for one MoE block invocation.
//
// Assignments are stored grouped by expert: tokens routed to expert e, in
// ascending token order, occupy `expert_tokens[e]`. The flat order — expert 0
// group, then expert 1 group, … — is the canonical "dispatch order": the
// differentiable combine weights and all dispatched tensors follow it.
struct RoutePlan {
  std::size_t num_tokens = 0;
  std::size_t num_experts = 0;
  std::size_t top_k = 0;
  std::vector<std::vector<std::size_t>> expert_tokens;

  // Offset of expert e's group in dispatch order.
  std::size_t group_offset(std::size_t e) const;
  // Total number of (token, expert) assignments, == num_tokens * top_k.
  std::size_t total_assignments() const;
  // Validates structural invariants (each token appears exactly top_k times,
  // no token routed twice to the same expert). Throws on violation.
  void validate() const;
};

struct GateOutput {
  RoutePlan plan;
  // Full softmax over all E experts, detached — the quantity P_t(x) that the
  // paper's locality analysis and profiler consume. Shape [n_tokens, E].
  Tensor probs;
  // Raw router logits, still wired into the tape (auxiliary losses
  // differentiate through these). Shape [n_tokens, E].
  ag::Variable logits;
  // Differentiable combine weights in dispatch order, length n_tokens * k.
  // Entry for (token t, expert e) equals p_e / Σ_{e' selected} p_e'.
  ag::Variable combine_weights;
  // Per-token sum of the selected experts' full-softmax scores (Fig. 3(b)).
  std::vector<float> selected_score_sums;
};

class TopKGate : public nn::Module {
 public:
  TopKGate(std::string name, std::size_t model_dim, std::size_t num_experts,
           std::size_t top_k, Rng& rng, bool trainable = false);

  // x: [n_tokens, model_dim].
  GateOutput forward(const ag::Variable& x) const;

  std::size_t num_experts() const { return experts_; }
  std::size_t top_k() const { return k_; }
  // The raw gate projection weight [E, model_dim]; router planting rewrites
  // it to install pre-trained expert-popularity bias.
  ag::Variable& weight() { return proj_->weight(); }

  // Expert capacity factor (GShard/Switch style): when > 0, each expert
  // accepts at most ⌈factor · n · k / E⌉ dispatch slots per forward;
  // overflowing tokens fall back to their next-best expert with room. The
  // cap is soft, never lossy: if a token would otherwise receive fewer than
  // k distinct experts, its remaining selections go to the least-loaded
  // unselected experts, slightly exceeding the cap rather than dropping the
  // token. 0 (default) disables capping — the paper's fine-tuning setting,
  // where locality must NOT be suppressed.
  void set_capacity_factor(double factor);
  double capacity_factor() const { return capacity_factor_; }

 private:
  std::size_t experts_, k_;
  double capacity_factor_ = 0.0;
  std::unique_ptr<nn::Linear> proj_;
};

// Differentiable combine weights: softmax restricted to each token's selected
// experts, emitted in the plan's dispatch order. Exposed for testing.
ag::Variable routing_weights(const ag::Variable& logits, const RoutePlan& plan);

// Switch-Transformer-style auxiliary load-balancing loss (§III: pre-training
// "introduces auxiliary loss terms that penalize this imbalance"):
//   L_aux = E · Σ_e f_e · P̄_e,
// where f_e is the fraction of dispatch slots routed to expert e (detached)
// and P̄_e the mean router probability of e (differentiable). Minimized at
// the uniform routing, value 1 for any top-k. Requires a trainable gate to
// have any effect.
ag::Variable load_balance_loss(const GateOutput& gate_out);

// ST-MoE router z-loss: mean over tokens of (log Σ_e exp z_e)². Penalizes
// large router logits, keeping the gate numerically tame during
// (pre-)training without forcing balance. Requires a trainable gate.
ag::Variable router_z_loss(const GateOutput& gate_out);

}  // namespace vela::moe
