// Routing-trace capture and replay.
//
// Production MoE deployments profile expert access from real traffic traces;
// this repository substitutes synthetic generators for those traces, and the
// trace module makes the substitution explicit and swappable: any sequence
// of per-step routing decisions — recorded from a live fine-tuning run, from
// the SyntheticRouter, or (in principle) converted from an external system —
// can be saved to a compact binary file and replayed bit-identically into
// the placement pipeline and the traffic models.
//
// File layout (little-endian): magic "VELATRCE", u32 version, u64 steps,
// then per step: u32 layers, and per layer: u64 tokens, u32 experts,
// u32 top_k, per expert: u64 group size + that many u64 token ids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "moe/gate.h"

namespace vela::moe {

using RoutingTrace = std::vector<std::vector<RoutePlan>>;  // [step][layer]

void save_routing_trace(const std::string& path, const RoutingTrace& trace);
RoutingTrace load_routing_trace(const std::string& path);

// Replays a trace step by step, wrapping around at the end.
class TraceRouter {
 public:
  explicit TraceRouter(RoutingTrace trace);

  const std::vector<RoutePlan>& next_step();
  std::size_t num_steps() const { return trace_.size(); }
  std::size_t steps_replayed() const { return replayed_; }

 private:
  RoutingTrace trace_;
  std::size_t cursor_ = 0;
  std::size_t replayed_ = 0;
};

// Aggregates a trace into the probability matrix P (the profiling pass over
// a recorded trace instead of a live model).
Tensor trace_probability(const RoutingTrace& trace);

}  // namespace vela::moe
