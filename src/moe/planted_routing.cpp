#include "moe/planted_routing.h"

#include "util/check.h"
#include "util/rng.h"

namespace vela::moe {

PlantedRouting PlantedRouting::generate(std::size_t num_layers,
                                        std::size_t num_experts,
                                        std::size_t num_domains,
                                        double popularity_zipf,
                                        std::uint64_t seed) {
  VELA_CHECK(num_layers > 0 && num_experts >= 2 && num_domains > 0);
  PlantedRouting out;
  out.num_experts_ = num_experts;
  out.prefs_.resize(num_layers);
  ZipfSampler popularity(num_experts, popularity_zipf);
  for (std::size_t l = 0; l < num_layers; ++l) {
    Rng rng(seed * 0x100000001B3ULL + l);
    // A per-layer permutation decides WHICH experts are the popular ones, so
    // hot experts differ across blocks like in Fig. 7.
    std::vector<std::size_t> perm(num_experts);
    for (std::size_t e = 0; e < num_experts; ++e) perm[e] = e;
    rng.shuffle(perm);
    out.prefs_[l].resize(num_domains);
    for (std::size_t d = 0; d < num_domains; ++d) {
      const std::size_t primary = perm[popularity.sample(rng)];
      std::size_t secondary = primary;
      while (secondary == primary) secondary = perm[popularity.sample(rng)];
      out.prefs_[l][d] = {primary, secondary};
    }
  }
  return out;
}

std::pair<std::size_t, std::size_t> PlantedRouting::preference(
    std::size_t layer, std::size_t domain) const {
  VELA_CHECK(layer < prefs_.size() && domain < prefs_[layer].size());
  return prefs_[layer][domain];
}

Tensor PlantedRouting::expected_probability(
    const std::vector<double>& domain_dist) const {
  VELA_CHECK(domain_dist.size() == num_domains());
  Tensor p({num_layers(), num_experts_});
  for (std::size_t l = 0; l < num_layers(); ++l) {
    for (std::size_t d = 0; d < num_domains(); ++d) {
      const auto [primary, secondary] = prefs_[l][d];
      p.at(l, primary) += static_cast<float>(domain_dist[d]);
      p.at(l, secondary) += static_cast<float>(domain_dist[d]);
    }
  }
  return p;
}

}  // namespace vela::moe
