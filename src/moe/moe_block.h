// The MoE block, generic over where experts physically live.
//
// The block owns the gating mechanism (part of the model backbone, like the
// paper's Fig. 4) but delegates expert computation to an ExpertBackend:
//
//   * LocalExpertBackend  — experts in-process (dense reference execution,
//     used for correctness tests and single-device baselines);
//   * BrokerExpertBackend — VELA's Expert Broker (src/core), which dispatches
//     token blocks to remote worker processes and stitches the returned
//     activations/gradients into the master tape;
//   * the EP baseline's sharded backend (src/ep).
//
// Because the block's dataflow (gate → dispatch → expert → weighted combine)
// is identical in all three cases, test equivalence between backends is a
// strong end-to-end check of the distributed protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "moe/gate.h"
#include "moe/routing_stats.h"
#include "nn/expert.h"
#include "nn/module.h"

namespace vela::moe {

// Where expert sub-networks execute. `layer` identifies the MoE block so a
// single backend instance can serve the whole model.
class ExpertBackend {
 public:
  virtual ~ExpertBackend() = default;

  // Computes expert `expert` of block `layer` on the gathered token block
  // `xs` ([n_e, H]) and returns its output as a Variable wired into the
  // caller's autograd tape.
  virtual ag::Variable expert_forward(std::size_t layer, std::size_t expert,
                                      const ag::Variable& xs) = 0;

  // Batched form: all non-empty expert groups of one block at once. The
  // default loops over expert_forward; distributed backends override it to
  // dispatch every group before collecting any result, so workers compute
  // in parallel (the master's one-to-all pattern of §V-B).
  virtual std::vector<ag::Variable> experts_forward(
      std::size_t layer,
      const std::vector<std::pair<std::size_t, ag::Variable>>& groups) {
    std::vector<ag::Variable> out;
    out.reserve(groups.size());
    for (const auto& [expert, xs] : groups) {
      out.push_back(expert_forward(layer, expert, xs));
    }
    return out;
  }
};

// In-process backend owning all experts of all layers. Expert (l, e) is
// initialized from nn::expert_seed(base_seed, l, e), the same derivation the
// distributed workers use — identical base_seed ⇒ identical weights.
class LocalExpertBackend : public ExpertBackend, public nn::Module {
 public:
  LocalExpertBackend(std::size_t num_layers, std::size_t num_experts,
                     std::size_t model_dim, std::size_t hidden_dim,
                     const nn::LoRAConfig& lora, std::uint64_t base_seed);

  ag::Variable expert_forward(std::size_t layer, std::size_t expert,
                              const ag::Variable& xs) override;

  nn::SwiGLUExpert& expert(std::size_t layer, std::size_t e);
  std::size_t num_layers() const { return layers_; }
  std::size_t num_experts() const { return experts_per_layer_; }

 private:
  std::size_t layers_, experts_per_layer_;
  std::vector<std::unique_ptr<nn::SwiGLUExpert>> experts_;  // [L*E]
};

// The MoE block: gate + dispatch/combine around an ExpertBackend.
class MoEBlock : public nn::Module {
 public:
  MoEBlock(std::string name, std::size_t layer_index, std::size_t model_dim,
           std::size_t num_experts, std::size_t top_k, Rng& rng,
           ExpertBackend* backend, bool trainable_gate = false);

  // x: [n_tokens, model_dim]. If `stats` is non-null the routing decision is
  // recorded into it (profiling mode).
  ag::Variable forward(const ag::Variable& x, RoutingStats* stats = nullptr);

  // The routing decision of the most recent forward (per-step traffic
  // accounting reads this).
  const RoutePlan& last_plan() const { return last_gate_output_.plan; }
  // The full gate output of the most recent forward, still wired into the
  // tape — auxiliary losses (moe::load_balance_loss) differentiate through
  // it.
  const GateOutput& last_gate_output() const { return last_gate_output_; }

  TopKGate& gate() { return *gate_; }
  std::size_t layer_index() const { return layer_; }

 private:
  std::size_t layer_;
  std::unique_ptr<TopKGate> gate_;
  ExpertBackend* backend_;  // non-owning; shared across blocks
  GateOutput last_gate_output_;
};

}  // namespace vela::moe
