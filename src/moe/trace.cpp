#include "moe/trace.h"

#include <algorithm>
#include <fstream>

#include "util/check.h"

namespace vela::moe {
namespace {

constexpr char kMagic[8] = {'V', 'E', 'L', 'A', 'T', 'R', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

// The routing-trace container predates the store layer and owns its own
// magic/version framing; migrating it onto store/tensor_file is tracked
// work, so its stream plumbing carries rationales for now.
template <typename T>
// vela-lint: allow(raw-file-io)
void write_pod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
// vela-lint: allow(raw-file-io)
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  VELA_CHECK_MSG(in.good(), "routing trace truncated");
  return value;
}

}  // namespace

void save_routing_trace(const std::string& path, const RoutingTrace& trace) {
  // vela-lint: allow(raw-file-io) -- pre-store trace container, see above
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  VELA_CHECK_MSG(out.good(), "cannot open trace file " << path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(trace.size()));
  for (const auto& step : trace) {
    write_pod(out, static_cast<std::uint32_t>(step.size()));
    for (const auto& plan : step) {
      plan.validate();
      write_pod(out, static_cast<std::uint64_t>(plan.num_tokens));
      write_pod(out, static_cast<std::uint32_t>(plan.num_experts));
      write_pod(out, static_cast<std::uint32_t>(plan.top_k));
      for (const auto& group : plan.expert_tokens) {
        write_pod(out, static_cast<std::uint64_t>(group.size()));
        for (std::size_t token : group) {
          write_pod(out, static_cast<std::uint64_t>(token));
        }
      }
    }
  }
  VELA_CHECK_MSG(out.good(), "trace write failed: " << path);
}

RoutingTrace load_routing_trace(const std::string& path) {
  // vela-lint: allow(raw-file-io) -- pre-store trace container, see above
  std::ifstream in(path, std::ios::binary);
  VELA_CHECK_MSG(in.good(), "cannot open trace file " << path);
  char magic[8];
  in.read(magic, sizeof(magic));
  VELA_CHECK_MSG(in.good() && std::equal(magic, magic + 8, kMagic),
                 "not a VELA routing trace: " << path);
  const auto version = read_pod<std::uint32_t>(in);
  VELA_CHECK_MSG(version == kVersion, "unsupported trace version " << version);
  const auto steps = read_pod<std::uint64_t>(in);
  RoutingTrace trace;
  trace.reserve(steps);
  for (std::uint64_t s = 0; s < steps; ++s) {
    const auto layers = read_pod<std::uint32_t>(in);
    std::vector<RoutePlan> step;
    step.reserve(layers);
    for (std::uint32_t l = 0; l < layers; ++l) {
      RoutePlan plan;
      plan.num_tokens = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
      plan.num_experts = read_pod<std::uint32_t>(in);
      plan.top_k = read_pod<std::uint32_t>(in);
      plan.expert_tokens.resize(plan.num_experts);
      for (auto& group : plan.expert_tokens) {
        const auto size = read_pod<std::uint64_t>(in);
        group.reserve(size);
        for (std::uint64_t i = 0; i < size; ++i) {
          group.push_back(static_cast<std::size_t>(read_pod<std::uint64_t>(in)));
        }
      }
      plan.validate();
      step.push_back(std::move(plan));
    }
    trace.push_back(std::move(step));
  }
  return trace;
}

TraceRouter::TraceRouter(RoutingTrace trace) : trace_(std::move(trace)) {
  VELA_CHECK_MSG(!trace_.empty(), "empty routing trace");
}

const std::vector<RoutePlan>& TraceRouter::next_step() {
  const auto& step = trace_[cursor_];
  cursor_ = (cursor_ + 1) % trace_.size();
  ++replayed_;
  return step;
}

Tensor trace_probability(const RoutingTrace& trace) {
  VELA_CHECK(!trace.empty() && !trace[0].empty());
  const std::size_t layers = trace[0].size();
  const std::size_t experts = trace[0][0].num_experts;
  Tensor p({layers, experts});
  std::uint64_t tokens = 0;
  for (const auto& step : trace) {
    VELA_CHECK(step.size() == layers);
    tokens += step[0].num_tokens;
    for (std::size_t l = 0; l < layers; ++l) {
      VELA_CHECK(step[l].num_experts == experts);
      for (std::size_t e = 0; e < experts; ++e) {
        p.at(l, e) += static_cast<float>(step[l].expert_tokens[e].size());
      }
    }
  }
  VELA_CHECK(tokens > 0);
  p.scale_(1.0f / static_cast<float>(tokens));
  return p;
}

}  // namespace vela::moe
