// Generative routing model for the Mixtral-shape experiments.
//
// Figs. 5–7 run at Mixtral scale (L=32, E=8, H=4096, thousands of tokens per
// step) where instantiating weight tensors is pointless — only the routing
// decisions matter for traffic. SyntheticRouter samples per-step RoutePlans
// from the same planted-preference model the runnable system uses
// (moe::PlantedRouting), with two realism knobs:
//
//   * routing_noise — the probability a selection slot deviates from the
//     domain preference to a uniformly random expert (impure tokens,
//     boundary tokens);
//   * drift_sigma — a per-step random walk on the log domain-usage weights,
//     reproducing the slow distribution shift Fig. 5(a) shows: the placement
//     computed at step 0 decays slightly as fine-tuning progresses.
#pragma once

#include <cstdint>
#include <vector>

#include "moe/planted_routing.h"
#include "moe/gate.h"
#include "util/rng.h"

namespace vela::moe {

struct SyntheticRouterConfig {
  std::vector<double> domain_dist;  // initial domain usage (normalized here)
  double routing_noise = 0.05;
  double drift_sigma = 0.0;
  std::uint64_t seed = 7;
};

class SyntheticRouter {
 public:
  // `routing` must outlive the router.
  SyntheticRouter(const PlantedRouting* routing,
                  SyntheticRouterConfig cfg);

  // Samples the routing decisions of one fine-tuning step (`num_tokens`
  // tokens through every MoE block) and advances the drift process.
  std::vector<RoutePlan> sample_step(std::size_t num_tokens);

  // Monte-Carlo estimate of the selection-frequency matrix P at the current
  // drift state (the profiler's output for shape presets).
  Tensor estimate_probability(std::size_t num_tokens);

  const std::vector<double>& domain_dist() const { return domain_dist_; }
  std::size_t num_layers() const { return routing_->num_layers(); }
  std::size_t num_experts() const { return routing_->num_experts(); }

 private:
  const PlantedRouting* routing_;
  SyntheticRouterConfig cfg_;
  std::vector<double> domain_dist_;
  Rng rng_;
};

}  // namespace vela::moe
