// The planted routing ground truth (paper §III): per (layer, domain) the
// preferred expert pair, plus analytic access probabilities.
//
// This is the layer-free half of "router planting": it depends only on the
// Zipf preference model, so it lives in moe/ where both the synthetic
// router (shape presets with no weights) and the runnable-model planting in
// model/router_planting.h can reach it. The weight-writing half
// (plant_locality) stays in model/, which sits above moe in the layer DAG.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace vela::moe {

class PlantedRouting {
 public:
  // Samples preferences only — no model required (used for shape presets).
  static PlantedRouting generate(std::size_t num_layers,
                                 std::size_t num_experts,
                                 std::size_t num_domains,
                                 double popularity_zipf, std::uint64_t seed);

  std::size_t num_layers() const { return prefs_.size(); }
  std::size_t num_experts() const { return num_experts_; }
  std::size_t num_domains() const {
    return prefs_.empty() ? 0 : prefs_[0].size();
  }

  // (primary, secondary) experts for tokens of `domain` in block `layer`.
  std::pair<std::size_t, std::size_t> preference(std::size_t layer,
                                                 std::size_t domain) const;

  // Analytic selection-frequency matrix P ∈ R^{L×E} under a given domain
  // usage distribution: P[l][e] = Σ_d P(domain = d)·1{e ∈ pref(l, d)}.
  // Rows sum to 2 (top-2 routing).
  Tensor expected_probability(const std::vector<double>& domain_dist) const;

 private:
  std::size_t num_experts_ = 0;
  // prefs_[layer][domain] = (primary, secondary)
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> prefs_;
};

}  // namespace vela::moe
