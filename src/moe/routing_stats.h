// Expert-access statistics: the measurement machinery behind Figs. 3 and 7
// and the probability matrix P ∈ R^{L×E} that drives locality-aware placement.
#pragma once

#include <cstddef>
#include <vector>

#include "moe/gate.h"
#include "tensor/tensor.h"

namespace vela::moe {

// Accumulates per-(layer, expert) access counts across forward passes.
class RoutingStats {
 public:
  RoutingStats(std::size_t num_layers, std::size_t num_experts);

  // Records one block's routing decision.
  void record(std::size_t layer, const RoutePlan& plan);
  // Records the Fig. 3(b) quantity: per-token sums of selected softmax scores.
  void record_score_sums(std::size_t layer, const std::vector<float>& sums);

  std::size_t num_layers() const { return counts_.size(); }
  std::size_t num_experts() const { return counts_.empty() ? 0 : counts_[0].size(); }

  // Raw access count of expert e in layer l.
  std::uint64_t count(std::size_t layer, std::size_t expert) const;
  // Tokens seen by layer l (each token contributes top_k accesses).
  std::uint64_t tokens_seen(std::size_t layer) const;

  // Access frequency: count / tokens_seen — the paper's Fig. 3(a)/7 metric.
  // Rows sum to top_k.
  double frequency(std::size_t layer, std::size_t expert) const;
  std::vector<double> layer_frequencies(std::size_t layer) const;

  // Probability matrix P ∈ R^{L×E}: P[l][e] = probability a token selects
  // expert e in block l (frequency / top_k would give per-slot probability;
  // the placement model in Eq. (6) multiplies by K tokens and counts each
  // selection as one dispatch, so we keep the raw selection frequency).
  Tensor probability_matrix() const;

  const std::vector<float>& score_sums(std::size_t layer) const;

  void reset();

  // Merge counts from another (shape-compatible) accumulator.
  void merge(const RoutingStats& other);

 private:
  std::vector<std::vector<std::uint64_t>> counts_;  // [L][E]
  std::vector<std::uint64_t> tokens_;               // [L]
  std::vector<std::uint64_t> topk_;                 // [L], top_k observed
  std::vector<std::vector<float>> score_sums_;      // [L][*]
};

// A time series of per-step expert access frequencies for one layer —
// the Fig. 3(c) measurement.
class FrequencyTimeline {
 public:
  explicit FrequencyTimeline(std::size_t num_experts);

  void record_step(const RoutePlan& plan);

  std::size_t num_steps() const { return series_.size(); }
  // Frequencies of all experts at a recorded step.
  const std::vector<double>& step(std::size_t i) const;
  // Max over steps of |freq(step) − freq(0)| for a given expert: the drift
  // metric used to verify locality stability.
  double max_drift(std::size_t expert) const;

 private:
  std::size_t experts_;
  std::vector<std::vector<double>> series_;
};

}  // namespace vela::moe
