#include "moe/routing_stats.h"

#include <cmath>

#include "util/check.h"

namespace vela::moe {

RoutingStats::RoutingStats(std::size_t num_layers, std::size_t num_experts)
    : counts_(num_layers, std::vector<std::uint64_t>(num_experts, 0)),
      tokens_(num_layers, 0),
      topk_(num_layers, 0),
      score_sums_(num_layers) {
  VELA_CHECK(num_layers > 0 && num_experts > 0);
}

void RoutingStats::record(std::size_t layer, const RoutePlan& plan) {
  VELA_CHECK(layer < counts_.size());
  VELA_CHECK(plan.num_experts == counts_[layer].size());
  for (std::size_t e = 0; e < plan.num_experts; ++e) {
    counts_[layer][e] += plan.expert_tokens[e].size();
  }
  tokens_[layer] += plan.num_tokens;
  if (topk_[layer] == 0) topk_[layer] = plan.top_k;
  VELA_CHECK_MSG(topk_[layer] == plan.top_k,
                 "inconsistent top_k recorded for layer " << layer);
}

void RoutingStats::record_score_sums(std::size_t layer,
                                     const std::vector<float>& sums) {
  VELA_CHECK(layer < score_sums_.size());
  score_sums_[layer].insert(score_sums_[layer].end(), sums.begin(), sums.end());
}

std::uint64_t RoutingStats::count(std::size_t layer, std::size_t expert) const {
  VELA_CHECK(layer < counts_.size() && expert < counts_[layer].size());
  return counts_[layer][expert];
}

std::uint64_t RoutingStats::tokens_seen(std::size_t layer) const {
  VELA_CHECK(layer < tokens_.size());
  return tokens_[layer];
}

double RoutingStats::frequency(std::size_t layer, std::size_t expert) const {
  const std::uint64_t tokens = tokens_seen(layer);
  if (tokens == 0) return 0.0;
  return static_cast<double>(count(layer, expert)) /
         static_cast<double>(tokens);
}

std::vector<double> RoutingStats::layer_frequencies(std::size_t layer) const {
  std::vector<double> out(num_experts());
  for (std::size_t e = 0; e < out.size(); ++e) out[e] = frequency(layer, e);
  return out;
}

Tensor RoutingStats::probability_matrix() const {
  Tensor p({num_layers(), num_experts()});
  for (std::size_t l = 0; l < num_layers(); ++l) {
    for (std::size_t e = 0; e < num_experts(); ++e) {
      p.at(l, e) = static_cast<float>(frequency(l, e));
    }
  }
  return p;
}

const std::vector<float>& RoutingStats::score_sums(std::size_t layer) const {
  VELA_CHECK(layer < score_sums_.size());
  return score_sums_[layer];
}

void RoutingStats::reset() {
  for (auto& row : counts_) {
    for (auto& c : row) c = 0;
  }
  for (auto& t : tokens_) t = 0;
  for (auto& k : topk_) k = 0;
  for (auto& s : score_sums_) s.clear();
}

void RoutingStats::merge(const RoutingStats& other) {
  VELA_CHECK(num_layers() == other.num_layers() &&
             num_experts() == other.num_experts());
  for (std::size_t l = 0; l < num_layers(); ++l) {
    for (std::size_t e = 0; e < num_experts(); ++e) {
      counts_[l][e] += other.counts_[l][e];
    }
    tokens_[l] += other.tokens_[l];
    if (topk_[l] == 0) topk_[l] = other.topk_[l];
    score_sums_[l].insert(score_sums_[l].end(), other.score_sums_[l].begin(),
                          other.score_sums_[l].end());
  }
}

FrequencyTimeline::FrequencyTimeline(std::size_t num_experts)
    : experts_(num_experts) {
  VELA_CHECK(num_experts > 0);
}

void FrequencyTimeline::record_step(const RoutePlan& plan) {
  VELA_CHECK(plan.num_experts == experts_);
  std::vector<double> freq(experts_, 0.0);
  if (plan.num_tokens > 0) {
    for (std::size_t e = 0; e < experts_; ++e) {
      freq[e] = static_cast<double>(plan.expert_tokens[e].size()) /
                static_cast<double>(plan.num_tokens);
    }
  }
  series_.push_back(std::move(freq));
}

const std::vector<double>& FrequencyTimeline::step(std::size_t i) const {
  VELA_CHECK(i < series_.size());
  return series_[i];
}

double FrequencyTimeline::max_drift(std::size_t expert) const {
  VELA_CHECK(expert < experts_);
  if (series_.empty()) return 0.0;
  double drift = 0.0;
  const double base = series_[0][expert];
  for (const auto& step : series_) {
    drift = std::max(drift, std::abs(step[expert] - base));
  }
  return drift;
}

}  // namespace vela::moe
