#include "moe/gate.h"

#include <cmath>
#include <limits>

#include "tensor/ops.h"
#include "util/check.h"

namespace vela::moe {

std::size_t RoutePlan::group_offset(std::size_t e) const {
  VELA_CHECK(e < expert_tokens.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < e; ++i) off += expert_tokens[i].size();
  return off;
}

std::size_t RoutePlan::total_assignments() const {
  std::size_t total = 0;
  for (const auto& group : expert_tokens) total += group.size();
  return total;
}

void RoutePlan::validate() const {
  VELA_CHECK(expert_tokens.size() == num_experts);
  VELA_CHECK(top_k >= 1 && top_k <= num_experts);
  std::vector<std::size_t> token_count(num_tokens, 0);
  for (std::size_t e = 0; e < num_experts; ++e) {
    std::size_t prev = 0;
    bool first = true;
    for (std::size_t t : expert_tokens[e]) {
      VELA_CHECK_MSG(t < num_tokens, "route plan token index out of range");
      VELA_CHECK_MSG(first || t > prev,
                     "route plan expert group must be strictly ascending");
      first = false;
      prev = t;
      ++token_count[t];
    }
  }
  for (std::size_t t = 0; t < num_tokens; ++t) {
    VELA_CHECK_MSG(token_count[t] == top_k,
                   "token " << t << " routed " << token_count[t]
                            << " times, expected " << top_k);
  }
}

TopKGate::TopKGate(std::string name, std::size_t model_dim,
                   std::size_t num_experts, std::size_t top_k, Rng& rng,
                   bool trainable)
    : experts_(num_experts), k_(top_k) {
  VELA_CHECK(top_k >= 1 && top_k <= num_experts);
  proj_ = std::make_unique<nn::Linear>(name + ".proj", model_dim, num_experts,
                                       rng, trainable, /*bias=*/false);
  register_module("proj", proj_.get());
}

void TopKGate::set_capacity_factor(double factor) {
  VELA_CHECK(factor >= 0.0);
  // factor < 1 would guarantee dropped tokens; this gate reroutes instead of
  // dropping, which needs at least the average load per expert. 0 is the
  // assigned "off" sentinel, so exact compare is sound.
  // vela-lint: allow(float-equality)
  VELA_CHECK_MSG(factor == 0.0 || factor >= 1.0,
                 "capacity factor must be 0 (off) or >= 1");
  capacity_factor_ = factor;
}

GateOutput TopKGate::forward(const ag::Variable& x) const {
  const ag::Variable logits = proj_->forward(x);  // [n, E]
  const std::size_t n = logits.value().rows();

  GateOutput out;
  out.logits = logits;
  out.probs = ops::softmax_rows(logits.value());
  // Rank ALL experts per token so capacity overflow can fall through to the
  // next-best choice.
  const auto ranked = ops::topk_rows(logits.value(), experts_);

  std::size_t capacity = n * k_;  // unlimited
  if (capacity_factor_ > 0.0) {
    capacity = static_cast<std::size_t>(
        std::ceil(capacity_factor_ * static_cast<double>(n * k_) /
                  static_cast<double>(experts_)));
  }

  out.plan.num_tokens = n;
  out.plan.num_experts = experts_;
  out.plan.top_k = k_;
  out.plan.expert_tokens.assign(experts_, {});
  out.selected_score_sums.resize(n, 0.0f);
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<bool> taken(experts_, false);
    std::size_t chosen = 0;
    for (std::size_t rank = 0; rank < experts_ && chosen < k_; ++rank) {
      const std::size_t e = ranked[t][rank];
      if (out.plan.expert_tokens[e].size() >= capacity) continue;  // full
      out.plan.expert_tokens[e].push_back(t);
      out.selected_score_sums[t] += out.probs.at(t, e);
      taken[e] = true;
      ++chosen;
    }
    // The cap is soft, never lossy: with k > 1 and tight capacity the free
    // slots left for the last tokens can all sit on already-selected
    // experts, so the remaining selections overflow onto the least-loaded
    // unselected experts (in preference order on ties).
    for (std::size_t rank = 0; rank < experts_ && chosen < k_; ++rank) {
      std::size_t best = experts_;
      std::size_t best_load = static_cast<std::size_t>(-1);
      for (std::size_t r2 = 0; r2 < experts_; ++r2) {
        const std::size_t e = ranked[t][r2];
        if (taken[e]) continue;
        if (out.plan.expert_tokens[e].size() < best_load) {
          best_load = out.plan.expert_tokens[e].size();
          best = e;
        }
      }
      VELA_CHECK_MSG(best < experts_, "gate could not place token " << t);
      out.plan.expert_tokens[best].push_back(t);
      out.selected_score_sums[t] += out.probs.at(t, best);
      taken[best] = true;
      ++chosen;
    }
  }
  // Groups are ascending because tokens are visited in order.
  out.combine_weights = routing_weights(logits, out.plan);
  return out;
}

ag::Variable load_balance_loss(const GateOutput& gate_out) {
  const RoutePlan& plan = gate_out.plan;
  VELA_CHECK(gate_out.logits.defined() && plan.num_tokens > 0);
  const std::size_t n = plan.num_tokens;
  const std::size_t num_experts = plan.num_experts;
  const double slots = static_cast<double>(plan.total_assignments());

  // f_e: detached dispatch fractions, broadcast column-wise and pre-scaled
  // by E so the loss is sum(probs ⊙ F) / n.
  Tensor f({n, num_experts});
  for (std::size_t e = 0; e < num_experts; ++e) {
    const float fe = static_cast<float>(
        static_cast<double>(plan.expert_tokens[e].size()) / slots *
        static_cast<double>(num_experts));
    for (std::size_t t = 0; t < n; ++t) f.at(t, e) = fe;
  }
  ag::Variable probs = ag::softmax_rows(gate_out.logits);
  return ag::scale(ag::sum(ag::mul(probs, ag::Variable::constant(f))),
                   1.0f / static_cast<float>(n));
}

ag::Variable router_z_loss(const GateOutput& gate_out) {
  VELA_CHECK(gate_out.logits.defined());
  ag::Variable lse = ag::logsumexp_rows(gate_out.logits);
  return ag::mean(ag::mul(lse, lse));
}

ag::Variable routing_weights(const ag::Variable& logits,
                             const RoutePlan& plan) {
  const Tensor& z = logits.value();
  VELA_CHECK(z.rank() == 2 && z.rows() == plan.num_tokens &&
             z.cols() == plan.num_experts);
  const std::size_t n = plan.num_tokens;
  const std::size_t total = plan.total_assignments();
  VELA_CHECK(total == n * plan.top_k);

  // Flat (token, expert) pairs in dispatch order.
  auto pairs =
      std::make_shared<std::vector<std::pair<std::size_t, std::size_t>>>();
  pairs->reserve(total);
  for (std::size_t e = 0; e < plan.num_experts; ++e) {
    for (std::size_t t : plan.expert_tokens[e]) pairs->emplace_back(t, e);
  }

  // Per-token restricted softmax over the selected logits. Two passes: first
  // accumulate each token's max and partition function, then normalize.
  std::vector<float> token_max(n, -std::numeric_limits<float>::infinity());
  for (const auto& [t, e] : *pairs)
    token_max[t] = std::max(token_max[t], z.at(t, e));
  std::vector<double> token_z(n, 0.0);
  for (const auto& [t, e] : *pairs)
    token_z[t] += std::exp(z.at(t, e) - token_max[t]);

  Tensor value({total});
  for (std::size_t i = 0; i < total; ++i) {
    const auto& [t, e] = (*pairs)[i];
    value[i] = static_cast<float>(std::exp(z.at(t, e) - token_max[t]) /
                                  token_z[t]);
  }

  const std::size_t num_experts = plan.num_experts;
  return ag::make_op(
      std::move(value), {logits},
      [pairs, n, num_experts](ag::detail::Node& node) {
        // Restricted-softmax Jacobian per token: dz_e = w_e (dw_e − Σ w dw).
        const Tensor& w = node.value;
        const Tensor& dw = node.grad;
        std::vector<double> inner(n, 0.0);
        for (std::size_t i = 0; i < pairs->size(); ++i)
          inner[(*pairs)[i].first] += double(dw[i]) * w[i];
        Tensor dz({n, num_experts});
        for (std::size_t i = 0; i < pairs->size(); ++i) {
          const auto& [t, e] = (*pairs)[i];
          dz.at(t, e) = w[i] * (dw[i] - static_cast<float>(inner[t]));
        }
        node.parents[0]->accumulate_grad(dz);
      });
}

}  // namespace vela::moe
