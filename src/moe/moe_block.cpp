#include "moe/moe_block.h"

#include "util/check.h"

namespace vela::moe {

LocalExpertBackend::LocalExpertBackend(std::size_t num_layers,
                                       std::size_t num_experts,
                                       std::size_t model_dim,
                                       std::size_t hidden_dim,
                                       const nn::LoRAConfig& lora,
                                       std::uint64_t base_seed)
    : layers_(num_layers), experts_per_layer_(num_experts) {
  experts_.reserve(layers_ * experts_per_layer_);
  for (std::size_t l = 0; l < layers_; ++l) {
    for (std::size_t e = 0; e < experts_per_layer_; ++e) {
      auto name =
          "layer" + std::to_string(l) + ".expert" + std::to_string(e);
      Rng rng(nn::expert_seed(base_seed, l, e));
      experts_.push_back(std::make_unique<nn::SwiGLUExpert>(
          name, model_dim, hidden_dim, lora, rng));
      register_module(name, experts_.back().get());
    }
  }
}

ag::Variable LocalExpertBackend::expert_forward(std::size_t layer,
                                                std::size_t expert,
                                                const ag::Variable& xs) {
  return this->expert(layer, expert).forward(xs);
}

nn::SwiGLUExpert& LocalExpertBackend::expert(std::size_t layer,
                                             std::size_t e) {
  VELA_CHECK(layer < layers_ && e < experts_per_layer_);
  return *experts_[layer * experts_per_layer_ + e];
}

MoEBlock::MoEBlock(std::string name, std::size_t layer_index,
                   std::size_t model_dim, std::size_t num_experts,
                   std::size_t top_k, Rng& rng, ExpertBackend* backend,
                   bool trainable_gate)
    : layer_(layer_index), backend_(backend) {
  VELA_CHECK(backend != nullptr);
  gate_ = std::make_unique<TopKGate>(name + ".gate", model_dim, num_experts,
                                     top_k, rng, trainable_gate);
  register_module("gate", gate_.get());
}

ag::Variable MoEBlock::forward(const ag::Variable& x, RoutingStats* stats) {
  last_gate_output_ = gate_->forward(x);
  const GateOutput& gate_out = last_gate_output_;
  const RoutePlan& plan = gate_out.plan;
  if (stats != nullptr) {
    stats->record(layer_, plan);
    stats->record_score_sums(layer_, gate_out.selected_score_sums);
  }

  const std::size_t n = plan.num_tokens;

  // Dispatch: gather every expert's token group, then hand the whole block
  // to the backend at once so a distributed backend can overlap workers.
  std::vector<std::pair<std::size_t, ag::Variable>> groups;
  for (std::size_t e = 0; e < plan.num_experts; ++e) {
    const auto& tokens = plan.expert_tokens[e];
    if (tokens.empty()) continue;
    groups.emplace_back(e, ag::gather_rows(x, tokens));
  }
  const std::vector<ag::Variable> outputs =
      backend_->experts_forward(layer_, groups);
  VELA_CHECK(outputs.size() == groups.size());

  // Combine: weight each expert output by its (differentiable) gate share
  // and scatter back to token positions (Eq. (1)).
  ag::Variable result;
  std::size_t offset = 0, gi = 0;
  for (std::size_t e = 0; e < plan.num_experts; ++e) {
    const auto& tokens = plan.expert_tokens[e];
    if (tokens.empty()) continue;
    ag::Variable w =
        ag::slice_vec(gate_out.combine_weights, offset, tokens.size());
    ag::Variable contribution =
        ag::scatter_rows(ag::scale_rows(outputs[gi], w), tokens, n);
    result = result.defined() ? ag::add(result, contribution) : contribution;
    offset += tokens.size();
    ++gi;
  }
  VELA_CHECK_MSG(result.defined(), "MoE block produced no expert output");
  return result;
}

}  // namespace vela::moe
