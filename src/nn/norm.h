// RMSNorm layer (the normalization used by Mistral-family models).
#pragma once

#include "autograd/ops.h"
#include "nn/module.h"

namespace vela::nn {

class RMSNorm : public Module {
 public:
  RMSNorm(std::string name, std::size_t features, bool trainable = false,
          float eps = 1e-5f);

  ag::Variable forward(const ag::Variable& x) const;

 private:
  ag::Variable gain_;  // [features], initialized to 1
  float eps_;
};

}  // namespace vela::nn
