#include "nn/schedule.h"

#include <cmath>

#include "util/check.h"

namespace vela::nn {

WarmupCosineLr::WarmupCosineLr(float peak_lr, std::size_t warmup_steps,
                               std::size_t total_steps, float min_lr)
    : peak_(peak_lr), min_(min_lr), warmup_(warmup_steps), total_(total_steps) {
  VELA_CHECK(peak_lr > 0.0f && min_lr >= 0.0f && min_lr <= peak_lr);
  VELA_CHECK(total_steps > warmup_steps);
}

float WarmupCosineLr::lr(std::size_t step) const {
  if (step < warmup_) {
    // Linear ramp; step 0 already gets a nonzero rate so training moves.
    return peak_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_ + 1);
  }
  if (step >= total_) return min_;
  const double progress = static_cast<double>(step - warmup_) /
                          static_cast<double>(total_ - warmup_);
  const double cosine = 0.5 * (1.0 + std::cos(progress * M_PI));
  return min_ + static_cast<float>(cosine) * (peak_ - min_);
}

}  // namespace vela::nn
