#include "nn/norm.h"

namespace vela::nn {

RMSNorm::RMSNorm(std::string name, std::size_t features, bool trainable,
                 float eps)
    : eps_(eps) {
  gain_ = register_parameter(name + ".gain", Tensor::ones({features}),
                             trainable);
}

ag::Variable RMSNorm::forward(const ag::Variable& x) const {
  return ag::rmsnorm(x, gain_, eps_);
}

}  // namespace vela::nn
