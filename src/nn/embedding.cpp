#include "nn/embedding.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace vela::nn {

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t dim,
                     Rng& rng, bool trainable)
    : vocab_(vocab), dim_(dim) {
  VELA_CHECK(vocab > 0 && dim > 0);
  w_ = register_parameter(name + ".weight",
                          ops::randn({vocab, dim}, rng, 0.0f, 0.02f),
                          trainable);
}

ag::Variable Embedding::forward(const std::vector<std::size_t>& ids) const {
  VELA_CHECK(!ids.empty());
  for (std::size_t id : ids) VELA_CHECK_MSG(id < vocab_, "token id out of range");
  return ag::embedding(w_, ids);
}

}  // namespace vela::nn
