#include "nn/expert.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace vela::nn {

SwiGLUExpert::SwiGLUExpert(std::string name, std::size_t model_dim,
                           std::size_t hidden_dim, const LoRAConfig& lora,
                           Rng& rng)
    : dim_(model_dim), hidden_(hidden_dim) {
  w1_ = std::make_unique<LoRALinear>(name + ".w1", dim_, hidden_, lora, rng);
  w2_ = std::make_unique<LoRALinear>(name + ".w2", hidden_, dim_, lora, rng);
  w3_ = std::make_unique<LoRALinear>(name + ".w3", dim_, hidden_, lora, rng);
  register_module("w1", w1_.get());
  register_module("w2", w2_.get());
  register_module("w3", w3_.get());
}

ag::Variable SwiGLUExpert::forward(const ag::Variable& x) const {
  VELA_CHECK(x.value().rank() == 2 && x.value().cols() == dim_);
  const ag::Variable gate = ag::silu(w1_->forward(x));
  const ag::Variable up = w3_->forward(x);
  return w2_->forward(ag::mul(gate, up));
}

void SwiGLUExpert::enable_q8_compute(unsigned block) {
  w1_->enable_q8_compute(block);
  w2_->enable_q8_compute(block);
  w3_->enable_q8_compute(block);
}

std::size_t SwiGLUExpert::memory_bytes(unsigned bits) const {
  return parameter_count() * (bits / 8);
}

}  // namespace vela::nn
