// Module base class: owns named parameters and exposes them to optimizers.
//
// Parameters are ag::Variable leaves. Frozen parameters (pre-trained weights
// under LoRA fine-tuning) are registered with trainable=false; they join the
// forward graph but receive no gradient and are skipped by optimizers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace vela::nn {

struct Parameter {
  std::string name;
  ag::Variable var;
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and (recursively) registered submodules.
  std::vector<Parameter> parameters() const;
  // Only parameters with requires_grad=true.
  std::vector<Parameter> trainable_parameters() const;

  // Zeroes gradients of every trainable parameter.
  void zero_grad();

  // Total scalar counts (for memory/size reporting).
  std::size_t parameter_count() const;
  std::size_t trainable_parameter_count() const;

 protected:
  ag::Variable register_parameter(const std::string& name, Tensor init,
                                  bool trainable);
  // Submodule registration: `name` prefixes the child's parameter names.
  void register_module(const std::string& name, Module* child);

 private:
  std::vector<Parameter> own_params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace vela::nn
