#include "nn/module.h"

#include "util/check.h"

namespace vela::nn {

std::vector<Parameter> Module::parameters() const {
  std::vector<Parameter> all = own_params_;
  for (const auto& [name, child] : children_) {
    for (const auto& p : child->parameters()) {
      all.push_back({name + "." + p.name, p.var});
    }
  }
  return all;
}

std::vector<Parameter> Module::trainable_parameters() const {
  std::vector<Parameter> out;
  for (auto& p : parameters()) {
    if (p.var.requires_grad()) out.push_back(p);
  }
  return out;
}

void Module::zero_grad() {
  for (auto& p : parameters()) {
    if (p.var.requires_grad()) p.var.zero_grad();
  }
}

std::size_t Module::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p.var.value().size();
  return n;
}

std::size_t Module::trainable_parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : trainable_parameters()) n += p.var.value().size();
  return n;
}

ag::Variable Module::register_parameter(const std::string& name, Tensor init,
                                        bool trainable) {
  ag::Variable v = ag::Variable::leaf(std::move(init), trainable);
  own_params_.push_back({name, v});
  return v;
}

void Module::register_module(const std::string& name, Module* child) {
  VELA_CHECK(child != nullptr && child != this);
  children_.emplace_back(name, child);
}

}  // namespace vela::nn
