#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vela::nn {

Optimizer::Optimizer(std::vector<Parameter> params)
    : params_(std::move(params)) {
  for (const auto& p : params_) {
    VELA_CHECK_MSG(p.var.requires_grad(),
                   "optimizer given frozen parameter " << p.name);
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.var.zero_grad();
}

SGD::SGD(std::vector<Parameter> params, float lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void SGD::step() {
  for (auto& p : params_) {
    if (!p.var.has_grad()) continue;
    p.var.mutable_value().axpy_(-lr_, p.var.grad());
  }
}

AdamW::AdamW(std::vector<Parameter> params, AdamWConfig cfg)
    : Optimizer(std::move(params)), cfg_(cfg) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.var.value().shape());
    v_.emplace_back(p.var.value().shape());
  }
}

void AdamW::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.var.has_grad()) continue;
    const Tensor& g = p.var.grad();
    Tensor& w = p.var.mutable_value();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = cfg_.beta1 * m[j] + (1.0f - cfg_.beta1) * g[j];
      v[j] = cfg_.beta2 * v[j] + (1.0f - cfg_.beta2) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      // Decoupled weight decay (AdamW, not Adam-with-L2).
      w[j] -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                         cfg_.weight_decay * w[j]);
    }
  }
}

Tensor AdamW::pack_state() const {
  std::size_t per_buffer = 0;
  for (const auto& m : m_) per_buffer += m.size();
  Tensor packed({1 + 2 * per_buffer});
  packed[0] = static_cast<float>(t_);
  std::size_t offset = 1;
  for (const auto& buf : {&m_, &v_}) {
    for (const auto& t : *buf) {
      std::copy(t.data(), t.data() + t.size(), packed.data() + offset);
      offset += t.size();
    }
  }
  return packed;
}

void AdamW::load_state(const Tensor& packed) {
  std::size_t per_buffer = 0;
  for (const auto& m : m_) per_buffer += m.size();
  VELA_CHECK_MSG(packed.size() == 1 + 2 * per_buffer,
                 "optimizer state size " << packed.size() << " != expected "
                                         << (1 + 2 * per_buffer));
  t_ = static_cast<std::size_t>(packed[0]);
  std::size_t offset = 1;
  for (auto* buf : {&m_, &v_}) {
    for (auto& t : *buf) {
      std::copy(packed.data() + offset, packed.data() + offset + t.size(),
                t.data());
      offset += t.size();
    }
  }
}

}  // namespace vela::nn
