// Optimizers over Variable leaves.
//
// Both the master (backbone LoRA params) and every expert worker (expert LoRA
// params) own an optimizer instance, mirroring Fig. 4 where the optimization
// step runs locally on whichever process holds the parameters — that is what
// lets VELA skip data parallelism's gradient all-reduce.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "autograd/variable.h"
#include "nn/module.h"

namespace vela::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter> params);
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently stored on the params.
  // Parameters that never received a gradient this step are skipped.
  virtual void step() = 0;

  // Overrides the current learning rate (LR schedules drive this).
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;

  void zero_grad();
  std::size_t num_params() const { return params_.size(); }

 protected:
  std::vector<Parameter> params_;
};

// Plain SGD: w ← w − lr · g. Used by the Theorem 1 experiments, which assume
// the SGD update rule.
class SGD : public Optimizer {
 public:
  SGD(std::vector<Parameter> params, float lr);
  void step() override;

  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_;
};

struct AdamWConfig {
  float lr = 3e-5f;
  float beta1 = 0.8f;   // paper's fine-tune setting
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 3e-7f;
};

// AdamW with decoupled weight decay — the paper's fine-tuning optimizer.
class AdamW : public Optimizer {
 public:
  AdamW(std::vector<Parameter> params, AdamWConfig cfg = {});
  void step() override;

  float learning_rate() const override { return cfg_.lr; }
  void set_learning_rate(float lr) override { cfg_.lr = lr; }

  const AdamWConfig& config() const { return cfg_; }
  std::size_t steps_taken() const { return t_; }

  // Packs the internal state (step count + both moment buffers) into one
  // rank-1 tensor: [t, m..., v...]. Together with the packed parameters this
  // makes a worker respawn bit-exact — Adam's bias correction depends on t,
  // so restoring moments without it would silently change every later
  // update.
  Tensor pack_state() const;
  // Inverse of pack_state; sizes must match this optimizer's parameters.
  void load_state(const Tensor& packed);

 private:
  AdamWConfig cfg_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;  // first moment, parallel to params_
  std::vector<Tensor> v_;  // second moment
};

}  // namespace vela::nn
