#include "nn/attention.h"

#include <cmath>

#include "autograd/ops.h"
#include "util/check.h"

namespace vela::nn {

CausalSelfAttention::CausalSelfAttention(std::string name,
                                         std::size_t model_dim,
                                         std::size_t num_heads,
                                         const LoRAConfig& lora, Rng& rng)
    : dim_(model_dim), heads_(num_heads), head_dim_(model_dim / num_heads) {
  VELA_CHECK_MSG(model_dim % num_heads == 0,
                 "model_dim must be divisible by num_heads");
  wq_ = std::make_unique<LoRALinear>(name + ".wq", dim_, dim_, lora, rng);
  wk_ = std::make_unique<LoRALinear>(name + ".wk", dim_, dim_, lora, rng);
  wv_ = std::make_unique<LoRALinear>(name + ".wv", dim_, dim_, lora, rng);
  wo_ = std::make_unique<LoRALinear>(name + ".wo", dim_, dim_, lora, rng);
  register_module("wq", wq_.get());
  register_module("wk", wk_.get());
  register_module("wv", wv_.get());
  register_module("wo", wo_.get());
}

ag::Variable CausalSelfAttention::forward(const ag::Variable& x) const {
  VELA_CHECK(x.value().rank() == 2 && x.value().cols() == dim_);
  const ag::Variable q = wq_->forward(x);
  const ag::Variable k = wk_->forward(x);
  const ag::Variable v = wv_->forward(x);

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<ag::Variable> head_outputs;
  head_outputs.reserve(heads_);
  for (std::size_t h = 0; h < heads_; ++h) {
    const std::size_t off = h * head_dim_;
    const ag::Variable qh = ag::slice_cols(q, off, head_dim_);
    const ag::Variable kh = ag::slice_cols(k, off, head_dim_);
    const ag::Variable vh = ag::slice_cols(v, off, head_dim_);
    const ag::Variable scores = ag::scale(ag::matmul_nt(qh, kh), inv_sqrt_d);
    const ag::Variable attn = ag::causal_masked_softmax(scores);
    head_outputs.push_back(ag::matmul(attn, vh));
  }
  return wo_->forward(ag::concat_cols(head_outputs));
}

}  // namespace vela::nn
