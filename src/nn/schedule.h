// Learning-rate schedules.
//
// Fine-tuning recipes (including the paper's 500-step runs) commonly warm
// the learning rate up linearly and decay it with a cosine to a floor.
// Schedules are pure functions of the step index; the trainer applies them
// by calling Optimizer::set_learning_rate before each step.
#pragma once

#include <cstddef>

namespace vela::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float lr(std::size_t step) const = 0;
};

// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float lr(std::size_t) const override { return lr_; }

 private:
  float lr_;
};

// Linear warmup over `warmup_steps`, then cosine decay to `min_lr` at
// `total_steps` (constant at min_lr afterwards).
class WarmupCosineLr : public LrSchedule {
 public:
  WarmupCosineLr(float peak_lr, std::size_t warmup_steps,
                 std::size_t total_steps, float min_lr = 0.0f);

  float lr(std::size_t step) const override;

 private:
  float peak_, min_;
  std::size_t warmup_, total_;
};

}  // namespace vela::nn
