// Multi-head causal self-attention with LoRA-adapted projections.
//
// All four projection matrices (Q, K, V, O) are LoRALinear, matching the
// paper's fine-tuning setup of adapting "all the linear layers except for the
// gating mechanism". The layer operates on a single sequence laid out as a
// [T, H] matrix; batching is handled by the trainer iterating sequences (the
// MoE path below treats all tokens of the batch as one flat token list
// anyway, exactly like the paper's pre-/post-processing reshape).
#pragma once

#include <cstddef>
#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace vela::nn {

class CausalSelfAttention : public Module {
 public:
  CausalSelfAttention(std::string name, std::size_t model_dim,
                      std::size_t num_heads, const LoRAConfig& lora, Rng& rng);

  // x: [T, model_dim] for one sequence; returns [T, model_dim].
  ag::Variable forward(const ag::Variable& x) const;

  std::size_t num_heads() const { return heads_; }

 private:
  std::size_t dim_, heads_, head_dim_;
  std::unique_ptr<LoRALinear> wq_, wk_, wv_, wo_;
};

}  // namespace vela::nn
