// SwiGLU expert FFN — the per-expert sub-network of the MoE block.
//
// Matches the Mistral/Mixtral expert: y = W2( silu(W1 x) ⊙ (W3 x) ), with
// all three projections LoRA-adapted during fine-tuning. Experts are the
// units the placement problem moves between workers, so the class also
// reports its parameter memory footprint (used to derive worker capacities
// Cₙ in the placement problem).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "nn/linear.h"
#include "nn/module.h"

namespace vela::nn {

// Deterministic per-expert weight seed. Both the dense reference backend and
// remote expert workers construct expert (layer, e) from this seed, so a
// distributed system and its single-process twin hold bit-identical weights
// without ever shipping the frozen base matrices over the network.
inline std::uint64_t expert_seed(std::uint64_t base_seed, std::size_t layer,
                                 std::size_t expert) {
  std::uint64_t h = base_seed ^ 0x517CC1B727220A95ULL;
  h = (h ^ (layer + 1)) * 0x100000001B3ULL;
  h = (h ^ (expert + 1)) * 0x100000001B3ULL;
  return h;
}

class SwiGLUExpert : public Module {
 public:
  SwiGLUExpert(std::string name, std::size_t model_dim, std::size_t hidden_dim,
               const LoRAConfig& lora, Rng& rng);

  // x: [n_tokens, model_dim] -> [n_tokens, model_dim].
  ag::Variable forward(const ag::Variable& x) const;

  // Switches all three frozen base projections to the packed block-int8
  // GEMM (see LoRALinear::enable_q8_compute). Deterministic per expert —
  // the pack depends only on the seeded weights — so a respawned or
  // migrated expert re-derives the identical packed image.
  void enable_q8_compute(unsigned block);

  std::size_t model_dim() const { return dim_; }
  std::size_t hidden_dim() const { return hidden_; }

  // Bytes of parameter storage at the given bit depth (paper: 16-bit halves).
  std::size_t memory_bytes(unsigned bits = 16) const;

 private:
  std::size_t dim_, hidden_;
  std::unique_ptr<LoRALinear> w1_, w2_, w3_;
};

}  // namespace vela::nn
