// Token embedding table. Frozen during LoRA fine-tuning (the paper trains
// only linear layers), but can be made trainable for from-scratch tests.
#pragma once

#include <cstddef>
#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace vela::nn {

class Embedding : public Module {
 public:
  Embedding(std::string name, std::size_t vocab, std::size_t dim, Rng& rng,
            bool trainable = false);

  // ids are token indices in [0, vocab); returns [|ids|, dim].
  ag::Variable forward(const std::vector<std::size_t>& ids) const;

  std::size_t vocab() const { return vocab_; }
  std::size_t dim() const { return dim_; }
  ag::Variable& weight() { return w_; }

 private:
  std::size_t vocab_, dim_;
  ag::Variable w_;  // [vocab, dim]
};

}  // namespace vela::nn
