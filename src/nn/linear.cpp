#include "nn/linear.h"

#include "tensor/ops.h"
#include "tensor/qgemm.h"
#include "util/check.h"

namespace vela::nn {

Linear::Linear(std::string name, std::size_t in_features,
               std::size_t out_features, Rng& rng, bool trainable, bool bias)
    : in_(in_features), out_(out_features) {
  VELA_CHECK(in_ > 0 && out_ > 0);
  w_ = register_parameter(name + ".weight", ops::kaiming(out_, in_, rng),
                          trainable);
  if (bias) {
    b_ = register_parameter(name + ".bias", Tensor({out_}), trainable);
  }
}

ag::Variable Linear::forward(const ag::Variable& x) const {
  VELA_CHECK_MSG(x.value().rank() == 2 && x.value().cols() == in_,
                 "Linear input shape mismatch");
  ag::Variable y = ag::linear_nt(x, w_);
  if (b_.defined()) y = ag::add_row_broadcast(y, b_);
  return y;
}

LoRALinear::LoRALinear(std::string name, std::size_t in_features,
                       std::size_t out_features, const LoRAConfig& cfg,
                       Rng& rng)
    : in_(in_features), out_(out_features), cfg_(cfg) {
  VELA_CHECK(in_ > 0 && out_ > 0);
  w_ = register_parameter(name + ".weight", ops::kaiming(out_, in_, rng),
                          /*trainable=*/false);
  if (cfg_.enabled) {
    VELA_CHECK(cfg_.rank > 0);
    // Standard LoRA init: A ~ N(0, 1/r), B = 0 so the adapter starts as a
    // no-op and the first forward pass equals the frozen pre-trained model.
    a_ = register_parameter(
        name + ".lora_a",
        ops::randn({cfg_.rank, in_}, rng, 0.0f,
                   1.0f / static_cast<float>(cfg_.rank)),
        /*trainable=*/true);
    b_ = register_parameter(name + ".lora_b", Tensor({out_, cfg_.rank}),
                            /*trainable=*/true);
  }
}

void LoRALinear::enable_q8_compute(unsigned block) {
  qw_ = std::make_shared<qblock::QTensor>(qgemm::pack(w_.value(), block));
  // Overwrite the frozen value with the dequantized pack: w_ is untracked
  // (never checkpointed, never optimized), so this changes compute numerics
  // only — which the quant conformance harness gates on loss tolerance.
  w_.mutable_value() = qblock::dequantize(*qw_);
}

ag::Variable LoRALinear::forward(const ag::Variable& x) const {
  VELA_CHECK_MSG(x.value().rank() == 2 && x.value().cols() == in_,
                 "LoRALinear input shape mismatch");
  ag::Variable y;
  if (qw_ != nullptr) {
    // Packed base projection. Same tape contract as ag::linear_nt with a
    // frozen W: only dX flows (w_ is never trainable here), computed against
    // the dequantized image — a straight-through estimator of the packed
    // forward, exact up to the kernel's block summation grouping.
    y = ag::make_op(qgemm::matmul_nt_q8(x.value(), *qw_), {x, w_},
                    [](ag::detail::Node& n) {
                      if (n.parents[0]->requires_grad) {
                        n.parents[0]->accumulate_grad(
                            ops::matmul(n.grad, n.parents[1]->value));
                      }
                    });
  } else {
    y = ag::linear_nt(x, w_);
  }
  if (cfg_.enabled) {
    ag::Variable low = ag::linear_nt(x, a_);    // [n, r]
    ag::Variable up = ag::linear_nt(low, b_);   // [n, out]
    y = ag::add(y, ag::scale(up, cfg_.scaling()));
  }
  return y;
}

}  // namespace vela::nn
