// Linear and LoRA-augmented linear layers.
//
// LoRALinear implements the paper's fine-tuning setting (§II, §V-A): the
// pre-trained weight W is frozen and two low-rank adapters A ∈ R^{r×in},
// B ∈ R^{out×r} are trained, so y = xWᵀ + (α/r)·(xAᵀ)Bᵀ. A is Gaussian,
// B starts at zero so fine-tuning begins exactly at the pre-trained model.
#pragma once

#include <cstddef>
#include <memory>

#include "autograd/ops.h"
#include "nn/module.h"
#include "tensor/qblock.h"
#include "util/rng.h"

namespace vela::nn {

struct LoRAConfig {
  std::size_t rank = 8;     // r
  float alpha = 16.0f;      // α; effective scale is α / r
  bool enabled = true;

  static LoRAConfig disabled() { return {0, 0.0f, false}; }
  float scaling() const { return enabled ? alpha / static_cast<float>(rank) : 0.0f; }
};

// Plain trainable linear layer (used by the gate before freezing, and by
// baseline models).
class Linear : public Module {
 public:
  Linear(std::string name, std::size_t in_features, std::size_t out_features,
         Rng& rng, bool trainable = true, bool bias = false);

  ag::Variable forward(const ag::Variable& x) const;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  ag::Variable& weight() { return w_; }
  const ag::Variable& weight() const { return w_; }

 private:
  std::size_t in_, out_;
  ag::Variable w_;  // [out, in]
  ag::Variable b_;  // [out] or undefined
};

// Frozen base weight + trainable LoRA adapters.
class LoRALinear : public Module {
 public:
  LoRALinear(std::string name, std::size_t in_features,
             std::size_t out_features, const LoRAConfig& cfg, Rng& rng);

  ag::Variable forward(const ag::Variable& x) const;

  // Quantized compute tier (DESIGN.md §13): pack the frozen base weight
  // into the per-row block-int8 layout and run the base projection through
  // qgemm::matmul_nt_q8. The stored fp32 weight is overwritten with its
  // dequantized image so every other consumer of w_ (backward's dX = dY·Ŵ,
  // state packing, planting inspection) sees exactly the matrix the packed
  // kernel multiplies by. LoRA adapters stay fp32 — they are the trainable
  // state — so checkpoint bytes are unchanged. Idempotent: int8 codes are
  // exact under requantization, so enabling twice packs the same image.
  void enable_q8_compute(unsigned block);
  bool q8_compute_enabled() const { return qw_ != nullptr; }

  // Direct access to the frozen base weight (router planting, tests).
  ag::Variable& base_weight() { return w_; }
  const LoRAConfig& config() const { return cfg_; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  LoRAConfig cfg_;
  ag::Variable w_;  // frozen [out, in]
  ag::Variable a_;  // trainable [rank, in]
  ag::Variable b_;  // trainable [out, rank]
  std::shared_ptr<qblock::QTensor> qw_;  // packed base, set by enable_q8_compute
};

}  // namespace vela::nn
