// Per-row block int8 quantization — the codec behind the quantized wire
// tier (DESIGN.md §13) and the packed-GEMM compute path (tensor/qgemm.h).
//
// Layout: a rank-2 tensor [rows, cols] (rank-1 counts as one row) is split
// per row into contiguous blocks of `block` elements; the last block of a
// row may be short — blocks NEVER span rows. Each block stores one fp32
// scale (absmax/127, symmetric) plus `block` int8 codes. Tiling per row is
// what makes the overlap pipeline compose: slicing rows off a tensor and
// quantizing the slice yields byte-identical blocks to quantizing first and
// slicing after, so K-fragment dispatch is bit-identical at any K.
//
// Codes are exact under requantization (dequantize → quantize reproduces
// the same codes and sizes); the scale itself round-trips only to within
// float rounding, which is why the conformance harness pins codes and byte
// counts exactly but gates end-to-end losses on a tolerance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vela::qblock {

// Allowed block lengths (elements per fp32 scale).
inline constexpr unsigned kBlock32 = 32;
inline constexpr unsigned kBlock64 = 64;
inline constexpr unsigned kDefaultBlock = kBlock64;

inline bool valid_block(unsigned block) {
  return block == kBlock32 || block == kBlock64;
}

// How a tensor shape maps onto the per-row tiling: rank >= 2 tensors tile
// along dim 0; rank-0/1 tensors are a single row. Must match
// comm::Message::wire_size() exactly — the ledger charges these bytes.
inline std::size_t tile_rows(const Tensor& t) {
  return t.rank() >= 2 ? t.dim(0) : 1;
}

inline std::size_t blocks_per_row(std::size_t cols, unsigned block) {
  return (cols + block - 1) / block;
}

// Wire footprint of the quantized image: one int8 code per element plus one
// fp32 scale per block. (No header bytes here — comm::Message adds those.)
inline std::size_t wire_payload_bytes(std::size_t rows, std::size_t cols,
                                      unsigned block) {
  return rows * cols + rows * blocks_per_row(cols, block) * sizeof(float);
}

// Block-quantized image of a tensor. Doubles as the packed-weight format
// for qgemm — the pack step IS quantization, there is no second layout.
struct QTensor {
  std::size_t rows = 0;
  std::size_t cols = 0;
  unsigned block = kDefaultBlock;
  std::vector<std::int8_t> codes;  // rows * cols, row-major
  std::vector<float> scales;       // rows * blocks_per_row(cols, block)

  [[nodiscard]] std::size_t wire_bytes() const {
    return wire_payload_bytes(rows, cols, block);
  }
  std::size_t row_blocks() const { return blocks_per_row(cols, block); }
};

// Symmetric absmax quantization of one block: scale = absmax/127, codes in
// [-127, 127] by round-half-away-from-zero (deterministic, no FE rounding
// mode dependence). An all-zero block (absmax == 0, or so small the scale
// underflows to 0) stores scale 0 and all-zero codes.
QTensor quantize(const Tensor& t, unsigned block = kDefaultBlock);

// Inverse map: code * scale per element, original element count restored.
// The result is rank-2 [rows, cols] unless rows == 1 and `rank1` is set, in
// which case a rank-1 [cols] tensor comes back.
Tensor dequantize(const QTensor& q, bool rank1 = false);

// Quantize-dequantize in the shape of the input — the sender-side wire
// transform. The transport frame then carries the (already lossy) floats
// losslessly, which is what keeps inproc and socket runs bit-identical.
Tensor roundtrip(const Tensor& t, unsigned block = kDefaultBlock);

}  // namespace vela::qblock
