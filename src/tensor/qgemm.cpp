#include "tensor/qgemm.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
#include <emmintrin.h>
#define VELA_QGEMM_SSE2 1
#endif

namespace vela::qgemm {

std::int32_t vec_dot_q8_scalar(const std::int8_t* a, const std::int8_t* b,
                               std::size_t n) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

#if defined(__AVX2__)

const char* kernel_name() { return "avx2"; }

std::int32_t vec_dot_q8(const std::int8_t* a, const std::int8_t* b,
                        std::size_t n) {
  // 16 int8 lanes per step: sign-extend to int16, multiply-add pairs into
  // int32 lanes. The horizontal sum at the end is exact integer math, so
  // lane order is irrelevant and the result equals the scalar loop's.
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i sum4 = _mm_add_epi32(lo, hi);
  sum4 = _mm_add_epi32(sum4, _mm_shuffle_epi32(sum4, 0x4E));
  sum4 = _mm_add_epi32(sum4, _mm_shuffle_epi32(sum4, 0xB1));
  std::int32_t total = _mm_cvtsi128_si32(sum4);
  return total + vec_dot_q8_scalar(a + i, b + i, n - i);
}

#elif defined(VELA_QGEMM_SSE2)

const char* kernel_name() { return "sse2"; }

std::int32_t vec_dot_q8(const std::int8_t* a, const std::int8_t* b,
                        std::size_t n) {
  // 16 int8 lanes per step, sign-extended to int16 by the compare/unpack
  // idiom (SSE2 has no cvtepi8), then pairwise madd into int32 lanes.
  __m128i acc = _mm_setzero_si128();
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i sa = _mm_cmpgt_epi8(zero, va);
    const __m128i sb = _mm_cmpgt_epi8(zero, vb);
    const __m128i a_lo = _mm_unpacklo_epi8(va, sa);
    const __m128i a_hi = _mm_unpackhi_epi8(va, sa);
    const __m128i b_lo = _mm_unpacklo_epi8(vb, sb);
    const __m128i b_hi = _mm_unpackhi_epi8(vb, sb);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
  }
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0x4E));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0xB1));
  std::int32_t total = _mm_cvtsi128_si32(acc);
  return total + vec_dot_q8_scalar(a + i, b + i, n - i);
}

#else

const char* kernel_name() { return "scalar"; }

std::int32_t vec_dot_q8(const std::int8_t* a, const std::int8_t* b,
                        std::size_t n) {
  return vec_dot_q8_scalar(a, b, n);
}

#endif

Tensor matmul_nt_q8(const Tensor& x, const qblock::QTensor& w) {
  VELA_CHECK_MSG(x.rank() == 2 && x.cols() == w.cols,
                 "matmul_nt_q8 shape mismatch " << x.shape_string() << " x ["
                                                << w.rows << ", " << w.cols
                                                << "]");
  const qblock::QTensor qx = qblock::quantize(x, w.block);
  const std::size_t n = qx.rows, k = qx.cols, m = w.rows;
  const std::size_t per_row = qx.row_blocks();
  Tensor y({n, m});
  float* py = y.data();
  // Same grain policy as ops::matmul_nt (~kMatmulGrainFlops flops per
  // chunk); per-output-element independence keeps any row partition
  // bit-deterministic.
  const std::size_t grain = std::max<std::size_t>(
      1, 262144 / std::max<std::size_t>(k * m, 1));
  util::ThreadPool::global().parallel_for(
      n, grain, [&](std::size_t r0, std::size_t r1, std::size_t) {
        for (std::size_t i = r0; i < r1; ++i) {
          const std::int8_t* xrow = qx.codes.data() + i * k;
          const float* xscale = qx.scales.data() + i * per_row;
          for (std::size_t j = 0; j < m; ++j) {
            const std::int8_t* wrow = w.codes.data() + j * k;
            const float* wscale = w.scales.data() + j * per_row;
            float acc = 0.0f;
            for (std::size_t b = 0; b < per_row; ++b) {
              const std::size_t begin = b * w.block;
              const std::size_t len =
                  begin + w.block < k ? w.block : k - begin;
              const std::int32_t dot =
                  vec_dot_q8(xrow + begin, wrow + begin, len);
              acc += (xscale[b] * wscale[b]) * static_cast<float>(dot);
            }
            py[i * m + j] = acc;
          }
        }
      });
  return y;
}

}  // namespace vela::qgemm
