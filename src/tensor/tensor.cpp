#include "tensor/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"

namespace vela {
namespace {

std::size_t volume(const std::vector<std::size_t>& shape) {
  std::size_t v = 1;
  for (std::size_t d : shape) {
    VELA_CHECK_MSG(d > 0, "tensor dimensions must be positive");
    v *= d;
  }
  return shape.empty() ? 0 : v;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(volume(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  VELA_CHECK_MSG(data_.size() == volume(shape_),
                 "data size " << data_.size() << " does not match shape volume "
                              << volume(shape_));
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::ones(std::vector<std::size_t> shape) {
  return full(std::move(shape), 1.0f);
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& values) {
  VELA_CHECK(!values.empty());
  return Tensor({values.size()}, values);
}

Tensor Tensor::from_rows(
    std::initializer_list<std::initializer_list<float>> rows) {
  VELA_CHECK(rows.size() > 0);
  const std::size_t n = rows.size();
  const std::size_t m = rows.begin()->size();
  std::vector<float> data;
  data.reserve(n * m);
  for (const auto& row : rows) {
    VELA_CHECK_MSG(row.size() == m, "ragged initializer for Tensor::from_rows");
    data.insert(data.end(), row.begin(), row.end());
  }
  return Tensor({n, m}, std::move(data));
}

std::size_t Tensor::dim(std::size_t i) const {
  VELA_CHECK(i < shape_.size());
  return shape_[i];
}

std::size_t Tensor::rows() const {
  VELA_CHECK_MSG(rank() == 2, "rows() requires a rank-2 tensor, got "
                                  << shape_string());
  return shape_[0];
}

std::size_t Tensor::cols() const {
  VELA_CHECK_MSG(rank() == 2, "cols() requires a rank-2 tensor, got "
                                  << shape_string());
  return shape_[1];
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  VELA_CHECK_MSG(volume(shape) == size(),
                 "reshape volume mismatch: " << shape_string());
  return Tensor(std::move(shape), data_);
}

float& Tensor::at(std::size_t i) {
  VELA_DCHECK(rank() == 1 && i < shape_[0]);
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  VELA_DCHECK(rank() == 1 && i < shape_[0]);
  return data_[i];
}

float& Tensor::at(std::size_t i, std::size_t j) {
  VELA_DCHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  VELA_DCHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
  return data_[i * shape_[1] + j];
}

float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  VELA_DCHECK(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  VELA_DCHECK(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

void Tensor::fill(float value) {
  for (auto& x : data_) x = value;
}

void Tensor::add_(const Tensor& other) {
  VELA_CHECK_MSG(same_shape(other), "add_ shape mismatch: " << shape_string()
                                                            << " vs "
                                                            << other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::sub_(const Tensor& other) {
  VELA_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Tensor::scale_(float s) {
  for (auto& x : data_) x *= s;
}

void Tensor::axpy_(float a, const Tensor& x) {
  VELA_CHECK(same_shape(x));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * x.data_[i];
}

bool Tensor::all_finite() const {
  for (float x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::size_t Tensor::wire_bytes(unsigned bits) const {
  VELA_CHECK(bits > 0 && bits % 8 == 0);
  return size() * (bits / 8);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace vela
