#include "tensor/qblock.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace vela::qblock {
namespace {

// Deterministic round-half-away-from-zero, no dependence on the FE rounding
// mode (std::lrint would have one). |v| <= 127.5-ish by construction; clamp
// anyway to make the contract independent of float rounding of v.
inline std::int8_t code_of(float v) {
  const float r = v >= 0.0f ? std::floor(v + 0.5f) : std::ceil(v - 0.5f);
  const float c = r > 127.0f ? 127.0f : (r < -127.0f ? -127.0f : r);
  return static_cast<std::int8_t>(c);
}

}  // namespace

QTensor quantize(const Tensor& t, unsigned block) {
  VELA_CHECK_MSG(valid_block(block),
                 "qblock: block must be 32 or 64, got " << block);
  VELA_CHECK_MSG(t.all_finite(),
                 "qblock: refusing to quantize non-finite payload (NaN/Inf)");
  QTensor q;
  q.rows = tile_rows(t);
  q.cols = q.rows == 0 ? 0 : t.size() / q.rows;
  q.block = block;
  VELA_CHECK_MSG(q.rows * q.cols == t.size(),
                 "qblock: shape " << t.shape_string()
                                  << " does not tile into rows");
  q.codes.resize(t.size());
  q.scales.resize(q.rows * q.row_blocks());
  const float* src = t.data();
  const std::size_t per_row = q.row_blocks();
  for (std::size_t r = 0; r < q.rows; ++r) {
    const float* row = src + r * q.cols;
    std::int8_t* out = q.codes.data() + r * q.cols;
    for (std::size_t b = 0; b < per_row; ++b) {
      const std::size_t begin = b * block;
      const std::size_t end = begin + block < q.cols ? begin + block : q.cols;
      float absmax = 0.0f;
      for (std::size_t i = begin; i < end; ++i) {
        const float a = std::fabs(row[i]);
        if (a > absmax) absmax = a;
      }
      const float scale = absmax / 127.0f;
      q.scales[r * per_row + b] = scale;
      // Exact-zero is the codec's sentinel for an empty block, set two lines
      // up — not a computed float compared by accident.
      // vela-lint: allow(float-equality)
      if (scale == 0.0f) {
        // All-zero block, or absmax so small the scale underflowed: every
        // code is zero (the values were sub-representable at int8 anyway).
        for (std::size_t i = begin; i < end; ++i) out[i] = 0;
        continue;
      }
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = code_of(row[i] / scale);
      }
    }
  }
  return q;
}

Tensor dequantize(const QTensor& q, bool rank1) {
  VELA_CHECK_MSG(valid_block(q.block), "qblock: bad block " << q.block);
  VELA_CHECK(q.codes.size() == q.rows * q.cols);
  VELA_CHECK(q.scales.size() == q.rows * q.row_blocks());
  std::vector<float> data(q.codes.size());
  const std::size_t per_row = q.row_blocks();
  for (std::size_t r = 0; r < q.rows; ++r) {
    const std::int8_t* in = q.codes.data() + r * q.cols;
    float* out = data.data() + r * q.cols;
    for (std::size_t b = 0; b < per_row; ++b) {
      const float scale = q.scales[r * per_row + b];
      const std::size_t begin = b * q.block;
      const std::size_t end =
          begin + q.block < q.cols ? begin + q.block : q.cols;
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = static_cast<float>(in[i]) * scale;
      }
    }
  }
  if (rank1 && q.rows == 1) {
    return Tensor({q.cols}, std::move(data));
  }
  return Tensor({q.rows, q.cols}, std::move(data));
}

Tensor roundtrip(const Tensor& t, unsigned block) {
  QTensor q = quantize(t, block);
  Tensor d = dequantize(q);
  return d.reshaped(t.shape());
}

}  // namespace vela::qblock
