// Block-quantized packed GEMM — the compute half of the quantized tier
// (DESIGN.md §13), modeled on the mllm GemmPack/VecDotType structure: pack
// the static operand once into the block-scale layout, then contract with
// an integer dot microkernel (AVX2/SSE2 where the compiler provides them, a
// portable scalar loop otherwise).
//
// Determinism contract (the same one every kernel in tensor/ops.h honors):
// results are bit-identical at any VELA_THREADS *and* across the SIMD and
// scalar microkernels. Both hold because the per-block int8·int8 dot is an
// exact int32 (|dot| <= 64·127² < 2²⁴, so even its float image is exact) —
// summation order inside a block cannot change it — and the fp32 block
// accumulation always walks blocks in ascending order.
#pragma once

#include "tensor/qblock.h"
#include "tensor/tensor.h"

namespace vela::qgemm {

// Which microkernel this build dispatches to ("avx2", "sse2" or "scalar").
// Informational — all three produce bit-identical results.
const char* kernel_name();

// Exact int32 dot of two int8 code runs. Exposed for the conformance tests
// (SIMD vs scalar equality on random runs and block-boundary lengths).
std::int32_t vec_dot_q8(const std::int8_t* a, const std::int8_t* b,
                        std::size_t n);
std::int32_t vec_dot_q8_scalar(const std::int8_t* a, const std::int8_t* b,
                               std::size_t n);

// Pack a weight matrix for repeated use as the RHS of matmul_nt_q8. This is
// simply per-row block quantization — one layout for wire and compute.
inline qblock::QTensor pack(const Tensor& w,
                            unsigned block = qblock::kDefaultBlock) {
  return qblock::quantize(w, block);
}

// y[n, out] = x̂ · Ŵᵀ where Ŵ is the packed operand and x̂ is x quantized
// on the fly with the same block length: per block, the exact int32 code
// dot scaled by (scale_x · scale_w), accumulated over blocks in fp32.
// Numerically tracks ops::matmul_nt on the dequantized operands (same data,
// different summation grouping) without materializing either fp32 matrix.
Tensor matmul_nt_q8(const Tensor& x, const qblock::QTensor& w);

}  // namespace vela::qgemm
