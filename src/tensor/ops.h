// Free-function tensor kernels.
//
// These are the raw numeric kernels; the autograd layer wraps them with
// derivative rules. Shapes are validated eagerly — a wrong shape entering a
// distributed exchange would corrupt training silently otherwise.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace vela::ops {

// --- elementwise -----------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  // Hadamard
Tensor scale(const Tensor& a, float s);
Tensor neg(const Tensor& a);
// SiLU (swish): x * sigmoid(x) — the activation inside Mistral's experts.
Tensor silu(const Tensor& a);
Tensor silu_grad(const Tensor& a);  // d silu / dx, elementwise
Tensor sigmoid(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor relu(const Tensor& a);

// --- linear algebra --------------------------------------------------------
// C[n,m] = A[n,k] * B[k,m].
Tensor matmul(const Tensor& a, const Tensor& b);
// C[n,m] = A[k,n]^T * B[k,m] (saves materializing the transpose).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
// C[n,m] = A[n,k] * B[m,k]^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);  // rank-2

// Adds a rank-1 bias (length m) to every row of a [n, m] tensor.
Tensor add_row_broadcast(const Tensor& a, const Tensor& bias);

// --- reductions ------------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float dot(const Tensor& a, const Tensor& b);
float max_abs(const Tensor& a);
float l2_norm(const Tensor& a);
// Sums the rows of a [n, m] tensor into a length-m vector (bias gradient).
Tensor sum_rows(const Tensor& a);

// --- softmax & friends -----------------------------------------------------
// Row-wise, numerically stable softmax of a [n, m] tensor.
Tensor softmax_rows(const Tensor& logits);
// Row-wise log-softmax.
Tensor log_softmax_rows(const Tensor& logits);
// Mean negative log-likelihood of target class per row; logits [n, m],
// targets length n with entries in [0, m).
float cross_entropy(const Tensor& logits, const std::vector<std::size_t>& targets);
// Gradient of the above w.r.t. logits (softmax - onehot, scaled by 1/n).
Tensor cross_entropy_grad(const Tensor& logits,
                          const std::vector<std::size_t>& targets);

// Per-row top-k: returns indices of the k largest entries of each row,
// in descending value order. logits is [n, m], k <= m.
std::vector<std::vector<std::size_t>> topk_rows(const Tensor& logits,
                                                std::size_t k);

// --- row gather / scatter (MoE dispatch primitives) -------------------------
// Gathers rows `indices` of a [n, m] tensor into a [|indices|, m] tensor.
Tensor gather_rows(const Tensor& a, const std::vector<std::size_t>& indices);
// out.row(indices[i]) += a.row(i); out must be [n, m], a [|indices|, m].
void scatter_add_rows(Tensor& out, const Tensor& a,
                      const std::vector<std::size_t>& indices);
// Contiguous row window [begin, begin + rows) of a [n, m] tensor.
Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t rows);
// Stacks rank-2 tensors of equal column count along the row axis, in order.
Tensor concat_rows(const std::vector<Tensor>& parts);

// --- initialization --------------------------------------------------------
Tensor randn(std::vector<std::size_t> shape, Rng& rng, float mean = 0.0f,
             float stddev = 1.0f);
Tensor rand_uniform(std::vector<std::size_t> shape, Rng& rng, float lo,
                    float hi);
// Kaiming-style fan-in init for a [out, in] weight matrix.
Tensor kaiming(std::size_t fan_out, std::size_t fan_in, Rng& rng);

// --- comparisons (tests) ----------------------------------------------------
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

// --- wire quantization ------------------------------------------------------
// Simulates the paper's 16-bit feature transport: rounds every element to the
// nearest fp16-representable value (used to verify the claim that exchanging
// data at b=16 preserves convergence within fp16 precision).
Tensor to_half_precision(const Tensor& a);

}  // namespace vela::ops
