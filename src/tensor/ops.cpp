#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "util/check.h"
#include "util/thread_pool.h"

namespace vela::ops {
namespace {

// Grain sizes for the parallel kernels. Chunk boundaries depend only on the
// problem size and these constants — never on the pool size — so per-chunk
// work (and, for reductions, the partial-merge order) is identical under any
// VELA_THREADS, which is what makes the parallel kernels bit-compatible with
// the serial reference. Small inputs produce a single chunk and run inline.
constexpr std::size_t kElemGrain = 16384;    // elements per elementwise chunk
constexpr std::size_t kReduceGrain = 8192;   // elements per reduction chunk
constexpr std::size_t kMatmulGrainFlops = 1 << 16;  // ~mults per row block

// Row grain so one chunk carries roughly `target` scalar mults of work.
std::size_t row_grain(std::size_t row_cost, std::size_t target) {
  return std::max<std::size_t>(1, target / std::max<std::size_t>(row_cost, 1));
}

Tensor elementwise_binary(const Tensor& a, const Tensor& b,
                          float (*f)(float, float)) {
  VELA_CHECK_MSG(a.same_shape(b), "elementwise shape mismatch "
                                      << a.shape_string() << " vs "
                                      << b.shape_string());
  Tensor out(a.shape());
  util::ThreadPool::global().parallel_for(
      a.size(), kElemGrain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) out[i] = f(a[i], b[i]);
      });
  return out;
}

Tensor elementwise_unary(const Tensor& a, float (*f)(float)) {
  Tensor out(a.shape());
  util::ThreadPool::global().parallel_for(
      a.size(), kElemGrain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) out[i] = f(a[i]);
      });
  return out;
}

// Fixed-partition reduction: per-chunk partials in double, merged in chunk
// order. The single-chunk case degenerates to the plain serial loop.
template <typename PerElement>
double chunked_reduce(std::size_t n, const PerElement& pe) {
  const std::size_t chunks = (n + kReduceGrain - 1) / kReduceGrain;
  std::vector<double> partial(chunks, 0.0);
  util::ThreadPool::global().parallel_for(
      n, kReduceGrain,
      [&](std::size_t begin, std::size_t end, std::size_t c) {
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i) acc += pe(i);
        partial[c] = acc;
      });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

float sigmoid_scalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise_binary(a, b, [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise_binary(a, b, [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise_binary(a, b, [](float x, float y) { return x * y; });
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  out.scale_(s);
  return out;
}

Tensor neg(const Tensor& a) { return scale(a, -1.0f); }

Tensor silu(const Tensor& a) {
  return elementwise_unary(a, [](float x) { return x * sigmoid_scalar(x); });
}

Tensor silu_grad(const Tensor& a) {
  return elementwise_unary(a, [](float x) {
    const float s = sigmoid_scalar(x);
    return s * (1.0f + x * (1.0f - s));
  });
}

Tensor sigmoid(const Tensor& a) { return elementwise_unary(a, sigmoid_scalar); }

Tensor tanh_t(const Tensor& a) {
  return elementwise_unary(a, [](float x) { return std::tanh(x); });
}

Tensor relu(const Tensor& a) {
  return elementwise_unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  VELA_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && a.cols() == b.rows(),
                 "matmul shape mismatch " << a.shape_string() << " x "
                                          << b.shape_string());
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  Tensor c({n, m});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Row-blocked across the pool: each chunk owns a contiguous slice of
  // output rows, so the per-element accumulation order (ikj, streaming over
  // b rows — cache friendly without tiling) is the serial order exactly.
  util::ThreadPool::global().parallel_for(
      n, row_grain(k * m, kMatmulGrainFlops),
      [&](std::size_t r0, std::size_t r1, std::size_t) {
        for (std::size_t i = r0; i < r1; ++i) {
          for (std::size_t kk = 0; kk < k; ++kk) {
            const float aik = pa[i * k + kk];
            // Exact-zero skip: adding 0*row is the identity (finite inputs),
            // and routing masks make zeros common.
            // vela-lint: allow(float-equality)
            if (aik == 0.0f) continue;
            const float* brow = pb + kk * m;
            float* crow = pc + i * m;
            for (std::size_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
          }
        }
      });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  VELA_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && a.rows() == b.rows(),
                 "matmul_tn shape mismatch " << a.shape_string() << " x "
                                             << b.shape_string());
  const std::size_t k = a.rows(), n = a.cols(), m = b.cols();
  Tensor c({n, m});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Output rows are blocked across the pool; within a block the kk-outer
  // order is kept, so every c[i][j] accumulates over kk ascending — the same
  // order as the serial sweep, hence bit-identical.
  util::ThreadPool::global().parallel_for(
      n, row_grain(k * m, kMatmulGrainFlops),
      [&](std::size_t r0, std::size_t r1, std::size_t) {
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float* arow = pa + kk * n;
          const float* brow = pb + kk * m;
          for (std::size_t i = r0; i < r1; ++i) {
            const float aki = arow[i];
            // Same exact-zero identity as matmul's inner skip.
            // vela-lint: allow(float-equality)
            if (aki == 0.0f) continue;
            float* crow = pc + i * m;
            for (std::size_t j = 0; j < m; ++j) crow[j] += aki * brow[j];
          }
        }
      });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  VELA_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && a.cols() == b.cols(),
                 "matmul_nt shape mismatch " << a.shape_string() << " x "
                                             << b.shape_string());
  const std::size_t n = a.rows(), k = a.cols(), m = b.rows();
  Tensor c({n, m});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  util::ThreadPool::global().parallel_for(
      n, row_grain(k * m, kMatmulGrainFlops),
      [&](std::size_t r0, std::size_t r1, std::size_t) {
        for (std::size_t i = r0; i < r1; ++i) {
          const float* arow = pa + i * k;
          for (std::size_t j = 0; j < m; ++j) {
            const float* brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
            pc[i * m + j] = acc;
          }
        }
      });
  return c;
}

Tensor transpose(const Tensor& a) {
  VELA_CHECK(a.rank() == 2);
  const std::size_t n = a.rows(), m = a.cols();
  Tensor t({m, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) t.at(j, i) = a.at(i, j);
  return t;
}

Tensor add_row_broadcast(const Tensor& a, const Tensor& bias) {
  VELA_CHECK(a.rank() == 2 && bias.rank() == 1 && a.cols() == bias.dim(0));
  Tensor out = a;
  const std::size_t n = a.rows(), m = a.cols();
  util::ThreadPool::global().parallel_for(
      n, row_grain(m, kElemGrain),
      [&](std::size_t r0, std::size_t r1, std::size_t) {
        for (std::size_t i = r0; i < r1; ++i)
          for (std::size_t j = 0; j < m; ++j) out.at(i, j) += bias.at(j);
      });
  return out;
}

float sum(const Tensor& a) {
  return static_cast<float>(
      chunked_reduce(a.size(), [&](std::size_t i) { return double(a[i]); }));
}

float mean(const Tensor& a) {
  VELA_CHECK(a.size() > 0);
  return sum(a) / static_cast<float>(a.size());
}

float dot(const Tensor& a, const Tensor& b) {
  VELA_CHECK(a.size() == b.size());
  return static_cast<float>(chunked_reduce(
      a.size(), [&](std::size_t i) { return double(a[i]) * b[i]; }));
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i]));
  return m;
}

float l2_norm(const Tensor& a) { return std::sqrt(dot(a, a)); }

Tensor sum_rows(const Tensor& a) {
  VELA_CHECK(a.rank() == 2);
  const std::size_t n = a.rows(), m = a.cols();
  Tensor out({m});
  const std::size_t grain = row_grain(m, kReduceGrain);
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < m; ++j) out.at(j) += a.at(i, j);
    return out;
  }
  // Fixed row partition; per-chunk partial rows merged in chunk order keep
  // the per-column accumulation order identical at any pool size.
  Tensor partial({chunks, m});
  util::ThreadPool::global().parallel_for(
      n, grain, [&](std::size_t r0, std::size_t r1, std::size_t c) {
        for (std::size_t i = r0; i < r1; ++i)
          for (std::size_t j = 0; j < m; ++j) partial.at(c, j) += a.at(i, j);
      });
  for (std::size_t c = 0; c < chunks; ++c)
    for (std::size_t j = 0; j < m; ++j) out.at(j) += partial.at(c, j);
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  VELA_CHECK(logits.rank() == 2);
  const std::size_t n = logits.rows(), m = logits.cols();
  Tensor out({n, m});
  // Rows are independent: block them across the pool.
  util::ThreadPool::global().parallel_for(
      n, row_grain(m, kElemGrain),
      [&](std::size_t r0, std::size_t r1, std::size_t) {
        for (std::size_t i = r0; i < r1; ++i) {
          float mx = -std::numeric_limits<float>::infinity();
          for (std::size_t j = 0; j < m; ++j) mx = std::max(mx, logits.at(i, j));
          double total = 0.0;
          for (std::size_t j = 0; j < m; ++j) {
            const float e = std::exp(logits.at(i, j) - mx);
            out.at(i, j) = e;
            total += e;
          }
          const float inv = static_cast<float>(1.0 / total);
          for (std::size_t j = 0; j < m; ++j) out.at(i, j) *= inv;
        }
      });
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  VELA_CHECK(logits.rank() == 2);
  const std::size_t n = logits.rows(), m = logits.cols();
  Tensor out({n, m});
  util::ThreadPool::global().parallel_for(
      n, row_grain(m, kElemGrain),
      [&](std::size_t r0, std::size_t r1, std::size_t) {
        for (std::size_t i = r0; i < r1; ++i) {
          float mx = -std::numeric_limits<float>::infinity();
          for (std::size_t j = 0; j < m; ++j) mx = std::max(mx, logits.at(i, j));
          double total = 0.0;
          for (std::size_t j = 0; j < m; ++j)
            total += std::exp(logits.at(i, j) - mx);
          const float lse = mx + static_cast<float>(std::log(total));
          for (std::size_t j = 0; j < m; ++j)
            out.at(i, j) = logits.at(i, j) - lse;
        }
      });
  return out;
}

float cross_entropy(const Tensor& logits,
                    const std::vector<std::size_t>& targets) {
  VELA_CHECK(logits.rank() == 2 && logits.rows() == targets.size());
  const Tensor logp = log_softmax_rows(logits);
  double loss = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    VELA_CHECK(targets[i] < logits.cols());
    loss -= logp.at(i, targets[i]);
  }
  return static_cast<float>(loss / static_cast<double>(targets.size()));
}

Tensor cross_entropy_grad(const Tensor& logits,
                          const std::vector<std::size_t>& targets) {
  VELA_CHECK(logits.rank() == 2 && logits.rows() == targets.size());
  Tensor grad = softmax_rows(logits);
  const float inv_n = 1.0f / static_cast<float>(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    grad.at(i, targets[i]) -= 1.0f;
  }
  grad.scale_(inv_n);
  return grad;
}

std::vector<std::vector<std::size_t>> topk_rows(const Tensor& logits,
                                                std::size_t k) {
  VELA_CHECK(logits.rank() == 2 && k >= 1 && k <= logits.cols());
  const std::size_t n = logits.rows(), m = logits.cols();
  std::vector<std::vector<std::size_t>> result(n);
  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < n; ++i) {
    std::iota(idx.begin(), idx.end(), 0);
    std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k),
                      idx.end(), [&](std::size_t a, std::size_t b) {
                        if (logits.at(i, a) != logits.at(i, b))
                          return logits.at(i, a) > logits.at(i, b);
                        return a < b;  // deterministic tie-break
                      });
    result[i].assign(idx.begin(), idx.begin() + static_cast<long>(k));
  }
  return result;
}

Tensor gather_rows(const Tensor& a, const std::vector<std::size_t>& indices) {
  VELA_CHECK(a.rank() == 2);
  VELA_CHECK_MSG(!indices.empty(), "gather_rows requires non-empty indices");
  const std::size_t m = a.cols();
  Tensor out({indices.size(), m});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    VELA_CHECK(indices[i] < a.rows());
    std::memcpy(out.data() + i * m, a.data() + indices[i] * m,
                m * sizeof(float));
  }
  return out;
}

Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t rows) {
  VELA_CHECK(a.rank() == 2);
  VELA_CHECK_MSG(begin + rows <= a.rows(), "slice_rows window out of range");
  const std::size_t m = a.cols();
  Tensor out({rows, m});
  std::memcpy(out.data(), a.data() + begin * m, rows * m * sizeof(float));
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  VELA_CHECK_MSG(!parts.empty(), "concat_rows requires at least one part");
  const std::size_t m = parts.front().cols();
  std::size_t rows = 0;
  for (const Tensor& p : parts) {
    VELA_CHECK(p.rank() == 2 && p.cols() == m);
    rows += p.rows();
  }
  Tensor out({rows, m});
  std::size_t at = 0;
  for (const Tensor& p : parts) {
    std::memcpy(out.data() + at * m, p.data(), p.rows() * m * sizeof(float));
    at += p.rows();
  }
  return out;
}

void scatter_add_rows(Tensor& out, const Tensor& a,
                      const std::vector<std::size_t>& indices) {
  VELA_CHECK(out.rank() == 2 && a.rank() == 2 && out.cols() == a.cols());
  VELA_CHECK(a.rows() == indices.size());
  const std::size_t m = out.cols();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    VELA_CHECK(indices[i] < out.rows());
    float* dst = out.data() + indices[i] * m;
    const float* src = a.data() + i * m;
    for (std::size_t j = 0; j < m; ++j) dst[j] += src[j];
  }
}

Tensor randn(std::vector<std::size_t> shape, Rng& rng, float mean,
             float stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor rand_uniform(std::vector<std::size_t> shape, Rng& rng, float lo,
                    float hi) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor kaiming(std::size_t fan_out, std::size_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return randn({fan_out, fan_in}, rng, 0.0f, stddev);
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float diff = std::abs(a[i] - b[i]);
    if (diff > atol + rtol * std::abs(b[i])) return false;
  }
  return true;
}

Tensor to_half_precision(const Tensor& a) {
  Tensor out(a.shape());
  util::ThreadPool::global().parallel_for(
      a.size(), kElemGrain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          // Round-trip through IEEE fp16 semantics: keep 10 mantissa bits.
          float x = a[i];
          if (!std::isfinite(x)) {
            out[i] = x;
            continue;
          }
          // Scale so the mantissa truncation happens at the fp16 precision
          // level.
          int exp = 0;
          const float frac = std::frexp(x, &exp);
          const float scaled =
              std::ldexp(std::nearbyint(std::ldexp(frac, 11)), -11);
          out[i] = std::ldexp(scaled, exp);
        }
      });
  return out;
}

}  // namespace vela::ops
