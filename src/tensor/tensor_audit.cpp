// Tensor-aware half of the VELA_AUDIT backward checker. Lives in tensor/
// (not util/) because it needs the Tensor definition: util/ is the bottom
// layer of the DAG and may not include tensor/ (tools/layers.conf); the
// audit header only forward-declares Tensor for exactly this split.
#include <sstream>

#include "tensor/tensor.h"
#include "util/audit.h"

namespace vela::audit {

void check_backward_tensors(const Tensor& value, const Tensor& grad,
                            const char* where) {
  if (!enabled()) return;
  if (value.shape() != grad.shape()) {
    std::ostringstream oss;
    oss << "gradient shape mismatch at " << where << ": value [";
    for (std::size_t i = 0; i < value.shape().size(); ++i)
      oss << (i ? "," : "") << value.shape()[i];
    oss << "] vs grad [";
    for (std::size_t i = 0; i < grad.shape().size(); ++i)
      oss << (i ? "," : "") << grad.shape()[i];
    oss << "]";
    fail("backward", oss.str());
    return;
  }
  if (value.size() > 0 && value.data() == grad.data()) {
    std::ostringstream oss;
    oss << "gradient aliases value storage at " << where << " (buffer "
        << static_cast<const void*>(value.data()) << ")";
    fail("backward", oss.str());
  }
}

}  // namespace vela::audit
