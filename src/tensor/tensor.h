// Dense row-major float tensor.
//
// This is the numeric substrate for the whole reproduction: the autograd
// engine, the MoE model and the distributed runtime all move Tensors around.
// Only the operations the system actually needs are provided; they live in
// tensor/ops.h as free functions so the class itself stays a plain value type
// with clear ownership (std::vector<float> storage, copy = deep copy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace vela {

class Tensor {
 public:
  // Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  // Zero-initialized tensor of the given shape. All dims must be > 0.
  explicit Tensor(std::vector<std::size_t> shape);

  // Tensor with explicit data; data.size() must equal the shape volume.
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  // --- factories -----------------------------------------------------------
  static Tensor zeros(std::vector<std::size_t> shape);
  static Tensor ones(std::vector<std::size_t> shape);
  static Tensor full(std::vector<std::size_t> shape, float value);
  // 1-D tensor from values.
  static Tensor from_vector(const std::vector<float>& values);
  // 2-D row-major tensor from nested initializer list (tests/examples).
  static Tensor from_rows(std::initializer_list<std::initializer_list<float>> rows);

  // --- shape ---------------------------------------------------------------
  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const;
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // Rows/cols of a 2-D tensor (checked).
  std::size_t rows() const;
  std::size_t cols() const;

  // Returns a tensor sharing no storage with this one but viewing the same
  // data under a new shape; volume must match.
  Tensor reshaped(std::vector<std::size_t> shape) const;

  // --- element access ------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& at(std::size_t i);              // rank-1
  float at(std::size_t i) const;
  float& at(std::size_t i, std::size_t j);  // rank-2
  float at(std::size_t i, std::size_t j) const;
  float& at(std::size_t i, std::size_t j, std::size_t k);  // rank-3
  float at(std::size_t i, std::size_t j, std::size_t k) const;

  // Raw flat access (bounds-checked in debug builds).
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // --- in-place helpers ----------------------------------------------------
  void fill(float value);
  void add_(const Tensor& other);          // this += other
  void sub_(const Tensor& other);          // this -= other
  void scale_(float s);                    // this *= s
  void axpy_(float a, const Tensor& x);    // this += a * x

  // --- misc ----------------------------------------------------------------
  bool all_finite() const;
  // Number of bytes this tensor occupies on the wire when transmitted with
  // bit-depth `bits` per element (the paper uses b=16 for features).
  [[nodiscard]] std::size_t wire_bytes(unsigned bits = 32) const;
  std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace vela
