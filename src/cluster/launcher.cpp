#include "cluster/launcher.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/check.h"
#include "util/logging.h"

namespace vela::cluster {

ChildProcess::ChildProcess(const ProcessSpec& spec) : spec_(spec) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(spec_.binary.c_str()));
  for (const std::string& arg : spec_.args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  VELA_CHECK_MSG(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    // Child. Redirect stdout+stderr to the log file before exec so even
    // exec-failure diagnostics land in the capture.
    if (!spec_.log_path.empty()) {
      // Post-fork/pre-exec log capture: only async-signal-safe fd plumbing
      // is legal here, not a store seam. vela-lint: allow(raw-file-io)
      const int fd = ::open(spec_.log_path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) ::close(fd);
      }
    }
    ::execv(spec_.binary.c_str(), argv.data());
    // Exec failed; 127 is the shell's "command not found" convention.
    std::fprintf(stderr, "exec %s failed: %s\n", spec_.binary.c_str(),
                 std::strerror(errno));
    std::_Exit(127);
  }
  pid_ = pid;
}

ChildProcess::~ChildProcess() {
  if (pid_ >= 0 && !reaped_) {
    // A destructor must not hang on a wedged child: kill, then reap.
    ::kill(pid_, SIGKILL);
    (void)wait();
  }
}

namespace {

// waitpid status → single exit code (crash = 128+signal, shell convention).
int fold_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

}  // namespace

bool ChildProcess::poll() {
  if (reaped_) return true;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    reaped_ = true;
    exit_code_ = fold_status(status);
  }
  return reaped_;
}

int ChildProcess::wait() {
  if (reaped_) return exit_code_;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  VELA_CHECK_MSG(r == pid_, "waitpid(" << pid_ << ") failed: "
                                       << std::strerror(errno));
  reaped_ = true;
  exit_code_ = fold_status(status);
  if (exit_code_ != 0) {
    VELA_LOG_WARN("launcher") << "child " << pid_ << " exited with code "
                              << exit_code_
                              << (spec_.log_path.empty()
                                      ? ""
                                      : " (log: " + spec_.log_path + ")");
  }
  return exit_code_;
}

bool ChildProcess::running() { return !poll(); }

void ChildProcess::kill(int sig) {
  if (reaped_) return;
  ::kill(pid_, sig);
}

std::uint16_t wait_for_port(const std::string& log_path,
                            std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // vela-lint: allow(naked-clock) -- polling another process's log file;
  // no injected clock can advance a child process's wall time.
  while (std::chrono::steady_clock::now() < deadline) {
    // Tailing a child process's log: line-oriented text owned by the
    // child, not the store. vela-lint: allow(raw-file-io)
    std::ifstream in(log_path);
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream fields(line);
      std::string tag;
      unsigned port = 0;
      if (fields >> tag >> port && tag == "VELA_PORT" && port > 0 &&
          port <= 65535) {
        return static_cast<std::uint16_t>(port);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

int wait_all(std::vector<std::unique_ptr<ChildProcess>>& children) {
  int worst = 0;
  for (auto& child : children) {
    if (child == nullptr) continue;
    const int code = child->wait();
    if (code != 0 && worst == 0) worst = code;
  }
  return worst;
}

}  // namespace vela::cluster
