// Cluster topology and bandwidth model.
//
// Encodes the paper's testbed (§V-A): multiple nodes, several GPUs each,
// fast intra-node links and a slow cross-node Ethernet. The measured
// constants from the paper (18.3 GB/s intra-node, 1.17 GB/s cross-node) are
// the defaults. Worker process n runs on device n; the master process runs
// on `master_device`'s node, so B_n — the bandwidth between the master and
// worker n used in Eq. (5) — is the intra-node figure for co-located workers
// and the Ethernet figure otherwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vela::cluster {

struct ClusterConfig {
  std::size_t num_nodes = 3;
  std::size_t gpus_per_node = 2;
  double intra_node_gbps = 18.3;   // GB/s, measured over NVLink/PCIe
  double cross_node_gbps = 1.17;   // GB/s, measured over Ethernet (iperf)
  double intra_node_latency_s = 30e-6;   // per message
  double cross_node_latency_s = 200e-6;  // per message
  std::size_t master_device = 0;   // the GPU hosting the master process
  // The master process hosts the model backbone on its own GPU; worker
  // processes run on the remaining devices ("launch worker processes on
  // each available GPU"). With the paper's 3×2 testbed that yields 5
  // workers, exactly one of which shares the master's node.
  bool master_exclusive = true;
  // GPU memory available for experts per device (bytes). The paper's V100s
  // have 32 GB; leave headroom for activations and the runtime.
  std::uint64_t device_memory_bytes = 28ULL << 30;

  static ClusterConfig paper_testbed();  // 3 × 2 V100, paper constants
};

class ClusterTopology {
 public:
  explicit ClusterTopology(ClusterConfig cfg);

  const ClusterConfig& config() const { return cfg_; }
  std::size_t num_devices() const { return cfg_.num_nodes * cfg_.gpus_per_node; }
  std::size_t num_nodes() const { return cfg_.num_nodes; }
  std::size_t node_of(std::size_t device) const;
  bool same_node(std::size_t a, std::size_t b) const;

  // --- worker indexing -------------------------------------------------------
  // Expert workers occupy every device except (when master_exclusive) the
  // master's own GPU. Placement problems, the broker and the traffic models
  // all index workers 0..num_workers()−1.
  std::size_t num_workers() const;
  std::size_t worker_device(std::size_t worker) const;
  std::size_t worker_node(std::size_t worker) const;
  std::size_t master_node() const { return node_of(cfg_.master_device); }
  // B_n of Eq. (5): bytes/second between the master and worker n.
  double worker_bandwidth(std::size_t worker) const;
  double worker_latency(std::size_t worker) const;

  // Bytes/second between the master process and `device`.
  double master_bandwidth(std::size_t device) const;
  // Bytes/second between two worker devices (EP all-to-all paths).
  double device_bandwidth(std::size_t a, std::size_t b) const;
  // Per-message latency on the master↔worker path.
  double master_latency(std::size_t device) const;
  double device_latency(std::size_t a, std::size_t b) const;

  // Worker capacities Cₙ (one entry per WORKER): how many experts of
  // `expert_bytes` each worker's device memory fits.
  std::vector<std::size_t> capacities(std::uint64_t expert_bytes) const;
  // Convenience: uniform per-worker capacity with a slack factor over the
  // even share of L·E experts. slack >= 1.0.
  std::vector<std::size_t> uniform_capacities(std::size_t num_experts_total,
                                              double slack) const;

  std::string to_string() const;

 private:
  ClusterConfig cfg_;
};

}  // namespace vela::cluster
