#include "cluster/topology.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace vela::cluster {

namespace {
constexpr double kGiB = 1e9;  // the paper quotes decimal GB/s
}

ClusterConfig ClusterConfig::paper_testbed() { return ClusterConfig{}; }

ClusterTopology::ClusterTopology(ClusterConfig cfg) : cfg_(cfg) {
  VELA_CHECK(cfg_.num_nodes > 0 && cfg_.gpus_per_node > 0);
  VELA_CHECK(cfg_.master_device < num_devices());
  VELA_CHECK(cfg_.intra_node_gbps > 0 && cfg_.cross_node_gbps > 0);
}

std::size_t ClusterTopology::node_of(std::size_t device) const {
  VELA_CHECK(device < num_devices());
  return device / cfg_.gpus_per_node;
}

bool ClusterTopology::same_node(std::size_t a, std::size_t b) const {
  return node_of(a) == node_of(b);
}

std::size_t ClusterTopology::num_workers() const {
  return cfg_.master_exclusive ? num_devices() - 1 : num_devices();
}

std::size_t ClusterTopology::worker_device(std::size_t worker) const {
  VELA_CHECK(worker < num_workers());
  if (!cfg_.master_exclusive) return worker;
  // Devices in order, skipping the master's GPU.
  return worker < cfg_.master_device ? worker : worker + 1;
}

std::size_t ClusterTopology::worker_node(std::size_t worker) const {
  return node_of(worker_device(worker));
}

double ClusterTopology::worker_bandwidth(std::size_t worker) const {
  return master_bandwidth(worker_device(worker));
}

double ClusterTopology::worker_latency(std::size_t worker) const {
  return master_latency(worker_device(worker));
}

double ClusterTopology::master_bandwidth(std::size_t device) const {
  return same_node(cfg_.master_device, device) ? cfg_.intra_node_gbps * kGiB
                                               : cfg_.cross_node_gbps * kGiB;
}

double ClusterTopology::device_bandwidth(std::size_t a, std::size_t b) const {
  if (a == b) return cfg_.intra_node_gbps * kGiB * 8;  // on-device copy
  return same_node(a, b) ? cfg_.intra_node_gbps * kGiB
                         : cfg_.cross_node_gbps * kGiB;
}

double ClusterTopology::master_latency(std::size_t device) const {
  return same_node(cfg_.master_device, device) ? cfg_.intra_node_latency_s
                                               : cfg_.cross_node_latency_s;
}

double ClusterTopology::device_latency(std::size_t a, std::size_t b) const {
  if (a == b) return 0.0;
  return same_node(a, b) ? cfg_.intra_node_latency_s
                         : cfg_.cross_node_latency_s;
}

std::vector<std::size_t> ClusterTopology::capacities(
    std::uint64_t expert_bytes) const {
  VELA_CHECK(expert_bytes > 0);
  const std::size_t per_device =
      static_cast<std::size_t>(cfg_.device_memory_bytes / expert_bytes);
  return std::vector<std::size_t>(num_workers(), per_device);
}

std::vector<std::size_t> ClusterTopology::uniform_capacities(
    std::size_t num_experts_total, double slack) const {
  VELA_CHECK(slack >= 1.0);
  const double even = static_cast<double>(num_experts_total) /
                      static_cast<double>(num_workers());
  const auto cap = static_cast<std::size_t>(std::ceil(even * slack));
  return std::vector<std::size_t>(num_workers(), cap);
}

std::string ClusterTopology::to_string() const {
  std::ostringstream os;
  os << cfg_.num_nodes << " nodes x " << cfg_.gpus_per_node
     << " GPUs (intra " << cfg_.intra_node_gbps << " GB/s, cross "
     << cfg_.cross_node_gbps << " GB/s, master on device "
     << cfg_.master_device << ")";
  return os.str();
}

}  // namespace vela::cluster
