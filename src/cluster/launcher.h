// Process launching for the multi-process deployment mode (DESIGN.md §12).
//
// ChildProcess is a thin fork/exec wrapper with the three properties the
// vela_launch driver and the multiproc test fixture need:
//
//   * per-process log capture — stdout+stderr redirected to one file per
//     child, so N workers don't interleave on the parent's terminal and a
//     post-mortem has every process's tail;
//   * exit propagation — wait() folds WIFEXITED/WIFSIGNALED into one code
//     (a crash surfaces as 128+signal, the shell convention), so "did the
//     fleet finish cleanly" is a single comparison;
//   * kill support — the fault-tolerance tests SIGKILL a live worker and
//     assert the master degrades instead of hanging.
//
// Port allocation is NOT here: the master binds port 0 (the kernel picks a
// free port, comm/session.h's make_listen_socket reports it back) and
// announces it on stdout as "VELA_PORT <port>"; wait_for_port() scrapes
// that line from the master's log so workers can be pointed at it. That
// ordering makes port collisions impossible by construction; the bounded
// bind-retry in make_listen_socket covers the explicit-port path.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vela::cluster {

struct ProcessSpec {
  std::string binary;              // executable path
  std::vector<std::string> args;   // argv[1..]; argv[0] is `binary`
  std::string log_path;            // stdout+stderr capture; "" = inherit
};

class ChildProcess {
 public:
  // fork/exec immediately; fails a VELA_CHECK if the executable cannot be
  // spawned (exec failure inside the child surfaces as exit code 127).
  explicit ChildProcess(const ProcessSpec& spec);
  ~ChildProcess();  // reaps (blocking) if still running

  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  pid_t pid() const { return pid_; }
  const std::string& log_path() const { return spec_.log_path; }

  // Non-blocking: true once the child has exited (status then available).
  bool poll();
  // Blocking reap. Returns the propagated exit code: the child's own code
  // when it exited, 128+signal when it was killed by one.
  int wait();
  // True while the child has not been reaped and is still running.
  bool running();

  // Sends `sig` (default SIGKILL). No-op once exited.
  void kill(int sig = 9);

 private:
  ProcessSpec spec_;
  pid_t pid_ = -1;
  bool reaped_ = false;
  int exit_code_ = -1;
};

// Scrapes "VELA_PORT <port>" from `log_path` (the master's captured
// stdout), polling until `timeout` elapses. Returns 0 on timeout.
std::uint16_t wait_for_port(const std::string& log_path,
                            std::chrono::milliseconds timeout);

// Reaps every child, returning the worst exit code (0 only if all clean).
int wait_all(std::vector<std::unique_ptr<ChildProcess>>& children);

}  // namespace vela::cluster
