#include "ep/expert_parallel.h"

#include "util/check.h"

namespace vela::ep {

ExpertParallelModel::ExpertParallelModel(
    const cluster::ClusterTopology* topology, EpConfig cfg)
    : topology_(topology), cfg_(cfg) {
  VELA_CHECK(topology != nullptr);
  VELA_CHECK(cfg_.bytes_per_token > 0);
}

std::size_t ExpertParallelModel::device_of_token(std::size_t token,
                                                 std::size_t num_tokens) const {
  VELA_CHECK(token < num_tokens);
  return token * topology_->num_devices() / num_tokens;
}

std::size_t ExpertParallelModel::device_of_expert(std::size_t expert) const {
  return expert % topology_->num_devices();
}

comm::EpStepRecord ExpertParallelModel::account_step(
    const std::vector<moe::RoutePlan>& plans) const {
  const std::size_t n = topology_->num_devices();
  comm::EpStepRecord record;
  record.phases.reserve(4 * plans.size());

  // Per block: dispatch matrix D (shard → expert device) and its transpose
  // G for the gather. Backward repeats the same pair.
  std::vector<comm::AllToAllPhase> dispatches;
  dispatches.reserve(plans.size());
  for (const auto& plan : plans) {
    comm::AllToAllPhase dispatch;
    dispatch.bytes.assign(n, std::vector<std::uint64_t>(n, 0));
    for (std::size_t e = 0; e < plan.num_experts; ++e) {
      const std::size_t dst = device_of_expert(e);
      for (std::size_t t : plan.expert_tokens[e]) {
        const std::size_t src = device_of_token(t, plan.num_tokens);
        if (src == dst) continue;  // local dispatch, no wire traffic
        dispatch.bytes[src][dst] += cfg_.bytes_per_token;
      }
    }
    // Framing: one message per communicating pair.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (dispatch.bytes[i][j] > 0) dispatch.bytes[i][j] += cfg_.header_bytes;
      }
    }
    dispatches.push_back(std::move(dispatch));
  }

  const auto transpose = [n](const comm::AllToAllPhase& phase) {
    comm::AllToAllPhase out;
    out.bytes.assign(n, std::vector<std::uint64_t>(n, 0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        out.bytes[j][i] = phase.bytes[i][j];
      }
    }
    return out;
  };

  // Forward: dispatch then gather, block 0..L−1.
  for (const auto& dispatch : dispatches) {
    record.phases.push_back(dispatch);
    record.phases.push_back(transpose(dispatch));
  }
  // Backward: gradient dispatch (same direction as forward dispatch: the
  // token owner holds dL/dy and ships it to the expert device) then gradient
  // gather, block L−1..0.
  for (std::size_t l = dispatches.size(); l-- > 0;) {
    record.phases.push_back(dispatches[l]);
    record.phases.push_back(transpose(dispatches[l]));
  }

  record.allreduce_bytes_per_device = cfg_.backbone_grad_bytes;
  return record;
}

std::uint64_t ExpertParallelModel::external_bytes(
    const comm::EpStepRecord& record) const {
  const std::size_t n = topology_->num_devices();
  std::uint64_t total = 0;
  for (const auto& phase : record.phases) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!topology_->same_node(i, j)) total += phase.bytes[i][j];
      }
    }
  }
  // Ring all-reduce 0→1→…→N−1→0: each directed edge carries
  // 2·(N−1)/N · B bytes; count the edges whose endpoints straddle nodes.
  if (record.allreduce_bytes_per_device > 0 && n > 1) {
    const double per_edge = 2.0 * static_cast<double>(n - 1) /
                            static_cast<double>(n) *
                            static_cast<double>(record.allreduce_bytes_per_device);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (i + 1) % n;
      if (!topology_->same_node(i, j)) {
        total += static_cast<std::uint64_t>(per_edge);
      }
    }
  }
  return total;
}

}  // namespace vela::ep
