// Conventional expert parallelism (Fig. 2) — the paper's main baseline.
//
// Faithful to §V-A's reference implementation: every device replicates the
// non-expert layers, the input batch is sharded across devices, expert e of
// every block lives on device e mod N, and each MoE block performs two
// synchronized all-to-alls per direction (dispatch + gather forward, the
// mirrored pair backward). Because the backbone is replicated and trained
// under data parallelism, every step ends with an all-reduce over the
// backbone's trainable (LoRA) gradients — the extra traffic Fig. 5 shows for
// "EP" over the sequential/random VELA placements.
//
// This module is an accounting engine over routing plans: it produces the
// byte matrices the CommClock and the traffic report consume. The routing
// decisions themselves come from the same source as VELA's (real model or
// SyntheticRouter), so comparisons are apples-to-apples.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/topology.h"
#include "comm/comm_clock.h"
#include "comm/message.h"
#include "moe/gate.h"

namespace vela::ep {

struct EpConfig {
  std::size_t bytes_per_token = 0;  // H · b / 8, one token one direction
  // Bytes of the replicated backbone's trainable gradients (all-reduced at
  // the end of every step; fp32 like the optimizer state).
  std::uint64_t backbone_grad_bytes = 0;
  std::uint64_t header_bytes = comm::Message::kHeaderBytes;
};

class ExpertParallelModel {
 public:
  ExpertParallelModel(const cluster::ClusterTopology* topology, EpConfig cfg);

  // Input sharding: token t of K belongs to device ⌊t·N/K⌋ (contiguous
  // shards, like splitting the batch dimension).
  std::size_t device_of_token(std::size_t token, std::size_t num_tokens) const;
  // Expert placement: expert e of every block on device e mod N.
  std::size_t device_of_expert(std::size_t expert) const;

  // Accounts one fine-tuning step: 2 all-to-all phases per block forward
  // (dispatch, gather) and 2 backward, plus the end-of-step all-reduce.
  comm::EpStepRecord account_step(
      const std::vector<moe::RoutePlan>& plans) const;

  // Cross-node bytes of a record, including the all-reduce's share (ring
  // order 0..N−1; edges crossing a node boundary count as external).
  std::uint64_t external_bytes(const comm::EpStepRecord& record) const;

  const EpConfig& config() const { return cfg_; }

 private:
  const cluster::ClusterTopology* topology_;
  EpConfig cfg_;
};

}  // namespace vela::ep
