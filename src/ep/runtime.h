// A real, executable implementation of conventional expert parallelism —
// the paper's baseline "implemented strictly following Fig. 2" — not just
// its traffic model.
//
// Every device runs a shard: a full backbone replica (data parallelism over
// the input batch) plus an expert server hosting experts {e : e mod N == d}
// of every MoE block. A shard's MoE dispatch sends token groups to the
// owning peers (the all-to-all), whose servers compute the experts on their
// local tapes and return activations; backward retraces the same exchanges
// with gradients. The step ends with a literal ring all-reduce of the
// replicated backbone's LoRA gradients over byte-counted channels, followed
// by identical AdamW steps on every replica — the data-parallel cost VELA's
// master–worker design eliminates.
//
// Numerical contract: with equal-length sequences split evenly over shards,
// the EP runtime computes the same global loss and (up to float summation
// order) the same updates as a single-process dense run — pinned by
// tests/test_ep_runtime.cpp.
#pragma once

#include <memory>
#include <vector>

#include "cluster/topology.h"
#include "comm/comm_clock.h"
#include "comm/endpoint.h"
#include "comm/wire_codec.h"
#include "comm/traffic_meter.h"
#include "data/corpus.h"
#include "model/router_planting.h"
#include "model/transformer.h"
#include "nn/optimizer.h"

namespace vela::ep {

struct EpRuntimeConfig {
  model::ModelConfig model;
  cluster::ClusterConfig cluster;  // EP shards occupy ALL devices
  nn::AdamWConfig adamw;
  std::uint64_t seed = 1;
  unsigned wire_bits = 32;
  // Quantized wire tier (DESIGN.md §13): dtype of all-to-all dispatch
  // payloads and compute replies (the ring all-reduce stays raw fp32).
  // kDefault consults VELA_WIRE_DTYPE, then keeps legacy wire_bits
  // accounting. kInt8 also switches hosted experts to the packed-q8 GEMM.
  comm::WireDtype wire_dtype = comm::WireDtype::kDefault;
  unsigned q8_block = 0;  // int8 block length; 0 → VELA_WIRE_BLOCK, then 64
  // Comm-fabric backend for every channel (inbox, reply, ring); kDefault
  // follows VELA_TRANSPORT. Losses, weights and byte counts are bit-exact
  // across backends.
  comm::TransportKind transport = comm::TransportKind::kDefault;
  // Analytic step-time model (same calibrated constants as the VELA side).
  comm::CommClockConfig clock;
};

struct EpStepReport {
  std::size_t step = 0;
  float loss = 0.0f;  // mean over shards (== dense mean for equal shards)
  double external_mb_per_node = 0.0;
  // Modeled Fig. 6 times from the step's measured all-to-all ledger
  // (forward blocks 0..L−1 then backward L−1..0, plus the backbone
  // gradient ring all-reduce) through CommClock's EP model.
  double comm_seconds = 0.0;
  double step_seconds = 0.0;
};

class EpRuntime {
 public:
  // If `plant_corpus` is non-null, pre-trained locality is planted into
  // every replica (identically — replicas must agree bit-for-bit).
  EpRuntime(const EpRuntimeConfig& cfg,
            const data::SyntheticCorpus* plant_corpus = nullptr,
            const model::PlantingConfig& planting = {});
  ~EpRuntime();

  EpRuntime(const EpRuntime&) = delete;
  EpRuntime& operator=(const EpRuntime&) = delete;

  // One synchronous EP step. batch.size() must be divisible by the shard
  // count; all sequences must have equal length (the data-parallel loss
  // averaging assumes equal shard token counts).
  EpStepReport train_step(const std::vector<std::vector<std::size_t>>& batch);

  // Shard 0's replica (all replicas stay in lockstep) — for evaluation.
  model::MoETransformer& replica();

  std::size_t num_shards() const;
  const comm::TrafficMeter& meter() const;
  const cluster::ClusterTopology& topology() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vela::ep
