#include "ep/runtime.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <thread>
#include <unordered_map>

#include "autograd/ops.h"
#include "comm/phase_ledger.h"
#include "core/protocol.h"
#include "moe/moe_block.h"
#include "nn/expert.h"
#include "store/expert_store.h"
#include "util/audit.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace vela::ep {
namespace {

using core::ExpertKey;

// ---------------------------------------------------------------------------
// Expert server: hosts this shard's expert slice and serves forward/backward
// requests from every peer (including its own shard).
// ---------------------------------------------------------------------------
class ExpertServer {
 public:
  ExpertServer(std::size_t shard, const EpRuntimeConfig& cfg,
               std::size_t num_layers, std::size_t num_experts,
               std::size_t num_shards, comm::Endpoint* inbox,
               std::vector<comm::Endpoint*> reply)
      : shard_(shard),
        cfg_(cfg),
        codec_(comm::WireCodec::resolve(cfg.wire_dtype, cfg.wire_bits,
                                        /*legacy_quantize=*/false,
                                        cfg.q8_block)),
        inbox_(inbox),
        reply_(std::move(reply)) {
    // Expert ownership lives in an ExpertStore like the VELA worker's — but
    // always the unbounded InMemoryStore: expert parallelism has no
    // locality signal to page against (every shard owns a fixed stripe and
    // every step touches all of it), so the EP baseline keeps its whole
    // slice resident by construction.
    store::StoreConfig store_cfg;
    store_cfg.budget = 0;  // unbounded, bypasses the env resolution
    store_ = store::make_expert_store(
        store_cfg, [this](const ExpertKey& key) {
          Rng rng(nn::expert_seed(cfg_.seed, key.layer, key.expert));
          store::ExpertSlot slot;
          slot.expert = std::make_unique<nn::SwiGLUExpert>(
              "layer" + std::to_string(key.layer) + ".expert" +
                  std::to_string(key.expert),
              cfg_.model.model_dim, cfg_.model.hidden_dim, cfg_.model.lora,
              rng);
          if (codec_.is_int8()) {
            slot.expert->enable_q8_compute(codec_.block);
          }
          if (cfg_.model.lora.enabled) {
            slot.optimizer = std::make_unique<nn::AdamW>(
                slot.expert->trainable_parameters(), cfg_.adamw);
          }
          return slot;
        });
    for (std::size_t l = 0; l < num_layers; ++l) {
      for (std::size_t e = shard; e < num_experts; e += num_shards) {
        const ExpertKey key{static_cast<std::uint32_t>(l),
                            static_cast<std::uint32_t>(e)};
        store_->emplace(key);
        aux_[key].trainable = store_->pin(key).expert->trainable_parameters();
        store_->unpin(key);
      }
    }
  }

  void start() { thread_ = std::thread([this] { run(); }); }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  // EP-only sidecar state the ExpertStore does not model, keyed parallel to
  // the store's experts.
  struct Aux {
    // Cached trainable-parameter handles, in registration order — the
    // staging slots below are parallel arrays over this list. Stable for
    // the server's lifetime because the InMemoryStore never evicts.
    std::vector<nn::Parameter> trainable;
    // Per-source-shard gradient deltas staged during the step and folded
    // into the parameter grads in ascending source order at
    // kOptimizerStep time. Backward requests from different shards race
    // into the server inbox; accumulating them in arrival order made the
    // summed gradient (and therefore the whole trajectory) depend on
    // thread scheduling. Staging by source restores bit-determinism.
    std::map<std::uint32_t, std::vector<Tensor>> staged;
  };
  struct Pending {
    ag::Variable input;
    ag::Variable output;
  };

  void run() {
    const std::string tag = "ep-server/" + std::to_string(shard_);
    try {
      while (true) {
        auto maybe = inbox_->receive();
        if (!maybe.has_value()) return;
        // Drain the backlog: runs of same-type compute requests across all
        // peers become parallel tasks on the shared pool. Per-(server,
        // source) reply FIFO order is preserved because replies always go
        // out on this thread in arrival order.
        std::vector<comm::Message> batch;
        batch.push_back(std::move(*maybe));
        while (auto more = inbox_->try_receive()) {
          batch.push_back(std::move(*more));
        }
        std::size_t i = 0;
        while (i < batch.size()) {
          const comm::MessageType type = batch[i].type;
          if (type == comm::MessageType::kShutdown) return;
          if (type == comm::MessageType::kExpertForward ||
              type == comm::MessageType::kExpertBackward) {
            std::size_t j = i;
            while (j < batch.size() && batch[j].type == type) ++j;
            if (type == comm::MessageType::kExpertForward) {
              handle_forward_run(batch, i, j);
            } else {
              handle_backward_run(batch, i, j);
            }
            i = j;
            continue;
          }
          handle(std::move(batch[i]));
          ++i;
        }
      }
    } catch (const CheckError& err) {
      VELA_LOG_ERROR(tag) << "server terminating on protocol error: "
                          << err.what();
      for (auto* ch : reply_) ch->close();
    }
  }

  // Computes batch[b, e) — all kExpertForward — as parallel tasks. Forwards
  // only read expert weights and each task owns its request payload and
  // output slot, so concurrent requests (even for the same expert) are safe.
  void handle_forward_run(std::vector<comm::Message>& batch, std::size_t b,
                          std::size_t e) {
    const std::size_t count = e - b;
    // Serial semantics on an unowned expert: every request before it still
    // replies; truncate, compute the prefix, then raise for the offender.
    std::size_t valid = count;
    for (std::size_t k = 0; k < count; ++k) {
      if (!store_->contains({batch[b + k].layer, batch[b + k].expert})) {
        valid = k;
        break;
      }
    }
    struct Slot {
      ag::Variable x;
      ag::Variable y;
      comm::Message reply;
    };
    std::vector<Slot> slots(valid);
    // Resolve expert handles on the server thread (store bookkeeping is not
    // thread-safe); the parallel tasks below touch only the raw pointers.
    std::vector<nn::SwiGLUExpert*> experts(valid);
    for (std::size_t k = 0; k < valid; ++k) {
      const ExpertKey key{batch[b + k].layer, batch[b + k].expert};
      experts[k] = store_->pin(key).expert.get();
      store_->unpin(key);  // InMemoryStore: never evicts, pointer stays valid
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(valid);
    for (std::size_t k = 0; k < valid; ++k) {
      tasks.push_back([this, &batch, &slots, &experts, b, k] {
        comm::Message& msg = batch[b + k];
        Slot& s = slots[k];
        nn::SwiGLUExpert& expert = *experts[k];
        s.x = ag::Variable::leaf(std::move(msg.payload),
                                 /*requires_grad=*/true);
        s.y = expert.forward(s.x);
        comm::Message reply;
        reply.type = comm::MessageType::kExpertForwardResult;
        reply.request_id = msg.request_id;
        reply.source = static_cast<std::uint32_t>(shard_);
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        reply.payload = codec_.apply(s.y.value());
        codec_.stamp(reply);
        s.reply = std::move(reply);
      });
    }
    util::ThreadPool::global().run(tasks);
    for (std::size_t k = 0; k < valid; ++k) {
      pending_.emplace(batch[b + k].request_id, Pending{slots[k].x, slots[k].y});
      VELA_CHECK(reply_[batch[b + k].source]->send(std::move(slots[k].reply)));
    }
    if (valid < count) {
      VELA_CHECK_MSG(false, "shard " << shard_ << " does not own expert "
                                     << core::to_string(ExpertKey{
                                            batch[b + valid].layer,
                                            batch[b + valid].expert}));
    }
  }

  // Moves the parameter-gradient delta the last backward_from produced into
  // the expert's per-source staging slot and re-zeroes the shared buffers.
  // The cross-source summation order is thereby fixed at fold time
  // (ascending source id, see kOptimizerStep) instead of inheriting the
  // nondeterministic message arrival order.
  static void stage_grads(Aux& aux, std::uint32_t source) {
    auto& slot = aux.staged[source];
    const bool fresh = slot.empty();
    if (fresh) slot.reserve(aux.trainable.size());
    for (std::size_t i = 0; i < aux.trainable.size(); ++i) {
      ag::Variable& p = aux.trainable[i].var;
      if (fresh) {
        slot.push_back(p.has_grad() ? p.grad()
                                    : Tensor::zeros(p.value().shape()));
      } else if (p.has_grad()) {
        Tensor& acc = slot[i];
        const Tensor& g = p.grad();
        for (std::size_t j = 0; j < acc.size(); ++j) {
          acc.data()[j] += g.data()[j];
        }
      }
      p.zero_grad();
    }
  }

  // Computes batch[b, e) — all kExpertBackward. Backwards for the same
  // expert share LoRA gradient buffers and a staging slot, so they stay
  // sequential within one task; distinct experts touch disjoint parameter
  // nodes and run in parallel.
  void handle_backward_run(std::vector<comm::Message>& batch, std::size_t b,
                           std::size_t e) {
    const std::size_t count = e - b;
    std::size_t valid = count;
    for (std::size_t k = 0; k < count; ++k) {
      if (pending_.count(batch[b + k].request_id) == 0) {
        valid = k;
        break;
      }
    }
    struct Slot {
      Pending req;
      comm::Message reply;
    };
    std::vector<Slot> slots(valid);
    std::map<ExpertKey, std::vector<std::size_t>> groups;
    for (std::size_t k = 0; k < valid; ++k) {
      auto it = pending_.find(batch[b + k].request_id);
      slots[k].req = std::move(it->second);
      pending_.erase(it);
      groups[{batch[b + k].layer, batch[b + k].expert}].push_back(k);
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(groups.size());
    for (auto& [key, indices] : groups) {
      Aux& aux = aux_.at(key);
      tasks.push_back([this, &batch, &slots, &aux, b,
                       &indices = indices] {
        for (const std::size_t k : indices) {
          comm::Message& msg = batch[b + k];
          Slot& s = slots[k];
          ag::backward_from(s.req.output, msg.payload);
          stage_grads(aux, msg.source);
          comm::Message reply;
          reply.type = comm::MessageType::kExpertBackwardResult;
          reply.request_id = msg.request_id;
          reply.source = static_cast<std::uint32_t>(shard_);
          reply.layer = msg.layer;
          reply.expert = msg.expert;
          reply.payload = codec_.apply(s.req.input.grad());
          codec_.stamp(reply);
          s.reply = std::move(reply);
        }
      });
    }
    util::ThreadPool::global().run(tasks);
    for (std::size_t k = 0; k < valid; ++k) {
      VELA_CHECK(reply_[batch[b + k].source]->send(std::move(slots[k].reply)));
    }
    VELA_CHECK_MSG(valid == count, "EP backward for unknown request "
                                       << batch[b + valid].request_id);
  }

  void handle(comm::Message msg) {
    // The EP baseline speaks a two-message subset of the protocol: compute
    // requests are drained batch-wise by run_forward_batch/
    // run_backward_batch before handle() sees them, leaving only the step
    // boundary here; every locality-placement message type is meaningless
    // under expert parallelism and lands on the default: abort.
    // vela-analyze: allow(partial-dispatch)
    switch (msg.type) {
      case comm::MessageType::kOptimizerStep: {
        // Forward-only passes (evaluation) leave tapes without a backward;
        // the step boundary retires them.
        pending_.clear();
        // Disjoint per-expert AdamW states step as parallel tasks, in fixed
        // expert-id order (store keys() is ascending). Handles resolve on
        // the server thread; the tasks only touch their own expert's state.
        std::vector<std::function<void()>> tasks;
        for (const ExpertKey& key : store_->keys()) {
          nn::AdamW* opt = store_->pin(key).optimizer.get();
          store_->unpin(key);
          if (opt == nullptr) continue;
          tasks.push_back([opt, &aux = aux_.at(key)] {
            // Fold the staged per-source gradient deltas in ascending
            // source order (staged is a std::map) — the summed gradient
            // is now independent of backward-request arrival order.
            for (std::size_t i = 0; i < aux.trainable.size(); ++i) {
              Tensor total;
              for (auto& [source, grads] : aux.staged) {
                if (total.size() == 0) {
                  total = grads[i];
                } else {
                  for (std::size_t j = 0; j < total.size(); ++j) {
                    total.data()[j] += grads[i].data()[j];
                  }
                }
              }
              if (total.size() > 0) {
                aux.trainable[i].var.set_grad(std::move(total));
              }
            }
            aux.staged.clear();
            opt->step();
            opt->zero_grad();
          });
        }
        util::ThreadPool::global().run(tasks);
        comm::Message reply;
        reply.type = comm::MessageType::kOptimizerStepDone;
        reply.request_id = msg.request_id;
        reply.source = static_cast<std::uint32_t>(shard_);
        VELA_CHECK(reply_[msg.source]->send(std::move(reply)));
        break;
      }
      default:
        VELA_CHECK_MSG(false,
                       "EP server received unexpected " << msg.to_string());
    }
  }

  std::size_t shard_;
  const EpRuntimeConfig& cfg_;
  // Compute-reply codec; resolved identically on every shard.
  comm::WireCodec codec_;
  comm::Endpoint* inbox_;
  std::vector<comm::Endpoint*> reply_;  // [source shard]
  std::unique_ptr<store::ExpertStore> store_;
  std::map<ExpertKey, Aux> aux_;  // EP sidecar state, parallel to store_
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Peer backend: a shard's MoE dispatch — all-to-all to the owning servers.
// ---------------------------------------------------------------------------
class PeerBackend : public moe::ExpertBackend {
 public:
  PeerBackend(std::size_t shard, std::size_t num_shards,
              std::size_t num_layers, comm::WireCodec codec,
              const cluster::ClusterTopology* topology,
              comm::TrafficMeter* meter,
              std::vector<comm::Endpoint*> to_server,
              std::vector<comm::Endpoint*> from_server)
      : shard_(shard),
        num_shards_(num_shards),
        num_layers_(num_layers),
        codec_(codec),
        topology_(topology),
        meter_(meter),
        to_server_(std::move(to_server)),
        from_server_(std::move(from_server)),
        ledger_(num_layers, num_shards, num_shards),
        next_request_((static_cast<std::uint64_t>(shard) << 48) + 1) {}

  // This shard's contribution to the step's per-phase all-to-all ledger
  // (requests it sends, replies it receives) — phases are forward blocks
  // 0..L−1 then backward L−1..0, the shared PhaseLedger convention. Each
  // shard writes only its own ledger; the runtime merges them after joining
  // the shard threads, so no cell is ever written concurrently.
  comm::EpStepRecord take_record() { return ledger_.take_ep(); }

  ag::Variable expert_forward(std::size_t layer, std::size_t expert,
                              const ag::Variable& xs) override {
    return experts_forward(layer, {{expert, xs}})[0];
  }

  std::vector<ag::Variable> experts_forward(
      std::size_t layer,
      const std::vector<std::pair<std::size_t, ag::Variable>>& groups)
      override {
    struct Outstanding {
      std::size_t owner;
      std::uint64_t request_id;
      std::uint32_t expert;
    };
    std::vector<Outstanding> outstanding;
    outstanding.reserve(groups.size());
    // Dispatch phase of the all-to-all: send every group first.
    for (const auto& [expert, xs] : groups) {
      const std::size_t owner = expert % num_shards_;
      comm::Message msg;
      msg.type = comm::MessageType::kExpertForward;
      msg.request_id = next_request_++;
      msg.source = static_cast<std::uint32_t>(shard_);
      msg.layer = static_cast<std::uint32_t>(layer);
      msg.expert = static_cast<std::uint32_t>(expert);
      msg.payload = codec_.apply(xs.value());
      codec_.stamp(msg);
      record(owner, msg.wire_size());
      account(layer, /*backward=*/false, shard_, owner, msg.wire_size());
      outstanding.push_back(
          {owner, msg.request_id, static_cast<std::uint32_t>(expert)});
      VELA_CHECK(to_server_[owner]->send(std::move(msg)));
    }
    // Gather phase: collect in send order (FIFO per server per source).
    std::vector<ag::Variable> results;
    results.reserve(groups.size());
    for (std::size_t i = 0; i < outstanding.size(); ++i) {
      const Outstanding& o = outstanding[i];
      comm::Message reply = await(o.owner, o.request_id,
                                  comm::MessageType::kExpertForwardResult);
      account(layer, /*backward=*/false, o.owner, shard_, reply.wire_size());
      const std::size_t owner = o.owner;
      const std::uint64_t request_id = o.request_id;
      const std::uint32_t layer32 = static_cast<std::uint32_t>(layer);
      const std::uint32_t expert32 = o.expert;
      results.push_back(ag::make_op(
          std::move(reply.payload), {groups[i].second},
          [this, owner, request_id, layer32, expert32](ag::detail::Node& n) {
            comm::Message grad_msg;
            grad_msg.type = comm::MessageType::kExpertBackward;
            grad_msg.request_id = request_id;
            grad_msg.source = static_cast<std::uint32_t>(shard_);
            grad_msg.layer = layer32;
            grad_msg.expert = expert32;
            grad_msg.payload = codec_.apply(n.grad);
            codec_.stamp(grad_msg);
            record(owner, grad_msg.wire_size());
            account(layer32, /*backward=*/true, shard_, owner,
                    grad_msg.wire_size());
            VELA_CHECK(to_server_[owner]->send(std::move(grad_msg)));
            comm::Message dx = await(
                owner, request_id, comm::MessageType::kExpertBackwardResult);
            account(layer32, /*backward=*/true, owner, shard_, dx.wire_size());
            n.parents[0]->accumulate_grad(dx.payload);
          }));
    }
    return results;
  }

 private:
  void record(std::size_t owner, std::uint64_t bytes) {
    // Server inboxes are shared across sources, so requests are attributed
    // here; replies are metered by the per-pair reply channels themselves.
    meter_->record(topology_->node_of(shard_), topology_->node_of(owner),
                   bytes);
  }

  void account(std::size_t layer, bool backward, std::size_t src,
               std::size_t dst, std::uint64_t bytes) {
    ledger_.charge(layer, backward, src, dst, bytes, 1);
  }

  comm::Message await(std::size_t owner, std::uint64_t request_id,
                      comm::MessageType expected) {
    auto maybe = from_server_[owner]->receive();
    VELA_CHECK_MSG(maybe.has_value(), "EP server " << owner
                                                   << " channel closed");
    VELA_CHECK_MSG(maybe->type == expected && maybe->request_id == request_id,
                   "EP protocol violation: expected "
                       << message_type_name(expected) << "/" << request_id
                       << ", got " << maybe->to_string());
    return std::move(*maybe);
  }

  std::size_t shard_, num_shards_, num_layers_;
  // Dispatch-payload codec (comm/wire_codec.h) — all-to-all requests and
  // the backward gradient exchange; the backbone ring all-reduce keeps the
  // legacy raw-fp32 accounting below.
  comm::WireCodec codec_;
  const cluster::ClusterTopology* topology_;
  comm::TrafficMeter* meter_;
  std::vector<comm::Endpoint*> to_server_;
  std::vector<comm::Endpoint*> from_server_;
  comm::PhaseLedger ledger_;
  std::uint64_t next_request_;
};

// ---------------------------------------------------------------------------
// Ring all-reduce (sum) over byte-counted channels.
// ---------------------------------------------------------------------------
struct ChunkSpan {
  std::size_t begin;
  std::size_t size;
};

ChunkSpan chunk_span(std::size_t total, std::size_t chunks, std::size_t k) {
  const std::size_t begin = k * total / chunks;
  const std::size_t end = (k + 1) * total / chunks;
  return {begin, end - begin};
}

void ring_allreduce(std::size_t shard, std::size_t n, Tensor& data,
                    comm::Endpoint* tx, comm::Endpoint* rx,
                    unsigned wire_bits) {
  if (n <= 1) return;
  const auto send_chunk = [&](std::size_t k) {
    const ChunkSpan span = chunk_span(data.size(), n, k);
    comm::Message msg;
    msg.type = comm::MessageType::kAllReduceChunk;
    msg.request_id = k;
    msg.source = static_cast<std::uint32_t>(shard);
    msg.payload = Tensor(
        {std::max<std::size_t>(span.size, 1)},
        std::vector<float>(data.data() + span.begin,
                           data.data() + span.begin + span.size +
                               (span.size == 0 ? 1 : 0)));
    msg.wire_bits = wire_bits;
    VELA_CHECK(tx->send(std::move(msg)));
  };
  const auto recv_chunk = [&](std::size_t k, bool add) {
    auto maybe = rx->receive();
    VELA_CHECK_MSG(maybe.has_value(), "all-reduce ring broken");
    VELA_CHECK(maybe->type == comm::MessageType::kAllReduceChunk &&
               maybe->request_id == k);
    const ChunkSpan span = chunk_span(data.size(), n, k);
    for (std::size_t i = 0; i < span.size; ++i) {
      if (add) {
        data[span.begin + i] += maybe->payload[i];
      } else {
        data[span.begin + i] = maybe->payload[i];
      }
    }
  };
  // Reduce-scatter: after N−1 rounds shard d owns the fully reduced chunk
  // (d+1) mod N.
  for (std::size_t r = 0; r + 1 < n; ++r) {
    const std::size_t send_k = (shard + n - r) % n;
    const std::size_t recv_k = (shard + 2 * n - r - 1) % n;
    send_chunk(send_k);
    recv_chunk(recv_k, /*add=*/true);
  }
  // All-gather.
  for (std::size_t r = 0; r + 1 < n; ++r) {
    const std::size_t send_k = (shard + 1 + n - r) % n;
    const std::size_t recv_k = (shard + n - r) % n;
    send_chunk(send_k);
    recv_chunk(recv_k, /*add=*/false);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// EpRuntime
// ---------------------------------------------------------------------------
struct EpRuntime::Impl {
  EpRuntimeConfig cfg;
  cluster::ClusterTopology topology;
  comm::TrafficMeter meter;
  comm::CommClock clock;
  std::size_t n;
  // Bytes of the flat backbone-gradient buffer one device all-reduces
  // (identical on every shard; shard 0 records it). Joined before read.
  std::uint64_t allreduce_bytes = 0;

  std::vector<std::unique_ptr<comm::Endpoint>> inbox;            // [server]
  std::vector<std::vector<std::unique_ptr<comm::Endpoint>>> reply;  // [srv][src]
  std::vector<std::unique_ptr<comm::Endpoint>> ring;             // [d] d→d+1
  std::vector<std::unique_ptr<ExpertServer>> servers;
  std::vector<std::unique_ptr<PeerBackend>> backends;
  std::vector<std::unique_ptr<model::MoETransformer>> replicas;
  std::vector<std::unique_ptr<nn::AdamW>> optimizers;
  std::size_t step = 0;

  Impl(const EpRuntimeConfig& config,
       const data::SyntheticCorpus* plant_corpus,
       const model::PlantingConfig& planting)
      : cfg(config), topology(config.cluster), meter(&topology),
        clock(&topology, config.clock), n(topology.num_devices()) {
    // Endpoints, all on the configured transport backend. Server inboxes
    // carry mixed sources (metered at the sender); replies and ring edges
    // have fixed endpoints and meter themselves.
    const comm::TransportKind transport = comm::resolve_transport(cfg.transport);
    for (std::size_t d = 0; d < n; ++d) {
      inbox.push_back(comm::make_endpoint(transport, 0, 0, nullptr));
    }
    reply.resize(n);
    for (std::size_t d = 0; d < n; ++d) {
      for (std::size_t s = 0; s < n; ++s) {
        reply[d].push_back(comm::make_endpoint(
            transport, topology.node_of(d), topology.node_of(s), &meter));
      }
    }
    for (std::size_t d = 0; d < n; ++d) {
      ring.push_back(comm::make_endpoint(
          transport, topology.node_of(d), topology.node_of((d + 1) % n),
          &meter));
    }

    // Servers + replicas.
    for (std::size_t d = 0; d < n; ++d) {
      std::vector<comm::Endpoint*> reply_ptrs;
      for (auto& ch : reply[d]) reply_ptrs.push_back(ch.get());
      servers.push_back(std::make_unique<ExpertServer>(
          d, cfg, cfg.model.num_layers, cfg.model.num_experts, n,
          inbox[d].get(), std::move(reply_ptrs)));
      servers.back()->start();
    }
    for (std::size_t d = 0; d < n; ++d) {
      std::vector<comm::Endpoint*> to_server, from_server;
      for (std::size_t o = 0; o < n; ++o) {
        to_server.push_back(inbox[o].get());
        from_server.push_back(reply[o][d].get());
      }
      backends.push_back(std::make_unique<PeerBackend>(
          d, n, cfg.model.num_layers,
          comm::WireCodec::resolve(cfg.wire_dtype, cfg.wire_bits,
                                   /*legacy_quantize=*/false, cfg.q8_block),
          &topology, &meter, std::move(to_server), std::move(from_server)));
      Rng rng(cfg.seed);
      replicas.push_back(std::make_unique<model::MoETransformer>(
          cfg.model, backends.back().get(), rng));
      if (plant_corpus != nullptr) {
        model::plant_locality(*replicas.back(), *plant_corpus, planting);
      }
      optimizers.push_back(std::make_unique<nn::AdamW>(
          replicas.back()->trainable_parameters(), cfg.adamw));
    }
    meter.discard_current();
  }

  ~Impl() {
    for (std::size_t d = 0; d < n; ++d) {
      comm::Message bye;
      bye.type = comm::MessageType::kShutdown;
      inbox[d]->send(std::move(bye));
    }
    for (auto& server : servers) server->join();
    for (auto& ch : inbox) ch->close();
  }

  // Sorted trainable params of a replica (same order on every shard).
  static std::vector<nn::Parameter> sorted_params(
      model::MoETransformer& replica) {
    auto params = replica.trainable_parameters();
    std::sort(params.begin(), params.end(),
              [](const nn::Parameter& a, const nn::Parameter& b) {
                return a.name < b.name;
              });
    return params;
  }

  void shard_step(std::size_t d,
                  const std::vector<std::vector<std::size_t>>& my_batch,
                  float* loss_out) {
    ag::Variable loss = replicas[d]->loss_batch(my_batch);
    *loss_out = loss.value()[0];
    // Backprop 1/N·loss so expert gradients (accumulated across shards on
    // the owning servers) and all-reduce-SUMMED backbone gradients both
    // equal the gradient of the global mean loss.
    ag::backward(ag::scale(loss, 1.0f / static_cast<float>(n)));

    auto params = sorted_params(*replicas[d]);
    std::size_t total = 0;
    for (const auto& p : params) total += p.var.value().size();
    Tensor flat({total});
    if (d == 0) {
      allreduce_bytes =
          static_cast<std::uint64_t>(total) * (cfg.wire_bits / 8);
    }
    std::size_t offset = 0;
    for (const auto& p : params) {
      if (p.var.has_grad()) {
        std::memcpy(flat.data() + offset, p.var.grad().data(),
                    p.var.value().size() * sizeof(float));
      }
      offset += p.var.value().size();
    }
    ring_allreduce(d, n, flat, ring[d].get(), ring[(d + n - 1) % n].get(),
                   cfg.wire_bits);
    offset = 0;
    for (auto& p : params) {
      const std::size_t size = p.var.value().size();
      Tensor g(p.var.value().shape());
      std::memcpy(g.data(), flat.data() + offset, size * sizeof(float));
      p.var.set_grad(std::move(g));
      offset += size;
    }
    optimizers[d]->step();
    optimizers[d]->zero_grad();
  }
};

EpRuntime::EpRuntime(const EpRuntimeConfig& cfg,
                     const data::SyntheticCorpus* plant_corpus,
                     const model::PlantingConfig& planting)
    : impl_(std::make_unique<Impl>(cfg, plant_corpus, planting)) {}

EpRuntime::~EpRuntime() = default;

EpStepReport EpRuntime::train_step(
    const std::vector<std::vector<std::size_t>>& batch) {
  Impl& im = *impl_;
  VELA_CHECK_MSG(batch.size() % im.n == 0,
                 "EP batch size must be divisible by the shard count");
  for (const auto& seq : batch) {
    VELA_CHECK_MSG(seq.size() == batch[0].size(),
                   "EP loss averaging requires equal sequence lengths");
  }
  // Round-robin sharding of the input batch.
  std::vector<std::vector<std::vector<std::size_t>>> shards(im.n);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    shards[i % im.n].push_back(batch[i]);
  }

  std::vector<float> losses(im.n, 0.0f);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(im.n);
  threads.reserve(im.n);
  for (std::size_t d = 0; d < im.n; ++d) {
    threads.emplace_back([&, d] {
      try {
        im.shard_step(d, shards[d], &losses[d]);
      } catch (...) {
        errors[d] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  // Expert optimizer steps (one ack per server, routed to source 0).
  for (std::size_t d = 0; d < im.n; ++d) {
    comm::Message msg;
    msg.type = comm::MessageType::kOptimizerStep;
    msg.request_id = 0;
    msg.source = 0;
    VELA_CHECK(im.inbox[d]->send(std::move(msg)));
  }
  for (std::size_t d = 0; d < im.n; ++d) {
    auto ack = im.reply[d][0]->receive();
    VELA_CHECK(ack.has_value() &&
               ack->type == comm::MessageType::kOptimizerStepDone);
  }

  im.meter.end_step();
  // Shard threads are joined and acks drained: the transport is quiescent,
  // so the audit ledger must balance at this boundary.
  audit::ConservationLedger::instance().check("ep_step");
  EpStepReport report;
  report.step = im.step++;
  float total = 0.0f;
  for (float l : losses) total += l;
  report.loss = total / static_cast<float>(im.n);
  report.external_mb_per_node =
      im.meter.step_external_mb_per_node(im.meter.num_steps() - 1);

  // Modeled Fig. 6 times: merge the shards' per-phase all-to-all ledgers
  // (threads are joined, so the per-backend records are quiescent) and let
  // the analytic clock convert bytes to seconds. Profiling passes leave the
  // measured byte story untouched — the record is rebuilt every step.
  comm::EpStepRecord record;
  record.phases.assign(
      2 * im.cfg.model.num_layers,
      comm::AllToAllPhase{std::vector<std::vector<std::uint64_t>>(
          im.n, std::vector<std::uint64_t>(im.n, 0))});
  for (auto& backend : im.backends) {
    const comm::EpStepRecord shard_record = backend->take_record();
    for (std::size_t p = 0; p < record.phases.size(); ++p) {
      for (std::size_t i = 0; i < im.n; ++i) {
        for (std::size_t j = 0; j < im.n; ++j) {
          record.phases[p].bytes[i][j] += shard_record.phases[p].bytes[i][j];
        }
      }
    }
  }
  record.allreduce_bytes_per_device = im.allreduce_bytes;
  report.comm_seconds = im.clock.ep_comm_seconds(record);
  report.step_seconds = im.clock.ep_step_seconds(record);
  return report;
}

model::MoETransformer& EpRuntime::replica() { return *impl_->replicas[0]; }

std::size_t EpRuntime::num_shards() const { return impl_->n; }

const comm::TrafficMeter& EpRuntime::meter() const { return impl_->meter; }

const cluster::ClusterTopology& EpRuntime::topology() const {
  return impl_->topology;
}

}  // namespace vela::ep
