#include "core/vela_system.h"

#include <algorithm>
#include <optional>

#include "core/checkpoint.h"
#include "placement/degrade.h"
#include "util/audit.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace vela::core {

placement::Placement initial_placement(std::size_t num_layers,
                                       std::size_t num_experts,
                                       std::size_t num_workers) {
  placement::Placement p(num_layers, num_experts);
  for (std::size_t l = 0; l < num_layers; ++l) {
    for (std::size_t e = 0; e < num_experts; ++e) {
      p.assign(l, e, e % num_workers);
    }
  }
  return p;
}

WorkerSpec make_worker_spec(const VelaSystemConfig& cfg, std::size_t worker_id,
                            std::size_t node) {
  WorkerSpec spec;
  spec.worker_id = worker_id;
  spec.node = node;
  spec.model_dim = cfg.model.model_dim;
  spec.hidden_dim = cfg.model.hidden_dim;
  spec.lora = cfg.model.lora;
  spec.adamw = cfg.adamw;
  spec.base_seed = cfg.seed;
  spec.wire_bits = cfg.wire_bits;
  spec.quantize_wire = cfg.quantize_wire;
  spec.wire_dtype = cfg.wire_dtype;
  spec.q8_block = cfg.q8_block;
  spec.expert_budget = cfg.expert_budget;
  spec.store_dir = cfg.store_dir;
  spec.store_dtype = cfg.store_dtype;
  return spec;
}

VelaSystem::VelaSystem(const VelaSystemConfig& cfg,
                       const data::SyntheticCorpus* plant_corpus,
                       const model::PlantingConfig& planting)
    : cfg_(cfg) {
  // Warm the shared compute pool before any worker thread races to build it,
  // and surface the lane count once per system (VELA_THREADS overrides the
  // hardware default; results are bit-identical at any size).
  VELA_LOG_INFO("vela") << "thread pool: "
                        << util::ThreadPool::global().size() << " lane(s)";
  cluster::ClusterTopology topology(cfg.cluster);
  master_ = std::make_unique<MasterProcess>(
      topology, make_worker_spec(cfg, 0, 0),
      initial_placement(cfg.model.num_layers, cfg.model.num_experts,
                        topology.num_workers()),
      cfg.model.num_layers, cfg.model.num_experts, cfg.transport);
  init(plant_corpus, planting);
}

VelaSystem::VelaSystem(const VelaSystemConfig& cfg,
                       std::unique_ptr<MasterProcess> master,
                       const data::SyntheticCorpus* plant_corpus,
                       const model::PlantingConfig& planting)
    : cfg_(cfg), master_(std::move(master)) {
  VELA_CHECK_MSG(master_ != nullptr,
                 "pre-built-fleet VelaSystem needs a MasterProcess");
  VELA_CHECK_MSG(master_->placement().num_layers() == cfg.model.num_layers &&
                     master_->placement().num_experts() ==
                         cfg.model.num_experts,
                 "pre-built fleet hosts a different expert grid than "
                 "cfg.model describes");
  init(plant_corpus, planting);
}

void VelaSystem::init(const data::SyntheticCorpus* plant_corpus,
                      const model::PlantingConfig& planting) {
  const VelaSystemConfig& cfg = cfg_;
  Rng model_rng(cfg.seed);
  model_ = std::make_unique<model::MoETransformer>(
      cfg.model, &master_->broker(), model_rng, /*trainable_gate=*/false);
  if (plant_corpus != nullptr) {
    model::plant_locality(*model_, *plant_corpus, planting);
  }
  backbone_optimizer_ =
      std::make_unique<nn::AdamW>(model_->trainable_parameters(), cfg.adamw);
  clock_ = std::make_unique<comm::CommClock>(&master_->topology(), cfg.clock);

  // Dispatch pipeline depth: config wins, env (VELA_OVERLAP) is the default.
  overlap_chunks_ = cfg.overlap_chunks >= 0
                        ? std::min<std::size_t>(
                              static_cast<std::size_t>(cfg.overlap_chunks), 255)
                        : overlap_chunks_from_env();
  master_->set_overlap_chunks(overlap_chunks_);
  if (overlap_chunks_ >= 2) {
    VELA_LOG_INFO("vela") << "overlap dispatch pipeline: K=" << overlap_chunks_;
  }
}

const moe::RoutingStats& VelaSystem::profile(
    const std::vector<std::vector<std::size_t>>& dataset,
    std::size_t batch_size) {
  profiled_ = profile_expert_access(*model_, dataset, batch_size);
  // Profiling is not a fine-tuning step; retire its traffic and tapes.
  master_->meter().discard_current();
  master_->broker().finish_step();
  master_->broadcast_optimizer_step(0);  // workers drop forward-only tapes
  return *profiled_;
}

const placement::Placement& VelaSystem::optimize_placement(
    double tokens_per_step) {
  VELA_CHECK_MSG(profiled_.has_value(),
                 "optimize_placement() requires a profile() pass first");
  tokens_per_step_ = tokens_per_step;
  const placement::PlacementProblem problem = build_placement_problem(
      profiled_->probability_matrix(), cfg_.model, master_->topology(),
      tokens_per_step, cfg_.capacity_slack);
  placement::LocalityAwarePlacement strategy;
  const placement::Placement optimized = strategy.place(problem);
  placement_report_ = strategy.report();
  master_->apply_placement(optimized);
  // The same locality scores that drove the placement LP prime the expert
  // stores' eviction order (DESIGN.md §15): a hot expert outlives a cold one
  // in the resident pool. No-op (and no bytes) on an unbounded fleet.
  master_->set_store_priorities(profiled_->probability_matrix());
  master_->meter().discard_current();  // migration traffic is one-off setup
  return master_->placement();
}

void VelaSystem::set_placement(const placement::Placement& placement) {
  master_->apply_placement(placement);
  master_->meter().discard_current();
}

StepReport VelaSystem::train_step(
    const std::vector<std::vector<std::size_t>>& batch) {
  return train_step_accumulated({batch});
}

StepReport VelaSystem::train_step_accumulated(
    const std::vector<std::vector<std::vector<std::size_t>>>& micro_batches) {
  VELA_CHECK(!micro_batches.empty());
  comm::FaultInjector* injector = master_->fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->faults_injected() : 0;
  const std::size_t recovered_before = master_->workers_recovered();
  const std::uint64_t recovery_bytes_before = master_->recovery_bytes();
  const std::size_t live_before = master_->num_live_workers();
  std::size_t retries = 0;

  // Liveness pass (DESIGN.md §11): probe workers whose heartbeat interval
  // elapsed since they were last heard from. A worker that died while idle
  // is caught HERE — before the step routes tokens to it — and respawned or
  // degraded away, instead of surfacing as a mid-sweep timeout below.
  if (ft_enabled_) degrade_after(master_->heartbeat_tick());

  master_->broker().begin_step();

  float scheduled_lr = -1.0f;
  if (lr_schedule_ != nullptr) {
    scheduled_lr = lr_schedule_->lr(step_);
    backbone_optimizer_->set_learning_rate(scheduled_lr);
  }

  // Gradients accumulate across micro-batches — in the master's tape for
  // the backbone, in the workers' local tapes for the experts — before one
  // optimizer step. Each micro-batch is scaled so the update equals the
  // mean-gradient update over the combined batch.
  //
  // Graceful degradation: a worker failure anywhere in the forward/backward
  // sweep aborts the attempt (no optimizer has stepped yet), recovers the
  // fleet, and re-runs the whole sweep. With a current snapshot the retry
  // starts from exactly the pre-step state, so it is bit-identical to a
  // fault-free step. Traffic of the failed attempt stays charged to this
  // step — those bytes really crossed the network.
  const float inv_m = 1.0f / static_cast<float>(micro_batches.size());
  double loss_total = 0.0;
  for (;;) {
    try {
      backbone_optimizer_->zero_grad();
      loss_total = 0.0;
      for (const auto& batch : micro_batches) {
        ag::Variable loss =
            model_->loss_batch(batch, nullptr, cfg_.aux_loss_weight);
        loss_total += loss.value()[0];
        ag::backward(micro_batches.size() == 1 ? loss : ag::scale(loss, inv_m));
      }
      break;
    } catch (const WorkerFailedError& err) {
      if (!ft_enabled_ || static_cast<int>(retries) >= ft_.max_step_retries) {
        throw;
      }
      ++retries;
      VELA_LOG_ERROR("vela") << "step " << step_ << " attempt failed ("
                             << err.what() << "); recovering and retrying";
      degrade_after(master_->recover_step());
    }
  }

  backbone_optimizer_->step();
  try {
    master_->broadcast_optimizer_step(static_cast<std::uint32_t>(step_),
                                      scheduled_lr);
  } catch (const WorkerFailedError& err) {
    // Commit-phase failure: the backbone and the surviving workers have
    // already applied this step's update (the broadcast is idempotent on
    // survivors thanks to reply caching), so the step is NOT re-run. The
    // respawned worker restores the last snapshot and loses at most this
    // one expert update — bounded staleness, like an async straggler.
    if (!ft_enabled_) throw;
    ++retries;
    VELA_LOG_ERROR("vela") << "step " << step_ << " commit-phase failure ("
                           << err.what()
                           << "); respawned worker resumes one update behind";
    degrade_after(master_->recover_step());
  }

  // Dynamic re-placement: migration traffic (if any) is charged to this
  // step — the price of adapting to routing drift.
  if (replanner_ != nullptr) {
    replanner_->observe(model_->last_plans());
    if (auto next = replanner_->maybe_replan(master_->placement())) {
      master_->apply_placement(*next);
    }
  }

  // Periodic recovery snapshot; its traffic is metered into this step.
  if (ft_enabled_ && ft_.snapshot_interval > 0 &&
      (step_ + 1) % ft_.snapshot_interval == 0) {
    try {
      master_->snapshot_experts();
    } catch (const WorkerFailedError& err) {
      // Snapshot-phase failure: the optimizer step is already committed, so
      // nothing re-runs. Recover the fleet (respawn or degrade away the dead
      // worker), then re-take the snapshot from the survivors so the restore
      // point stays current.
      ++retries;
      VELA_LOG_ERROR("vela") << "step " << step_ << " snapshot-phase failure ("
                             << err.what()
                             << "); recovering and re-snapshotting survivors";
      degrade_after(master_->recover_step());
      master_->snapshot_experts();
    }
  }

  const comm::VelaStepRecord record = master_->broker().finish_step();
  master_->meter().end_step();
  // Request/reply traffic is quiescent here, so the audit ledger must
  // balance: every posted byte delivered, dropped, or queued.
  audit::ConservationLedger::instance().check("train_step");

  StepReport report;
  report.step = step_++;
  report.loss = static_cast<float>(loss_total * inv_m);
  report.external_mb_per_node =
      master_->meter().step_external_mb_per_node(master_->meter().num_steps() -
                                                 1);
  report.comm_seconds = clock_->vela_comm_seconds(record);
  report.step_seconds = clock_->vela_step_seconds(record);
  // The measured byte ledger is invariant in the pipeline depth; only the
  // step-time model changes (== step_seconds when the pipeline is off).
  report.overlap_chunks = overlap_chunks_;
  report.overlap_step_seconds =
      clock_->vela_overlap_step_seconds(record, overlap_chunks_);
  report.retries = retries;
  report.workers_recovered = master_->workers_recovered() - recovered_before;
  report.workers_lost = live_before - master_->num_live_workers();
  report.recovery_mb =
      static_cast<double>(master_->recovery_bytes() - recovery_bytes_before) /
      1e6;
  report.paged_mb = static_cast<double>(master_->meter().step_paging_bytes(
                        master_->meter().num_steps() - 1)) /
                    1e6;
  if (injector != nullptr) {
    report.faults_injected = injector->faults_injected() - faults_before;
    // Delay faults are virtual: the injector accrues seconds, the step
    // pays them.
    report.injected_delay_seconds = injector->consume_delay_seconds();
    report.comm_seconds += report.injected_delay_seconds;
    report.step_seconds += report.injected_delay_seconds;
    report.overlap_step_seconds += report.injected_delay_seconds;
  }
  history_.push_back(report);
  return report;
}

void VelaSystem::enable_fault_tolerance(const FaultToleranceConfig& cfg) {
  ft_ = cfg;
  ft_enabled_ = true;
  master_->set_retry_policy(cfg.retry);
  master_->set_respawn_budget(cfg.respawn_budget);
  if (cfg.clock != nullptr) master_->set_clock(cfg.clock);
  if (cfg.liveness.interval.count() > 0) {
    master_->enable_heartbeat(cfg.liveness, cfg.clock);
    VELA_LOG_INFO("vela") << "heartbeat armed: interval="
                          << cfg.liveness.interval.count() << "ms, dead after "
                          << cfg.liveness.dead_after << " miss(es)";
  }
  // Provision the initial restore point; setup traffic, not step traffic.
  master_->snapshot_experts();
  master_->meter().discard_current();
}

void VelaSystem::degrade_after(const RecoveryReport& report) {
  if (report.declared_dead.empty()) return;
  // Re-solve for the survivors with the paper's own cost model when a
  // profile exists (orphans chase locality, like any placement); without
  // one, degrade_placement falls back to least-loaded.
  std::optional<placement::PlacementProblem> problem;
  if (profiled_.has_value()) {
    problem = build_placement_problem(profiled_->probability_matrix(),
                                      cfg_.model, master_->topology(),
                                      tokens_per_step_, cfg_.capacity_slack);
  }
  const placement::Placement next = placement::degrade_placement(
      master_->placement(), master_->dead_mask(),
      problem.has_value() ? &*problem : nullptr);
  master_->degrade_to(next);
}

void VelaSystem::set_lr_schedule(const nn::LrSchedule* schedule) {
  lr_schedule_ = schedule;
}

void VelaSystem::save_checkpoint(const std::string& path) {
  save_system_checkpoint(path, *model_, *master_);
  master_->meter().discard_current();  // checkpoint traffic is not a step
}

void VelaSystem::load_checkpoint(const std::string& path) {
  load_system_checkpoint(path, *model_, *master_);
  master_->meter().discard_current();
}

void VelaSystem::enable_dynamic_replacement(const ReplanConfig& cfg,
                                            double tokens_per_step) {
  tokens_per_step_ = tokens_per_step;
  replanner_ = std::make_unique<Replanner>(cfg, cfg_.model,
                                           &master_->topology(),
                                           tokens_per_step);
}

}  // namespace vela::core
