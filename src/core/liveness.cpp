#include "core/liveness.h"

#include <cstdlib>
#include <string>

#include "util/check.h"

namespace vela::core {

const char* peer_state_name(PeerState s) {
  switch (s) {
    case PeerState::kHealthy:
      return "healthy";
    case PeerState::kSuspect:
      return "suspect";
    case PeerState::kDead:
      return "dead";
  }
  return "?";
}

LivenessConfig liveness_config_from_env() {
  LivenessConfig cfg;
  const char* env = std::getenv("VELA_HEARTBEAT_MS");
  if (env != nullptr && env[0] != '\0') {
    const long ms = std::strtol(env, nullptr, 10);
    VELA_CHECK_MSG(ms >= 0, "VELA_HEARTBEAT_MS must be >= 0, got '" +
                                std::string(env) + "'");
    cfg.interval = std::chrono::milliseconds(ms);
  }
  return cfg;
}

HeartbeatMonitor::HeartbeatMonitor(std::size_t num_peers,
                                   const LivenessConfig& cfg,
                                   util::Clock* clock)
    : cfg_(cfg), clock_(clock != nullptr ? clock : &util::system_clock()) {
  VELA_CHECK(cfg_.suspect_after >= 1 && cfg_.dead_after >= cfg_.suspect_after);
  const util::Clock::time_point now = clock_->now();
  peers_.reserve(num_peers);
  for (std::size_t i = 0; i < num_peers; ++i) peers_.emplace_back(cfg_, now);
}

bool HeartbeatMonitor::due(std::size_t peer) const {
  VELA_CHECK(peer < peers_.size());
  return peers_[peer].probe_due(clock_->now());
}

void HeartbeatMonitor::record_ack(std::size_t peer) {
  VELA_CHECK(peer < peers_.size());
  peers_[peer].on_ack(clock_->now());
}

void HeartbeatMonitor::record_miss(std::size_t peer) {
  VELA_CHECK(peer < peers_.size());
  peers_[peer].on_miss(clock_->now());
}

void HeartbeatMonitor::mark_dead(std::size_t peer) {
  VELA_CHECK(peer < peers_.size());
  peers_[peer].mark_dead();
}

void HeartbeatMonitor::reset_peer(std::size_t peer) {
  VELA_CHECK(peer < peers_.size());
  peers_[peer].reset(clock_->now());
}

PeerState HeartbeatMonitor::state(std::size_t peer) const {
  VELA_CHECK(peer < peers_.size());
  return peers_[peer].state();
}

int HeartbeatMonitor::consecutive_misses(std::size_t peer) const {
  VELA_CHECK(peer < peers_.size());
  return peers_[peer].consecutive_misses();
}

std::size_t HeartbeatMonitor::count(PeerState s) const {
  std::size_t n = 0;
  for (const PeerHealth& p : peers_) {
    if (p.state() == s) ++n;
  }
  return n;
}

}  // namespace vela::core
