// A serializable run description shared by every process of a multi-process
// deployment (DESIGN.md §12).
//
// The cross-mode bit-exactness gate requires the master process and every
// vela_node worker to reconstruct IDENTICAL configuration — model dims,
// seeds, cluster shape, corpus — from nothing but a string handed across an
// exec boundary. Scenario is that string's schema: a flat key=value record
// with presets resolved by name, so the launcher command line stays small
// and the parse is trivially deterministic. Unknown keys are an error (a
// typo must not silently fall back to a default and diverge the run).
#pragma once

#include <cstdint>
#include <string>

#include "cluster/topology.h"
#include "core/vela_system.h"
#include "data/corpus.h"
#include "model/config.h"

namespace vela::core {

struct Scenario {
  // Model preset by name: "tiny_test" | "tiny_mistral".
  std::string model = "tiny_test";
  // Worker count N. The cluster is N+1 nodes x 1 GPU with an exclusive
  // master node, so every master<->worker link is cross-node and the sum of
  // per-link bytes equals the meter's external bytes exactly (the
  // --processes bench emitters assert this row by row).
  std::size_t workers = 6;
  std::uint64_t seed = 21;
  unsigned wire_bits = 16;
  bool quantize_wire = false;
  // Quantized wire tier (DESIGN.md §13). Serialized by NAME, and "default"
  // is serialized too: a remote vela_node must resolve VELA_WIRE_DTYPE from
  // its own (inherited) environment exactly like the master does, so the
  // scenario pins the config-level request, not the resolved codec.
  comm::WireDtype wire_dtype = comm::WireDtype::kDefault;
  unsigned q8_block = 0;  // int8 block length; 0 → VELA_WIRE_BLOCK, then 64
  // Corpus preset by name: "wikitext" | "alpaca" | "shakespeare" | "uniform"
  // (vocab follows the model preset).
  std::string corpus = "wikitext";
  std::uint64_t corpus_seed = 77;
  std::size_t corpus_domains = 6;
  std::size_t dataset_sequences = 6;
  std::size_t sequence_length = 8;
  std::size_t batch_size = 3;
  std::uint64_t batch_seed = 4;
  std::size_t steps = 2;

  model::ModelConfig model_config() const;
  cluster::ClusterConfig cluster_config() const;
  data::CorpusConfig corpus_config() const;
  // transport is pinned to kSocket when `remote`, else kDefault — the
  // in-process halves of the cross-mode gate pass remote=false.
  VelaSystemConfig system_config(bool remote) const;

  // "key=value;key=value;..." — no spaces, exec-argv safe.
  std::string serialize() const;
  // Inverse of serialize(). Fails a VELA_CHECK on unknown keys, malformed
  // pairs or non-numeric values; round-trips exactly.
  static Scenario parse(const std::string& text);
};

}  // namespace vela::core
