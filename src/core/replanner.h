// Dynamic re-placement ("online VELA") — the natural extension of the paper.
//
// Fig. 5(a) shows VELA's traffic creeping up as fine-tuning progresses: the
// placement is computed once from the pre-fine-tuning profile, while the
// routing distribution drifts slowly. The Replanner closes that loop: it
// keeps a sliding window of recent routing decisions, periodically re-solves
// the placement LP against the windowed probability estimate, and proposes a
// migration only when the predicted communication-time improvement clears a
// hysteresis threshold (migration itself costs traffic, so flapping must be
// suppressed).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "cluster/topology.h"
#include "model/config.h"
#include "moe/gate.h"
#include "placement/locality_aware.h"
#include "placement/placement.h"

namespace vela::core {

struct ReplanConfig {
  std::size_t interval = 100;     // steps between re-optimization attempts
  std::size_t window = 50;        // steps of routing history used for P
  // Required relative improvement of expected comm time before migrating.
  double min_improvement = 0.03;
  double capacity_slack = 1.34;
};

class Replanner {
 public:
  Replanner(ReplanConfig cfg, const model::ModelConfig& model,
            const cluster::ClusterTopology* topology, double tokens_per_step);

  // Feeds one step's routing decisions (one plan per MoE block).
  void observe(const std::vector<moe::RoutePlan>& plans);

  // Called once per step after observe(). Returns a new placement when a
  // re-optimization is due AND the windowed estimate predicts at least
  // min_improvement relative comm-time gain over `current`.
  std::optional<placement::Placement> maybe_replan(
      const placement::Placement& current);

  // Windowed selection-frequency estimate (empty window → zeros).
  Tensor windowed_probability() const;

  std::size_t steps_observed() const { return steps_; }
  std::size_t replans_proposed() const { return proposals_; }
  std::size_t replans_evaluated() const { return evaluations_; }

 private:
  placement::PlacementProblem build_problem(const Tensor& probability) const;

  ReplanConfig cfg_;
  model::ModelConfig model_;
  const cluster::ClusterTopology* topology_;
  double tokens_per_step_;
  // Sliding window of per-step per-(layer, expert) token counts.
  std::deque<std::vector<std::vector<std::uint64_t>>> window_counts_;
  std::deque<std::uint64_t> window_tokens_;
  std::size_t steps_ = 0;
  std::size_t proposals_ = 0;
  std::size_t evaluations_ = 0;
};

}  // namespace vela::core
