#include "core/fault_tolerance.h"

#include <algorithm>
#include <vector>

#include "util/audit.h"
#include "util/check.h"
#include "util/logging.h"

namespace vela::core {

namespace {
constexpr std::size_t kRecentCapacity = 1024;
}  // namespace

comm::MessageType expected_reply_type(comm::MessageType request) {
  using comm::MessageType;
  switch (request) {
    case MessageType::kExpertForward:
      return MessageType::kExpertForwardResult;
    case MessageType::kExpertBackward:
      return MessageType::kExpertBackwardResult;
    case MessageType::kOptimizerStep:
      return MessageType::kOptimizerStepDone;
    case MessageType::kFetchExpert:
    case MessageType::kQueryExpert:
      return MessageType::kExpertState;
    case MessageType::kInstallExpert:
      return MessageType::kInstallExpertDone;
    case MessageType::kLoadExpertState:
      return MessageType::kLoadExpertStateDone;
    case MessageType::kProbe:
      return MessageType::kProbeAck;
    case MessageType::kAbortStep:
      return MessageType::kAbortStepDone;
    case MessageType::kSnapshotExpert:
      return MessageType::kExpertSnapshot;
    case MessageType::kRestoreExpert:
      return MessageType::kRestoreExpertDone;
    case MessageType::kStorePriorities:
      return MessageType::kStorePrioritiesDone;
    // Fire-and-forget control messages and the replies themselves have no
    // reply; listing them explicitly (no default:) makes the compiler and
    // vela_analyze flag this map when a new MessageType is added.
    case MessageType::kExpertForwardResult:
    case MessageType::kExpertBackwardResult:
    case MessageType::kOptimizerStepDone:
    case MessageType::kExpertState:
    case MessageType::kInstallExpertDone:
    case MessageType::kLoadExpertStateDone:
    case MessageType::kAllReduceChunk:
    case MessageType::kShutdown:
    case MessageType::kProbeAck:
    case MessageType::kAbortStepDone:
    case MessageType::kExpertSnapshot:
    case MessageType::kRestoreExpertDone:
    case MessageType::kCrash:
    case MessageType::kStorePrioritiesDone:
    case MessageType::kPrefetchExperts:  // dispatch hint, never awaited
      return request;
  }
  return request;  // unreachable: the switch above is exhaustive
}

ReliableLink::ReliableLink(std::size_t worker, comm::DuplexLink* link,
                           const RetryPolicy* policy, util::Clock* clock)
    : worker_(worker),
      link_(link),
      policy_(policy),
      clock_(clock != nullptr ? clock : &util::system_clock()) {
  VELA_CHECK(link_ != nullptr && policy_ != nullptr);
}

void ReliableLink::reset(comm::DuplexLink* link) {
  VELA_CHECK(link != nullptr);
  abandon_outstanding();
  link_ = link;
}

void ReliableLink::set_clock(util::Clock* clock) {
  clock_ = clock != nullptr ? clock : &util::system_clock();
}

void ReliableLink::remember(std::uint64_t key) {
  if (recent_.insert(key).second) {
    recent_order_.push_back(key);
    while (recent_order_.size() > kRecentCapacity) {
      recent_.erase(recent_order_.front());
      recent_order_.pop_front();
    }
  }
}

void ReliableLink::post(comm::Message msg) {
  comm::Message copy = msg;
  const std::uint64_t id = msg.request_id;
  if (!link_->to_worker.send(std::move(msg))) {
    throw WorkerFailedError(worker_, "channel severed while sending " +
                                         copy.to_string());
  }
  outstanding_[id] = std::move(copy);
}

void ReliableLink::abandon_outstanding() {
  // remember() evicts oldest-first once the recent-set fills, so the order
  // keys enter it is observable. Sort before inserting: unordered_map
  // iteration order would make the surviving set hash-seed dependent.
  std::vector<std::uint64_t> keys;
  keys.reserve(outstanding_.size() + stash_.size());
  for (const auto& [id, req] : outstanding_) {
    keys.push_back(key_of(expected_reply_type(req.type), id));
  }
  outstanding_.clear();
  for (const auto& [key, reply] : stash_) keys.push_back(key);
  stash_.clear();
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t key : keys) remember(key);
}

comm::Message ReliableLink::await(
    comm::MessageType expected, std::uint64_t request_id,
    const std::function<void(std::uint64_t)>& on_retransmit,
    const RetryPolicy* policy_override) {
  const RetryPolicy& policy =
      policy_override != nullptr ? *policy_override : *policy_;
  const std::uint64_t want = key_of(expected, request_id);

  // A reply that raced ahead of this await.
  if (auto it = stash_.find(want); it != stash_.end()) {
    comm::Message reply = std::move(it->second);
    stash_.erase(it);
    outstanding_.erase(request_id);
    remember(want);
    return reply;
  }

  double timeout_ms = static_cast<double>(policy.timeout.count());
  for (int attempt = 0;; ++attempt) {
    // All deadlines flow through the injected clock: wait_slice converts
    // the remaining virtual budget into the real blocking duration (the
    // identity on the system clock; a FakeClock advances virtual time and
    // blocks for about a millisecond, so timeout tests run fast).
    auto deadline = clock_->now() + std::chrono::milliseconds(
                                        static_cast<std::int64_t>(timeout_ms));
    for (;;) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                clock_->now());
      if (remaining.count() <= 0) break;
      comm::Message reply;
      const PopStatus status =
          link_->to_master.receive_for(clock_->wait_slice(remaining), &reply);
      if (status == PopStatus::kClosed) {
        throw WorkerFailedError(worker_,
                                "channel closed while awaiting " +
                                    std::string(comm::message_type_name(
                                        expected)));
      }
      if (status == PopStatus::kTimeout) break;
      if (!reply.checksum_ok()) {
        ++stats_.corrupt_dropped;
        VELA_LOG_DEBUG("rlink") << "worker " << worker_
                                << ": dropping corrupted " << reply.to_string();
        continue;
      }
      const std::uint64_t key = key_of(reply.type, reply.request_id);
      if (key == want) {
        outstanding_.erase(request_id);
        remember(want);
        return reply;
      }
      if (outstanding_.count(reply.request_id) > 0 &&
          expected_reply_type(outstanding_[reply.request_id].type) ==
              reply.type) {
        stash_[key] = std::move(reply);  // out-of-order reply; deliver later
        continue;
      }
      if (recent_.count(key) > 0 || stash_.count(key) > 0) {
        ++stats_.duplicates_discarded;
        continue;
      }
      VELA_CHECK_MSG(false, "protocol violation: worker "
                                << worker_ << " sent unexpected "
                                << reply.to_string() << " while awaiting "
                                << comm::message_type_name(expected) << "/"
                                << request_id);
    }

    // Timed out. Retransmit the stored request, or give the worker up.
    ++stats_.timeouts;
    if (attempt >= policy.max_retries) {
      throw WorkerFailedError(
          worker_, std::string("no ") + comm::message_type_name(expected) +
                       " after " + std::to_string(attempt + 1) +
                       " attempt(s)");
    }
    auto it = outstanding_.find(request_id);
    VELA_CHECK_MSG(it != outstanding_.end(),
                   "await without a posted request " << request_id);
    comm::Message resend = it->second;
    const std::uint64_t bytes = resend.wire_size();
    ++stats_.retransmissions;
    VELA_LOG_DEBUG("rlink") << "worker " << worker_ << ": retransmitting "
                            << resend.to_string() << " (attempt "
                            << (attempt + 2) << ")";
    if (!link_->to_worker.send(std::move(resend))) {
      throw WorkerFailedError(worker_, "channel severed while retransmitting");
    }
    if (audit::enabled()) {
      audit::ConservationLedger::instance().on_retransmit(bytes);
    }
    if (on_retransmit) on_retransmit(bytes);
    timeout_ms *= policy.backoff;
  }
}

bool ReliableLink::probe(std::uint64_t request_id,
                         const RetryPolicy* policy_override) {
  comm::Message msg;
  msg.type = comm::MessageType::kProbe;
  msg.request_id = request_id;
  try {
    post(std::move(msg));
    await(comm::MessageType::kProbeAck, request_id, nullptr, policy_override);
    return true;
  } catch (const WorkerFailedError&) {
    outstanding_.erase(request_id);
    remember(key_of(comm::MessageType::kProbeAck, request_id));
    return false;
  }
}

}  // namespace vela::core
