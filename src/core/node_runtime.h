// Per-process runtimes of the multi-process deployment mode (DESIGN.md §12).
//
// A deployment is one master process plus N vela_node worker processes.
// Everything here is derived from a shared Scenario string, so every
// process reconstructs bit-identical configuration independently:
//
//   * run_worker_node — the body of `vela_node --role worker`: rebuild the
//     worker's spec and expert assignment from the scenario, dial the
//     master's listener twice (one connection per lane), and serve requests
//     until kShutdown / link close;
//   * make_remote_master — the master side: adopt N identified workers from
//     a PeerListener into a MasterProcess (remote-fleet ctor), ready to be
//     wrapped in a VelaSystem;
//   * MultiProcCluster — the whole topology driven from the calling process
//     (the in-tree test fixture and the bench --processes mode): listener on
//     an ephemeral port, N spawned vela_node children with per-process log
//     capture, the remote master, and the VelaSystem on top;
//   * run_fine_tune — the scenario's fine-tuning loop plus the artifact
//     bundle (losses, per-step per-phase byte ledgers, request counts) that
//     the cross-mode bit-exactness gate compares between modes.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/launcher.h"
#include "comm/peer_listener.h"
#include "core/scenario.h"
#include "core/vela_system.h"
#include "data/corpus.h"

namespace vela::core {

// Runs a worker process: hosts the experts `initial_placement` assigns to
// `rank` (none when `fresh_start` — the respawn contract: a replacement
// process starts empty and is restocked over the wire), dials the master's
// `port`, serves until shutdown. `session_id` must be unique per process
// incarnation (vela_node uses its pid); reconnects re-identify with it.
// Returns the process exit code (0 = clean shutdown).
int run_worker_node(const Scenario& scenario, std::uint32_t rank,
                    std::uint16_t port, std::uint64_t session_id,
                    bool fresh_start = false);

// Builds the master's fleet by adopting `scenario.workers` identified peers
// from `listener`. Construction fails loudly if a worker does not dial in
// within `accept_timeout`.
std::unique_ptr<MasterProcess> make_remote_master(
    const Scenario& scenario, comm::PeerListener* listener,
    std::chrono::milliseconds accept_timeout,
    comm::ReconnectPolicy reconnect = {}, util::Clock* clock = nullptr);

struct MultiProcOptions {
  std::string node_binary;  // path to the vela_node executable
  std::string log_dir;      // per-worker log files land here ("" = inherit)
  std::chrono::milliseconds accept_timeout{30000};
  comm::ReconnectPolicy reconnect;  // master-side session-resume policy
  util::Clock* clock = nullptr;
};

// One whole multi-process topology, master side in this process. The
// destructor shuts the system down (workers exit on kShutdown) and reaps
// every child; kill-a-worker tests reach the children via worker().
class MultiProcCluster {
 public:
  MultiProcCluster(const Scenario& scenario, const MultiProcOptions& opts);
  ~MultiProcCluster();

  MultiProcCluster(const MultiProcCluster&) = delete;
  MultiProcCluster& operator=(const MultiProcCluster&) = delete;

  VelaSystem& system() { return *system_; }
  const Scenario& scenario() const { return scenario_; }
  const data::SyntheticCorpus& corpus() const { return corpus_; }
  comm::PeerListener& listener() { return *listener_; }
  std::uint16_t port() const { return listener_->bound_port(); }
  cluster::ChildProcess& worker(std::size_t w) { return *children_[w]; }
  std::size_t num_workers() const { return children_.size(); }

  // Spawns a replacement vela_node for rank `w` (fresh start, new pid =
  // new session id) — the building block of a remote respawner hook.
  void relaunch_worker(std::size_t w);

  // Graceful teardown (idempotent; the destructor calls it): shutdown the
  // fleet, reap all children, return the worst exit code.
  int shutdown_and_wait();

 private:
  cluster::ProcessSpec worker_spec(std::size_t w, bool fresh_start) const;

  Scenario scenario_;
  MultiProcOptions opts_;
  data::SyntheticCorpus corpus_;
  std::unique_ptr<comm::PeerListener> listener_;
  std::vector<std::unique_ptr<cluster::ChildProcess>> children_;
  std::unique_ptr<VelaSystem> system_;
  bool down_ = false;
};

// What the cross-mode bit-exactness gate compares (ISSUE: losses, weights,
// per-phase TrafficMeter ledgers, broker request counts). Weights are
// compared via the serialized checkpoint when `checkpoint_path` is given.
struct FineTuneArtifacts {
  std::vector<float> losses;
  std::vector<std::uint64_t> step_external_bytes;
  std::vector<std::uint64_t> step_total_bytes;
  std::vector<std::uint64_t> step_recovery_bytes;
  std::uint64_t lifetime_external_bytes = 0;
  std::uint64_t lifetime_total_bytes = 0;
  std::uint64_t requests = 0;
};

// Runs the scenario's fine-tuning loop (scenario.steps steps over the
// scenario's deterministic batch schedule) on an already-built system.
FineTuneArtifacts run_fine_tune(VelaSystem& vela, const Scenario& scenario,
                                const data::SyntheticCorpus& corpus,
                                const std::string& checkpoint_path = "");

// The in-process reference half of the cross-mode gate: same scenario, same
// corpus, fleet as threads over `kind` transport.
FineTuneArtifacts run_in_process(const Scenario& scenario,
                                 comm::TransportKind kind,
                                 const std::string& checkpoint_path = "");

}  // namespace vela::core
