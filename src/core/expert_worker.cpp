#include "core/expert_worker.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vela::core {

ExpertWorker::ExpertWorker(WorkerSpec spec, comm::DuplexLink* link,
                           std::vector<ExpertKey> initial_experts,
                           comm::TrafficMeter* meter)
    : spec_(spec),
      codec_(comm::WireCodec::resolve(spec.wire_dtype, spec.wire_bits,
                                      spec.quantize_wire, spec.q8_block)),
      link_(link) {
  VELA_CHECK(link != nullptr);
  store::StoreConfig cfg;
  cfg.budget = spec_.expert_budget;
  cfg.dir = spec_.store_dir;
  cfg.dtype = spec_.store_dtype;
  cfg.meter = meter;
  // The factory rebuilds everything an expert derives from its seed: frozen
  // bases, the q8 compute pack, a fresh optimizer. Page-in layers the
  // spilled adapters/gradients/moments on top.
  store_ = store::make_expert_store(
      cfg.resolved(), [this](const ExpertKey& key) {
        Rng rng(nn::expert_seed(spec_.base_seed, key.layer, key.expert));
        store::ExpertSlot slot;
        slot.expert = std::make_unique<nn::SwiGLUExpert>(
            "layer" + std::to_string(key.layer) + ".expert" +
                std::to_string(key.expert),
            spec_.model_dim, spec_.hidden_dim, spec_.lora, rng);
        if (codec_.is_int8()) {
          // Quantized compute tier: the frozen bases run through the packed
          // q8 GEMM. Deterministic per expert (pack depends only on the
          // seeded weights), so migration, respawn and page-in re-derive the
          // identical pack.
          slot.expert->enable_q8_compute(codec_.block);
        }
        if (spec_.lora.enabled) {
          slot.optimizer = std::make_unique<nn::AdamW>(
              slot.expert->trainable_parameters(), spec_.adamw);
        }
        return slot;
      });
  for (const auto& key : initial_experts) {
    install_expert(key, nullptr);
  }
}

ExpertWorker::~ExpertWorker() {
  if (thread_.joinable()) {
    link_->to_worker.close();
    thread_.join();
  }
}

void ExpertWorker::start() {
  VELA_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { run(); });
}

void ExpertWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void ExpertWorker::install_expert(const ExpertKey& key, const Tensor* state) {
  VELA_CHECK_MSG(!store_->contains(key),
                 "expert " << to_string(key) << " already hosted on worker "
                           << spec_.worker_id);
  store_->emplace(key);
  if (state != nullptr) {
    store::Pinned pinned(*store_, key);
    unpack_trainable(*state, pinned.expert());
  }
}

void ExpertWorker::require_hosted(const ExpertKey& key) const {
  VELA_CHECK_MSG(store_->contains(key),
                 "worker " << spec_.worker_id << " does not host expert "
                           << to_string(key));
}

void ExpertWorker::release_pending() {
  for (auto& [id, req] : pending_) {
    store_->unpin(req.key);
  }
  pending_.clear();
}

void ExpertWorker::run() {
  const std::string tag = "worker/" + std::to_string(spec_.worker_id);
  try {
    run_loop(tag);
  } catch (const CheckError& err) {
    // A protocol violation must not take the whole process down via an
    // exception escaping the thread; the worker dies loudly in the log and
    // stops answering, which the master detects as a closed/silent channel.
    VELA_LOG_ERROR(tag) << "worker terminating on protocol error: "
                        << err.what();
    link_->to_master.close();
  }
}

bool ExpertWorker::reply_and_cache(std::uint64_t key, comm::Message reply) {
  constexpr std::size_t kReplyCacheCapacity = 512;
  reply_cache_[key] = reply;
  reply_cache_order_.push_back(key);
  while (reply_cache_order_.size() > kReplyCacheCapacity) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }
  return link_->to_master.send(std::move(reply));
}

void ExpertWorker::run_loop(const std::string& tag) {
  while (true) {
    auto maybe = link_->to_worker.receive();
    if (!maybe.has_value()) break;  // channel closed
    // Drain whatever else already queued up behind it: consecutive compute
    // requests inside the batch become parallel tasks on the shared pool
    // while control traffic keeps its strict arrival-order handling.
    std::vector<comm::Message> batch;
    batch.push_back(std::move(*maybe));
    while (auto more = link_->to_worker.try_receive()) {
      batch.push_back(std::move(*more));
    }
    if (!process_batch(std::move(batch), tag)) return;
  }
}

bool ExpertWorker::handle_forward_run(std::vector<comm::Message>& run) {
  // Serial semantics on a missing expert: every request before it completes
  // and replies, then the failed lookup kills the worker. Truncate the run at
  // the first unhosted expert, compute the valid prefix, then let
  // require_hosted raise for the offender.
  std::size_t valid = run.size();
  for (std::size_t i = 0; i < run.size(); ++i) {
    if (!store_->contains({run[i].layer, run[i].expert})) {
      valid = i;
      break;
    }
  }
  // Pin serially on the worker thread, in arrival order — on a bounded store
  // this is where cold experts page in, and arrival order makes the paging
  // sequence deterministic. Each request holds its own pin until backward
  // retires it (pins nest for repeated experts).
  std::vector<nn::SwiGLUExpert*> experts;
  experts.reserve(valid);
  for (std::size_t i = 0; i < valid; ++i) {
    experts.push_back(
        store_->pin({run[i].layer, run[i].expert}).expert.get());
  }
  struct Slot {
    ag::Variable x;
    ag::Variable y;
    comm::Message reply;
  };
  std::vector<Slot> slots(valid);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(valid);
  for (std::size_t i = 0; i < valid; ++i) {
    // Forwards only read expert weights, and each task owns its own request
    // payload and slot, so distinct requests are data-race free even when
    // they hit the same expert.
    tasks.push_back([this, &run, &slots, &experts, i] {
      comm::Message& msg = run[i];
      Slot& s = slots[i];
      nn::SwiGLUExpert& expert = *experts[i];
      s.x = ag::Variable::leaf(std::move(msg.payload), /*requires_grad=*/true);
      s.y = expert.forward(s.x);
      comm::Message reply;
      reply.type = comm::MessageType::kExpertForwardResult;
      reply.request_id = msg.request_id;
      reply.layer = msg.layer;
      reply.expert = msg.expert;
      reply.step = msg.step;
      // Replies to fragments are fragments of the merged result: the echo
      // keeps the broker's header-once-per-transfer accounting symmetric.
      reply.chunk_index = msg.chunk_index;
      reply.chunk_count = msg.chunk_count;
      reply.payload = codec_.apply(s.y.value());
      codec_.stamp(reply);
      s.reply = std::move(reply);
    });
  }
  util::ThreadPool::global().run(tasks);
  // Bookkeeping and replies stay on the worker thread, in arrival order, so
  // the master observes exactly the serial reply sequence.
  for (std::size_t i = 0; i < valid; ++i) {
    const ExpertKey key{run[i].layer, run[i].expert};
    const auto [it, inserted] = pending_.emplace(
        run[i].request_id, PendingRequest{key, slots[i].x, slots[i].y});
    // A re-executed request (reply cache evicted after a lost reply) found
    // its original tape still pending: the original keeps its pin, this
    // execution's pin is surplus.
    if (!inserted) store_->unpin(key);
    ++requests_served_;
    if (!reply_and_cache(dedupe_key(run[i]), std::move(slots[i].reply))) {
      return false;
    }
  }
  if (valid < run.size()) {
    require_hosted({run[valid].layer, run[valid].expert});
  }
  return true;
}

bool ExpertWorker::handle_backward_run(std::vector<comm::Message>& run) {
  // Same truncation contract as forward runs, for unknown request ids.
  std::size_t valid = run.size();
  for (std::size_t i = 0; i < run.size(); ++i) {
    if (pending_.count(run[i].request_id) == 0) {
      valid = i;
      break;
    }
  }
  // Fragment trains (the master's VELA_OVERLAP dispatch pipeline) assemble
  // in arrival order and backpropagate once — through one full-batch tape —
  // when their last fragment lands; a duplicate fragment of an incomplete
  // train is simply ignored (the retransmission that completes it is the one
  // that matters). Unfragmented messages keep the grouped-parallel path
  // below. The master serializes backward round trips, so a run never mixes
  // the two in practice; handling both keeps the contract local.
  std::vector<std::size_t> plain;
  plain.reserve(valid);
  for (std::size_t i = 0; i < valid; ++i) {
    comm::Message& msg = run[i];
    if (msg.chunk_count <= 1) {
      plain.push_back(i);
      continue;
    }
    const std::uint64_t base = msg.request_id - msg.chunk_index;
    PartialTrain& train = partial_backward_[base];
    train.chunk_count = msg.chunk_count;
    const std::size_t chunk = msg.chunk_index;
    if (!train.fragments.emplace(chunk, std::move(msg)).second) continue;
    if (train.fragments.size() == train.chunk_count) {
      PartialTrain done = std::move(train);
      partial_backward_.erase(base);
      if (!stitched_backward(base, std::move(done))) return false;
    }
  }
  struct Slot {
    PendingRequest req;
    comm::Message reply;
  };
  std::vector<Slot> slots(valid);
  // Group by expert: backwards for the same expert accumulate into the same
  // LoRA gradient buffers, so they run sequentially inside one task (in
  // arrival order — the serial accumulation order); distinct experts touch
  // disjoint parameter nodes and run as parallel tasks. std::map keys the
  // groups in fixed expert-id order.
  std::map<ExpertKey, std::vector<std::size_t>> groups;
  for (const std::size_t i : plain) {
    auto it = pending_.find(run[i].request_id);
    slots[i].req = std::move(it->second);
    pending_.erase(it);
    groups[slots[i].req.key].push_back(i);
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(groups.size());
  for (auto& [key, indices] : groups) {
    tasks.push_back([this, &run, &slots, &indices = indices] {
      for (const std::size_t i : indices) {
        comm::Message& msg = run[i];
        Slot& s = slots[i];
        // Resume backpropagation: expert LoRA gradients accumulate locally;
        // only the input gradient returns to the master.
        ag::backward_from(s.req.output, msg.payload);
        comm::Message reply;
        reply.type = comm::MessageType::kExpertBackwardResult;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        reply.step = msg.step;
        reply.payload = codec_.apply(s.req.input.grad());
        codec_.stamp(reply);
        s.reply = std::move(reply);
      }
    });
  }
  util::ThreadPool::global().run(tasks);
  for (const std::size_t i : plain) {
    // The gradients landed in the (still pinned) expert's parameters; the
    // tape is retired, so the request's pin can go.
    store_->unpin(slots[i].req.key);
    if (!reply_and_cache(dedupe_key(run[i]), std::move(slots[i].reply))) {
      return false;
    }
  }
  VELA_CHECK_MSG(valid == run.size(),
                 "backward for unknown request " << run[valid].request_id);
  return true;
}

bool ExpertWorker::stitched_backward(std::uint64_t base_id,
                                     PartialTrain train) {
  // The per-chunk forward tapes are discarded and the forward recomputed on
  // the concatenated batch: the expert kernels are row-local, so the
  // recomputation reproduces the chunk outputs bit-for-bit, and running ONE
  // backward over the full batch keeps the LoRA gradient accumulation order
  // — and with it every low-order bit of the weights — identical to the
  // unchunked exchange (per-chunk backwards would sum partial dWs in a
  // different order).
  const comm::Message& first = train.fragments.begin()->second;
  const ExpertKey key{first.layer, first.expert};
  std::vector<Tensor> xs, dys;
  xs.reserve(train.chunk_count);
  dys.reserve(train.chunk_count);
  for (auto& [chunk, msg] : train.fragments) {
    auto it = pending_.find(base_id + chunk);
    VELA_CHECK_MSG(it != pending_.end(),
                   "backward fragment for unknown request " << base_id + chunk);
    VELA_CHECK_MSG(it->second.key.layer == key.layer &&
                       it->second.key.expert == key.expert,
                   "fragment train spans experts");
    xs.push_back(it->second.input.value());
    dys.push_back(std::move(msg.payload));
  }
  require_hosted(key);
  store::Pinned pinned(*store_, key);
  nn::SwiGLUExpert& expert = pinned.expert();
  ag::Variable in =
      ag::Variable::leaf(ops::concat_rows(xs), /*requires_grad=*/true);
  ag::Variable out = expert.forward(in);
  ag::backward_from(out, ops::concat_rows(dys));
  const Tensor& dx = in.grad();
  std::size_t at = 0;
  std::size_t c = 0;
  for (auto& [chunk, msg] : train.fragments) {
    const std::size_t rows = xs[c].rows();
    comm::Message reply;
    reply.type = comm::MessageType::kExpertBackwardResult;
    reply.request_id = msg.request_id;
    reply.layer = msg.layer;
    reply.expert = msg.expert;
    reply.step = msg.step;
    reply.chunk_index = msg.chunk_index;
    reply.chunk_count = msg.chunk_count;
    Tensor slice = ops::slice_rows(dx, at, rows);
    reply.payload =
        codec_.transforms ? codec_.apply(slice) : std::move(slice);
    codec_.stamp(reply);
    at += rows;
    ++c;
    // Retire the fragment's pending tape and its pin.
    pending_.erase(msg.request_id);
    store_->unpin(key);
    if (!reply_and_cache(dedupe_key(msg), std::move(reply))) return false;
  }
  return true;
}

bool ExpertWorker::process_batch(std::vector<comm::Message> batch,
                                 const std::string& tag) {
  std::size_t i = 0;
  while (i < batch.size()) {
    comm::Message msg = std::move(batch[i]);
    ++i;

    // Corrupted in flight: drop; the master times out and retransmits.
    if (!msg.checksum_ok()) {
      ++corrupt_dropped_;
      VELA_LOG_DEBUG(tag) << "dropping corrupted " << msg.to_string();
      continue;
    }
    // Already served (duplicate fault or master retransmission after a lost
    // reply): replay the cached reply, do not re-execute.
    if (auto it = reply_cache_.find(dedupe_key(msg)); it != reply_cache_.end()) {
      ++duplicates_replayed_;
      if (!link_->to_master.send(comm::Message(it->second))) {
        VELA_LOG_ERROR(tag) << "master channel gone while replaying reply; "
                               "terminating";
        link_->to_worker.close();
        return false;
      }
      continue;
    }

    // A run of compute requests: extend it with same-type, clean,
    // not-yet-served messages from the rest of the batch (a (type, id) pair
    // repeated within the batch breaks the run so the second copy hits the
    // reply cache, exactly as it would serially).
    if (msg.type == comm::MessageType::kExpertForward ||
        msg.type == comm::MessageType::kExpertBackward) {
      std::vector<comm::Message> run;
      run.push_back(std::move(msg));
      while (i < batch.size() && batch[i].type == run.front().type &&
             batch[i].checksum_ok() &&
             reply_cache_.find(dedupe_key(batch[i])) == reply_cache_.end() &&
             std::none_of(run.begin(), run.end(),
                          [&](const comm::Message& m) {
                            return dedupe_key(m) == dedupe_key(batch[i]);
                          })) {
        run.push_back(std::move(batch[i]));
        ++i;
      }
      const bool ok = run.front().type == comm::MessageType::kExpertForward
                          ? handle_forward_run(run)
                          : handle_backward_run(run);
      if (!ok) {
        VELA_LOG_ERROR(tag) << "reply channel closed; worker terminating";
        link_->to_worker.close();
        return false;
      }
      continue;
    }

    const ExpertKey key{msg.layer, msg.expert};
    const std::uint64_t req_key = dedupe_key(msg);
    bool sent = true;
    // Control-plane dispatch only: kExpertForward/kExpertBackward were
    // consumed by the run-batching branch above, and the *Result/*Done/
    // kExpertState/kExpertSnapshot/kProbeAck/kAllReduceChunk variants are
    // replies this worker SENDS, never receives; the default: abort below
    // catches any of them arriving by mistake.
    // vela-analyze: allow(partial-dispatch)
    switch (msg.type) {
      case comm::MessageType::kOptimizerStep: {
        // Forward-only passes (profiling) leave tapes that never receive a
        // backward; the step boundary retires them (and their pins).
        if (!pending_.empty()) {
          VELA_LOG_DEBUG(tag) << "dropping " << pending_.size()
                              << " forward-only tapes at step boundary";
        }
        release_pending();
        partial_backward_.clear();
        // A scalar payload carries a scheduled learning rate: local expert
        // optimizers follow the master's LR schedule. (Paged-out experts
        // catch up when their page-in below restores / this loop sets it.)
        const bool has_lr = msg.payload.size() == 1;
        const auto keys = store_->keys();
        if (!store_->bounded()) {
          // Everything is resident: per-expert AdamW states are disjoint, so
          // the steps run as parallel tasks; keys() is ascending, so task
          // order is fixed expert-id order regardless of pool size.
          std::vector<ExpertKey> stepped;
          std::vector<nn::AdamW*> opts;
          stepped.reserve(keys.size());
          opts.reserve(keys.size());
          for (const auto& k : keys) {
            nn::AdamW* opt = store_->pin(k).optimizer.get();
            if (opt == nullptr) {
              store_->unpin(k);
              continue;
            }
            if (has_lr) opt->set_learning_rate(msg.payload[0]);
            stepped.push_back(k);
            opts.push_back(opt);
          }
          std::vector<std::function<void()>> tasks;
          tasks.reserve(opts.size());
          for (nn::AdamW* opt : opts) {
            tasks.push_back([opt] {
              opt->step();
              opt->zero_grad();
            });
          }
          util::ThreadPool::global().run(tasks);
          for (const auto& k : stepped) store_->unpin(k);
        } else {
          // Bounded store: step serially in key order, one resident expert
          // at a time, so the pool never exceeds its budget. Per-expert
          // updates are independent, so the result is bit-identical to the
          // parallel path.
          for (const auto& k : keys) {
            store::Pinned pinned(*store_, k);
            if (pinned.optimizer() != nullptr) {
              if (has_lr) pinned.optimizer()->set_learning_rate(msg.payload[0]);
              pinned.optimizer()->step();
              pinned.optimizer()->zero_grad();
            }
          }
        }
        comm::Message reply;
        reply.type = comm::MessageType::kOptimizerStepDone;
        reply.request_id = msg.request_id;
        reply.step = msg.step;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kFetchExpert:
      case comm::MessageType::kQueryExpert: {
        require_hosted(key);
        comm::Message reply;
        reply.type = comm::MessageType::kExpertState;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        if (spec_.lora.enabled) {
          store::Pinned pinned(*store_, key);
          reply.payload = pack_trainable(pinned.expert());
        }
        reply.wire_bits = spec_.wire_bits;
        if (msg.type == comm::MessageType::kFetchExpert) store_->erase(key);
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kSnapshotExpert: {
        require_hosted(key);
        comm::Message reply;
        reply.type = comm::MessageType::kExpertSnapshot;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        if (spec_.lora.enabled) {
          store::Pinned pinned(*store_, key);
          reply.payload =
              pack_full_state(pinned.expert(), pinned.optimizer());
        }
        reply.wire_bits = spec_.wire_bits;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kRestoreExpert: {
        // Recovery install (or standby refresh when already hosted): frozen
        // bases re-derive from the seed; the payload (when present) restores
        // adapters + optimizer moments.
        if (!store_->contains(key)) install_expert(key, nullptr);
        if (msg.payload.size() > 0) {
          store::Pinned pinned(*store_, key);
          unpack_full_state(msg.payload, pinned.expert(), pinned.optimizer());
        }
        comm::Message reply;
        reply.type = comm::MessageType::kRestoreExpertDone;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kLoadExpertState: {
        require_hosted(key);
        {
          store::Pinned pinned(*store_, key);
          unpack_trainable(msg.payload, pinned.expert());
        }
        comm::Message reply;
        reply.type = comm::MessageType::kLoadExpertStateDone;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kInstallExpert: {
        if (msg.payload.size() > 0) {
          install_expert(key, &msg.payload);
        } else {
          install_expert(key, nullptr);
        }
        comm::Message reply;
        reply.type = comm::MessageType::kInstallExpertDone;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kProbe: {
        comm::Message reply;
        reply.type = comm::MessageType::kProbeAck;
        reply.request_id = msg.request_id;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kStorePriorities: {
        // Locality scores from the placement optimizer: payload is the
        // flattened L×E probability matrix, dims in the layer/expert fields.
        const std::size_t layers = msg.layer;
        const std::size_t experts = msg.expert;
        VELA_CHECK_MSG(msg.payload.size() == layers * experts,
                       "store priorities payload is " << msg.payload.size()
                                                      << " floats for a "
                                                      << layers << "x"
                                                      << experts << " matrix");
        std::vector<std::pair<ExpertKey, float>> priorities;
        priorities.reserve(layers * experts);
        for (std::size_t l = 0; l < layers; ++l) {
          for (std::size_t e = 0; e < experts; ++e) {
            priorities.emplace_back(
                ExpertKey{static_cast<std::uint32_t>(l),
                          static_cast<std::uint32_t>(e)},
                msg.payload[l * experts + e]);
          }
        }
        store_->set_priorities(priorities);
        comm::Message reply;
        reply.type = comm::MessageType::kStorePrioritiesDone;
        reply.request_id = msg.request_id;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kPrefetchExperts: {
        // Fire-and-forget dispatch hint: page the named experts in ahead of
        // the forwards queued behind this message. No reply, no cache —
        // duplicates just re-run an idempotent warm-up.
        std::vector<ExpertKey> keys;
        keys.reserve(msg.payload.size());
        for (std::size_t e = 0; e < msg.payload.size(); ++e) {
          keys.push_back(ExpertKey{
              msg.layer, static_cast<std::uint32_t>(msg.payload[e])});
        }
        store_->prefetch(keys);
        break;
      }
      case comm::MessageType::kAbortStep: {
        // Mid-step failure recovery: discard the in-flight step entirely —
        // pending tapes and any expert gradients accumulated by partial
        // backwards (resident ones now, spilled ones at their next page-in)
        // — so the retried step starts from clean state.
        if (!pending_.empty()) {
          VELA_LOG_DEBUG(tag) << "abort: dropping " << pending_.size()
                              << " in-flight tapes";
        }
        release_pending();
        partial_backward_.clear();
        store_->zero_all_grads();
        comm::Message reply;
        reply.type = comm::MessageType::kAbortStepDone;
        reply.request_id = msg.request_id;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kCrash: {
        // Injected fault: simulate an abrupt process death. Both channel
        // directions die and all hosted state is lost — including every
        // paged image, which is why a respawned worker's store starts empty.
        VELA_LOG_ERROR(tag) << "injected crash: simulating worker death";
        store_->clear();
        pending_.clear();
        partial_backward_.clear();
        link_->to_master.close();
        link_->to_worker.close();
        return false;
      }
      case comm::MessageType::kShutdown: {
        VELA_LOG_DEBUG(tag) << "shutdown";
        return false;
      }
      default:
        VELA_CHECK_MSG(false, "worker received unexpected message "
                                  << msg.to_string());
    }
    if (!sent) {
      // The master-side channel is gone (severed link or master teardown):
      // a structured death instead of silently computing into the void.
      VELA_LOG_ERROR(tag) << "reply channel closed; worker terminating";
      link_->to_worker.close();
      return false;
    }
  }
  return true;
}

}  // namespace vela::core
