#include "core/expert_worker.h"

#include <algorithm>
#include <functional>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vela::core {

ExpertWorker::ExpertWorker(WorkerSpec spec, comm::DuplexLink* link,
                           std::vector<ExpertKey> initial_experts)
    : spec_(spec),
      codec_(comm::WireCodec::resolve(spec.wire_dtype, spec.wire_bits,
                                      spec.quantize_wire, spec.q8_block)),
      link_(link) {
  VELA_CHECK(link != nullptr);
  for (const auto& key : initial_experts) {
    install_expert(key, nullptr);
  }
}

ExpertWorker::~ExpertWorker() {
  if (thread_.joinable()) {
    link_->to_worker.close();
    thread_.join();
  }
}

void ExpertWorker::start() {
  VELA_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { run(); });
}

void ExpertWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void ExpertWorker::install_expert(const ExpertKey& key, const Tensor* state) {
  VELA_CHECK_MSG(!experts_.count(key),
                 "expert " << to_string(key) << " already hosted on worker "
                           << spec_.worker_id);
  Rng rng(nn::expert_seed(spec_.base_seed, key.layer, key.expert));
  HostedExpert hosted;
  hosted.expert = std::make_unique<nn::SwiGLUExpert>(
      "layer" + std::to_string(key.layer) + ".expert" +
          std::to_string(key.expert),
      spec_.model_dim, spec_.hidden_dim, spec_.lora, rng);
  if (state != nullptr) {
    unpack_trainable(*state, *hosted.expert);
  }
  if (codec_.is_int8()) {
    // Quantized compute tier: the frozen bases run through the packed-q8
    // GEMM. Deterministic per expert (pack depends only on the seeded
    // weights), so migration and respawn re-derive the identical pack.
    hosted.expert->enable_q8_compute(codec_.block);
  }
  if (spec_.lora.enabled) {
    hosted.optimizer = std::make_unique<nn::AdamW>(
        hosted.expert->trainable_parameters(), spec_.adamw);
  }
  experts_.emplace(key, std::move(hosted));
}

ExpertWorker::HostedExpert& ExpertWorker::hosted(const ExpertKey& key) {
  auto it = experts_.find(key);
  VELA_CHECK_MSG(it != experts_.end(),
                 "worker " << spec_.worker_id << " does not host expert "
                           << to_string(key));
  return it->second;
}

void ExpertWorker::run() {
  const std::string tag = "worker/" + std::to_string(spec_.worker_id);
  try {
    run_loop(tag);
  } catch (const CheckError& err) {
    // A protocol violation must not take the whole process down via an
    // exception escaping the thread; the worker dies loudly in the log and
    // stops answering, which the master detects as a closed/silent channel.
    VELA_LOG_ERROR(tag) << "worker terminating on protocol error: "
                        << err.what();
    link_->to_master.close();
  }
}

bool ExpertWorker::reply_and_cache(std::uint64_t key, comm::Message reply) {
  constexpr std::size_t kReplyCacheCapacity = 512;
  reply_cache_[key] = reply;
  reply_cache_order_.push_back(key);
  while (reply_cache_order_.size() > kReplyCacheCapacity) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }
  return link_->to_master.send(std::move(reply));
}

void ExpertWorker::run_loop(const std::string& tag) {
  while (true) {
    auto maybe = link_->to_worker.receive();
    if (!maybe.has_value()) break;  // channel closed
    // Drain whatever else already queued up behind it: consecutive compute
    // requests inside the batch become parallel tasks on the shared pool
    // while control traffic keeps its strict arrival-order handling.
    std::vector<comm::Message> batch;
    batch.push_back(std::move(*maybe));
    while (auto more = link_->to_worker.try_receive()) {
      batch.push_back(std::move(*more));
    }
    if (!process_batch(std::move(batch), tag)) return;
  }
}

bool ExpertWorker::handle_forward_run(std::vector<comm::Message>& run) {
  // Serial semantics on a missing expert: every request before it completes
  // and replies, then the failed lookup kills the worker. Truncate the run at
  // the first unhosted expert, compute the valid prefix, then let hosted()
  // raise for the offender.
  std::size_t valid = run.size();
  for (std::size_t i = 0; i < run.size(); ++i) {
    if (experts_.count({run[i].layer, run[i].expert}) == 0) {
      valid = i;
      break;
    }
  }
  struct Slot {
    ag::Variable x;
    ag::Variable y;
    comm::Message reply;
  };
  std::vector<Slot> slots(valid);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(valid);
  for (std::size_t i = 0; i < valid; ++i) {
    // Forwards only read expert weights, and each task owns its own request
    // payload and slot, so distinct requests are data-race free even when
    // they hit the same expert.
    tasks.push_back([this, &run, &slots, i] {
      comm::Message& msg = run[i];
      Slot& s = slots[i];
      nn::SwiGLUExpert& expert =
          *experts_.at({msg.layer, msg.expert}).expert;
      s.x = ag::Variable::leaf(std::move(msg.payload), /*requires_grad=*/true);
      s.y = expert.forward(s.x);
      comm::Message reply;
      reply.type = comm::MessageType::kExpertForwardResult;
      reply.request_id = msg.request_id;
      reply.layer = msg.layer;
      reply.expert = msg.expert;
      reply.step = msg.step;
      // Replies to fragments are fragments of the merged result: the echo
      // keeps the broker's header-once-per-transfer accounting symmetric.
      reply.chunk_index = msg.chunk_index;
      reply.chunk_count = msg.chunk_count;
      reply.payload = codec_.apply(s.y.value());
      codec_.stamp(reply);
      s.reply = std::move(reply);
    });
  }
  util::ThreadPool::global().run(tasks);
  // Bookkeeping and replies stay on the worker thread, in arrival order, so
  // the master observes exactly the serial reply sequence.
  for (std::size_t i = 0; i < valid; ++i) {
    pending_.emplace(run[i].request_id,
                     PendingRequest{{run[i].layer, run[i].expert}, slots[i].x,
                                    slots[i].y});
    ++requests_served_;
    if (!reply_and_cache(dedupe_key(run[i]), std::move(slots[i].reply))) {
      return false;
    }
  }
  if (valid < run.size()) hosted({run[valid].layer, run[valid].expert});
  return true;
}

bool ExpertWorker::handle_backward_run(std::vector<comm::Message>& run) {
  // Same truncation contract as forward runs, for unknown request ids.
  std::size_t valid = run.size();
  for (std::size_t i = 0; i < run.size(); ++i) {
    if (pending_.count(run[i].request_id) == 0) {
      valid = i;
      break;
    }
  }
  // Fragment trains (the master's VELA_OVERLAP dispatch pipeline) assemble
  // in arrival order and backpropagate once — through one full-batch tape —
  // when their last fragment lands; a duplicate fragment of an incomplete
  // train is simply ignored (the retransmission that completes it is the one
  // that matters). Unfragmented messages keep the grouped-parallel path
  // below. The master serializes backward round trips, so a run never mixes
  // the two in practice; handling both keeps the contract local.
  std::vector<std::size_t> plain;
  plain.reserve(valid);
  for (std::size_t i = 0; i < valid; ++i) {
    comm::Message& msg = run[i];
    if (msg.chunk_count <= 1) {
      plain.push_back(i);
      continue;
    }
    const std::uint64_t base = msg.request_id - msg.chunk_index;
    PartialTrain& train = partial_backward_[base];
    train.chunk_count = msg.chunk_count;
    const std::size_t chunk = msg.chunk_index;
    if (!train.fragments.emplace(chunk, std::move(msg)).second) continue;
    if (train.fragments.size() == train.chunk_count) {
      PartialTrain done = std::move(train);
      partial_backward_.erase(base);
      if (!stitched_backward(base, std::move(done))) return false;
    }
  }
  struct Slot {
    PendingRequest req;
    comm::Message reply;
  };
  std::vector<Slot> slots(valid);
  // Group by expert: backwards for the same expert accumulate into the same
  // LoRA gradient buffers, so they run sequentially inside one task (in
  // arrival order — the serial accumulation order); distinct experts touch
  // disjoint parameter nodes and run as parallel tasks. std::map keys the
  // groups in fixed expert-id order.
  std::map<ExpertKey, std::vector<std::size_t>> groups;
  for (const std::size_t i : plain) {
    auto it = pending_.find(run[i].request_id);
    slots[i].req = std::move(it->second);
    pending_.erase(it);
    groups[slots[i].req.key].push_back(i);
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(groups.size());
  for (auto& [key, indices] : groups) {
    tasks.push_back([this, &run, &slots, &indices = indices] {
      for (const std::size_t i : indices) {
        comm::Message& msg = run[i];
        Slot& s = slots[i];
        // Resume backpropagation: expert LoRA gradients accumulate locally;
        // only the input gradient returns to the master.
        ag::backward_from(s.req.output, msg.payload);
        comm::Message reply;
        reply.type = comm::MessageType::kExpertBackwardResult;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        reply.step = msg.step;
        reply.payload = codec_.apply(s.req.input.grad());
        codec_.stamp(reply);
        s.reply = std::move(reply);
      }
    });
  }
  util::ThreadPool::global().run(tasks);
  for (const std::size_t i : plain) {
    if (!reply_and_cache(dedupe_key(run[i]), std::move(slots[i].reply))) {
      return false;
    }
  }
  VELA_CHECK_MSG(valid == run.size(),
                 "backward for unknown request " << run[valid].request_id);
  return true;
}

bool ExpertWorker::stitched_backward(std::uint64_t base_id,
                                     PartialTrain train) {
  // The per-chunk forward tapes are discarded and the forward recomputed on
  // the concatenated batch: the expert kernels are row-local, so the
  // recomputation reproduces the chunk outputs bit-for-bit, and running ONE
  // backward over the full batch keeps the LoRA gradient accumulation order
  // — and with it every low-order bit of the weights — identical to the
  // unchunked exchange (per-chunk backwards would sum partial dWs in a
  // different order).
  const comm::Message& first = train.fragments.begin()->second;
  const ExpertKey key{first.layer, first.expert};
  std::vector<Tensor> xs, dys;
  xs.reserve(train.chunk_count);
  dys.reserve(train.chunk_count);
  for (auto& [chunk, msg] : train.fragments) {
    auto it = pending_.find(base_id + chunk);
    VELA_CHECK_MSG(it != pending_.end(),
                   "backward fragment for unknown request " << base_id + chunk);
    VELA_CHECK_MSG(it->second.key.layer == key.layer &&
                       it->second.key.expert == key.expert,
                   "fragment train spans experts");
    xs.push_back(it->second.input.value());
    dys.push_back(std::move(msg.payload));
  }
  nn::SwiGLUExpert& expert = *hosted(key).expert;
  ag::Variable in =
      ag::Variable::leaf(ops::concat_rows(xs), /*requires_grad=*/true);
  ag::Variable out = expert.forward(in);
  ag::backward_from(out, ops::concat_rows(dys));
  const Tensor& dx = in.grad();
  std::size_t at = 0;
  std::size_t c = 0;
  for (auto& [chunk, msg] : train.fragments) {
    const std::size_t rows = xs[c].rows();
    comm::Message reply;
    reply.type = comm::MessageType::kExpertBackwardResult;
    reply.request_id = msg.request_id;
    reply.layer = msg.layer;
    reply.expert = msg.expert;
    reply.step = msg.step;
    reply.chunk_index = msg.chunk_index;
    reply.chunk_count = msg.chunk_count;
    Tensor slice = ops::slice_rows(dx, at, rows);
    reply.payload =
        codec_.transforms ? codec_.apply(slice) : std::move(slice);
    codec_.stamp(reply);
    at += rows;
    ++c;
    pending_.erase(msg.request_id);
    if (!reply_and_cache(dedupe_key(msg), std::move(reply))) return false;
  }
  return true;
}

bool ExpertWorker::process_batch(std::vector<comm::Message> batch,
                                 const std::string& tag) {
  std::size_t i = 0;
  while (i < batch.size()) {
    comm::Message msg = std::move(batch[i]);
    ++i;

    // Corrupted in flight: drop; the master times out and retransmits.
    if (!msg.checksum_ok()) {
      ++corrupt_dropped_;
      VELA_LOG_DEBUG(tag) << "dropping corrupted " << msg.to_string();
      continue;
    }
    // Already served (duplicate fault or master retransmission after a lost
    // reply): replay the cached reply, do not re-execute.
    if (auto it = reply_cache_.find(dedupe_key(msg)); it != reply_cache_.end()) {
      ++duplicates_replayed_;
      if (!link_->to_master.send(comm::Message(it->second))) {
        VELA_LOG_ERROR(tag) << "master channel gone while replaying reply; "
                               "terminating";
        link_->to_worker.close();
        return false;
      }
      continue;
    }

    // A run of compute requests: extend it with same-type, clean,
    // not-yet-served messages from the rest of the batch (a (type, id) pair
    // repeated within the batch breaks the run so the second copy hits the
    // reply cache, exactly as it would serially).
    if (msg.type == comm::MessageType::kExpertForward ||
        msg.type == comm::MessageType::kExpertBackward) {
      std::vector<comm::Message> run;
      run.push_back(std::move(msg));
      while (i < batch.size() && batch[i].type == run.front().type &&
             batch[i].checksum_ok() &&
             reply_cache_.find(dedupe_key(batch[i])) == reply_cache_.end() &&
             std::none_of(run.begin(), run.end(),
                          [&](const comm::Message& m) {
                            return dedupe_key(m) == dedupe_key(batch[i]);
                          })) {
        run.push_back(std::move(batch[i]));
        ++i;
      }
      const bool ok = run.front().type == comm::MessageType::kExpertForward
                          ? handle_forward_run(run)
                          : handle_backward_run(run);
      if (!ok) {
        VELA_LOG_ERROR(tag) << "reply channel closed; worker terminating";
        link_->to_worker.close();
        return false;
      }
      continue;
    }

    const ExpertKey key{msg.layer, msg.expert};
    const std::uint64_t req_key = dedupe_key(msg);
    bool sent = true;
    // Control-plane dispatch only: kExpertForward/kExpertBackward were
    // consumed by the run-batching branch above, and the *Result/*Done/
    // kExpertState/kExpertSnapshot/kProbeAck/kAllReduceChunk variants are
    // replies this worker SENDS, never receives; the default: abort below
    // catches any of them arriving by mistake.
    // vela-analyze: allow(partial-dispatch)
    switch (msg.type) {
      case comm::MessageType::kOptimizerStep: {
        // Forward-only passes (profiling) leave tapes that never receive a
        // backward; the step boundary retires them.
        if (!pending_.empty()) {
          VELA_LOG_DEBUG(tag) << "dropping " << pending_.size()
                              << " forward-only tapes at step boundary";
          pending_.clear();
        }
        partial_backward_.clear();
        // A scalar payload carries a scheduled learning rate: local expert
        // optimizers follow the master's LR schedule.
        if (msg.payload.size() == 1) {
          for (auto& [k, h] : experts_) {
            if (h.optimizer != nullptr) {
              h.optimizer->set_learning_rate(msg.payload[0]);
            }
          }
        }
        // Per-expert AdamW states are disjoint, so the steps run as parallel
        // tasks; experts_ is a std::map, so task order is fixed expert-id
        // order regardless of pool size.
        {
          std::vector<std::function<void()>> tasks;
          for (auto& [k, h] : experts_) {
            if (h.optimizer != nullptr) {
              tasks.push_back([&opt = *h.optimizer] {
                opt.step();
                opt.zero_grad();
              });
            }
          }
          util::ThreadPool::global().run(tasks);
        }
        comm::Message reply;
        reply.type = comm::MessageType::kOptimizerStepDone;
        reply.request_id = msg.request_id;
        reply.step = msg.step;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kFetchExpert:
      case comm::MessageType::kQueryExpert: {
        HostedExpert& h = hosted(key);
        comm::Message reply;
        reply.type = comm::MessageType::kExpertState;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        if (spec_.lora.enabled) reply.payload = pack_trainable(*h.expert);
        reply.wire_bits = spec_.wire_bits;
        if (msg.type == comm::MessageType::kFetchExpert) experts_.erase(key);
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kSnapshotExpert: {
        HostedExpert& h = hosted(key);
        comm::Message reply;
        reply.type = comm::MessageType::kExpertSnapshot;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        if (spec_.lora.enabled) {
          reply.payload = pack_full_state(*h.expert, h.optimizer.get());
        }
        reply.wire_bits = spec_.wire_bits;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kRestoreExpert: {
        // Recovery install (or standby refresh when already hosted): frozen
        // bases re-derive from the seed; the payload (when present) restores
        // adapters + optimizer moments.
        if (experts_.count(key) == 0) install_expert(key, nullptr);
        if (msg.payload.size() > 0) {
          HostedExpert& h = hosted(key);
          unpack_full_state(msg.payload, *h.expert, h.optimizer.get());
        }
        comm::Message reply;
        reply.type = comm::MessageType::kRestoreExpertDone;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kLoadExpertState: {
        HostedExpert& h = hosted(key);
        unpack_trainable(msg.payload, *h.expert);
        comm::Message reply;
        reply.type = comm::MessageType::kLoadExpertStateDone;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kInstallExpert: {
        if (msg.payload.size() > 0) {
          install_expert(key, &msg.payload);
        } else {
          install_expert(key, nullptr);
        }
        comm::Message reply;
        reply.type = comm::MessageType::kInstallExpertDone;
        reply.request_id = msg.request_id;
        reply.layer = msg.layer;
        reply.expert = msg.expert;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kProbe: {
        comm::Message reply;
        reply.type = comm::MessageType::kProbeAck;
        reply.request_id = msg.request_id;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kAbortStep: {
        // Mid-step failure recovery: discard the in-flight step entirely —
        // pending tapes and any expert gradients accumulated by partial
        // backwards — so the retried step starts from clean state.
        if (!pending_.empty()) {
          VELA_LOG_DEBUG(tag) << "abort: dropping " << pending_.size()
                              << " in-flight tapes";
          pending_.clear();
        }
        partial_backward_.clear();
        for (auto& [k, h] : experts_) {
          if (h.optimizer != nullptr) h.optimizer->zero_grad();
        }
        comm::Message reply;
        reply.type = comm::MessageType::kAbortStepDone;
        reply.request_id = msg.request_id;
        sent = reply_and_cache(req_key, std::move(reply));
        break;
      }
      case comm::MessageType::kCrash: {
        // Injected fault: simulate an abrupt process death. Both channel
        // directions die and all hosted state is lost; the master's
        // detection + respawn path takes it from here.
        VELA_LOG_ERROR(tag) << "injected crash: simulating worker death";
        experts_.clear();
        pending_.clear();
        partial_backward_.clear();
        link_->to_master.close();
        link_->to_worker.close();
        return false;
      }
      case comm::MessageType::kShutdown: {
        VELA_LOG_DEBUG(tag) << "shutdown";
        return false;
      }
      default:
        VELA_CHECK_MSG(false, "worker received unexpected message "
                                  << msg.to_string());
    }
    if (!sent) {
      // The master-side channel is gone (severed link or master teardown):
      // a structured death instead of silently computing into the void.
      VELA_LOG_ERROR(tag) << "reply channel closed; worker terminating";
      link_->to_worker.close();
      return false;
    }
  }
  return true;
}

}  // namespace vela::core
