#include "core/replanner.h"

#include <algorithm>

#include "placement/evaluator.h"
#include "util/check.h"
#include "util/logging.h"

namespace vela::core {

Replanner::Replanner(ReplanConfig cfg, const model::ModelConfig& model,
                     const cluster::ClusterTopology* topology,
                     double tokens_per_step)
    : cfg_(cfg),
      model_(model),
      topology_(topology),
      tokens_per_step_(tokens_per_step) {
  VELA_CHECK(topology != nullptr);
  VELA_CHECK(cfg_.interval > 0 && cfg_.window > 0);
  VELA_CHECK(cfg_.min_improvement >= 0.0);
  VELA_CHECK(tokens_per_step > 0.0);
}

void Replanner::observe(const std::vector<moe::RoutePlan>& plans) {
  VELA_CHECK(plans.size() == model_.num_layers);
  std::vector<std::vector<std::uint64_t>> counts(
      model_.num_layers, std::vector<std::uint64_t>(model_.num_experts, 0));
  std::uint64_t tokens = 0;
  for (std::size_t l = 0; l < plans.size(); ++l) {
    VELA_CHECK(plans[l].num_experts == model_.num_experts);
    for (std::size_t e = 0; e < model_.num_experts; ++e) {
      counts[l][e] = plans[l].expert_tokens[e].size();
    }
    tokens = std::max<std::uint64_t>(tokens, plans[l].num_tokens);
  }
  window_counts_.push_back(std::move(counts));
  window_tokens_.push_back(tokens);
  if (window_counts_.size() > cfg_.window) {
    window_counts_.pop_front();
    window_tokens_.pop_front();
  }
  ++steps_;
}

Tensor Replanner::windowed_probability() const {
  Tensor p({model_.num_layers, model_.num_experts});
  std::uint64_t total_tokens = 0;
  for (std::uint64_t t : window_tokens_) total_tokens += t;
  if (total_tokens == 0) return p;
  for (const auto& step : window_counts_) {
    for (std::size_t l = 0; l < model_.num_layers; ++l) {
      for (std::size_t e = 0; e < model_.num_experts; ++e) {
        p.at(l, e) += static_cast<float>(step[l][e]);
      }
    }
  }
  p.scale_(1.0f / static_cast<float>(total_tokens));
  return p;
}

placement::PlacementProblem Replanner::build_problem(
    const Tensor& probability) const {
  placement::PlacementProblem problem;
  problem.num_workers = topology_->num_workers();
  problem.num_layers = model_.num_layers;
  problem.num_experts = model_.num_experts;
  problem.probability = probability;
  problem.tokens_per_step = tokens_per_step_;
  problem.bytes_per_token = static_cast<double>(model_.bytes_per_token());
  problem.master_node = topology_->master_node();
  for (std::size_t w = 0; w < problem.num_workers; ++w) {
    problem.bandwidth.push_back(topology_->worker_bandwidth(w));
    problem.worker_node.push_back(topology_->worker_node(w));
  }
  problem.capacity = topology_->uniform_capacities(
      model_.num_layers * model_.num_experts, cfg_.capacity_slack);
  for (std::size_t w = 0; w < problem.num_workers; ++w) {
    std::size_t experts_on_w = 0;
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      if (e % problem.num_workers == w) ++experts_on_w;
    }
    problem.capacity[w] =
        std::max(problem.capacity[w], experts_on_w * problem.num_layers);
  }
  problem.validate();
  return problem;
}

std::optional<placement::Placement> Replanner::maybe_replan(
    const placement::Placement& current) {
  if (steps_ == 0 || steps_ % cfg_.interval != 0) return std::nullopt;
  if (window_counts_.size() < cfg_.window) return std::nullopt;
  ++evaluations_;

  const Tensor p = windowed_probability();
  const placement::PlacementProblem problem = build_problem(p);
  placement::LocalityAwarePlacement strategy;
  placement::Placement candidate = strategy.place(problem);

  const double t_current = placement::expected_comm_seconds(problem, current);
  const double t_candidate =
      placement::expected_comm_seconds(problem, candidate);
  const double improvement = 1.0 - t_candidate / t_current;
  if (improvement < cfg_.min_improvement) {
    VELA_LOG_DEBUG("replanner")
        << "step " << steps_ << ": predicted gain "
        << improvement * 100.0 << "% below threshold, keeping placement";
    return std::nullopt;
  }
  ++proposals_;
  VELA_LOG_INFO("replanner") << "step " << steps_ << ": re-placing experts ("
                             << improvement * 100.0 << "% predicted gain)";
  return candidate;
}

}  // namespace vela::core
