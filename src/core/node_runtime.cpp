#include "core/node_runtime.h"

#include <utility>

#include "core/expert_worker.h"
#include "data/batch.h"
#include "util/check.h"
#include "util/logging.h"

namespace vela::core {

int run_worker_node(const Scenario& scenario, std::uint32_t rank,
                    std::uint16_t port, std::uint64_t session_id,
                    bool fresh_start) {
  const VelaSystemConfig cfg = scenario.system_config(/*remote=*/true);
  cluster::ClusterTopology topology(cfg.cluster);
  VELA_CHECK_MSG(rank < topology.num_workers(),
                 "rank " << rank << " out of range for a " << scenario.workers
                         << "-worker scenario");
  const std::size_t node = topology.worker_node(rank);
  const WorkerSpec spec = make_worker_spec(cfg, rank, node);

  std::vector<ExpertKey> assigned;
  if (!fresh_start) {
    const placement::Placement p = initial_placement(
        cfg.model.num_layers, cfg.model.num_experts, topology.num_workers());
    for (const auto& [l, e] : p.experts_of(rank)) {
      assigned.push_back(
          {static_cast<std::uint32_t>(l), static_cast<std::uint32_t>(e)});
    }
  }

  // Capacity travels in the kIdent handshake; the master cross-checks it
  // against its own placement, so a scenario mismatch between launcher and
  // worker dies at connect time, not as silent divergence mid-run.
  auto link = comm::make_worker_remote_link(
      port, rank, assigned.size(), session_id, topology.master_node(), node);
  VELA_LOG_INFO("node") << "worker " << rank << " connected to port " << port
                        << " hosting " << assigned.size() << " expert(s)";

  ExpertWorker worker(spec, link.get(), std::move(assigned));
  worker.start();
  worker.join();  // exits on kShutdown, injected crash, or link close
  VELA_LOG_INFO("node") << "worker " << rank << " served "
                        << worker.requests_served() << " request(s); exiting";
  return 0;
}

std::unique_ptr<MasterProcess> make_remote_master(
    const Scenario& scenario, comm::PeerListener* listener,
    std::chrono::milliseconds accept_timeout, comm::ReconnectPolicy reconnect,
    util::Clock* clock) {
  const VelaSystemConfig cfg = scenario.system_config(/*remote=*/true);
  cluster::ClusterTopology topology(cfg.cluster);
  RemoteFleetConfig remote;
  remote.listener = listener;
  remote.accept_timeout = accept_timeout;
  remote.reconnect = reconnect;
  remote.clock = clock;
  return std::make_unique<MasterProcess>(
      topology, make_worker_spec(cfg, 0, 0),
      initial_placement(cfg.model.num_layers, cfg.model.num_experts,
                        topology.num_workers()),
      cfg.model.num_layers, cfg.model.num_experts, remote);
}

MultiProcCluster::MultiProcCluster(const Scenario& scenario,
                                   const MultiProcOptions& opts)
    : scenario_(scenario),
      opts_(opts),
      corpus_(scenario.corpus_config(), scenario.corpus_seed) {
  VELA_CHECK_MSG(!opts_.node_binary.empty(),
                 "MultiProcCluster needs the vela_node binary path");
  comm::PeerListenerConfig lc;
  lc.port = 0;  // ephemeral: collisions impossible by construction
  lc.clock = opts_.clock;
  listener_ = comm::make_peer_listener(lc);

  // Spawn ALL workers before adopting any: they dial concurrently, which is
  // exactly the startup pattern the listener's mailboxes exist for.
  children_.reserve(scenario_.workers);
  for (std::size_t w = 0; w < scenario_.workers; ++w) {
    children_.push_back(std::make_unique<cluster::ChildProcess>(
        worker_spec(w, /*fresh_start=*/false)));
  }
  auto master = make_remote_master(scenario_, listener_.get(),
                                   opts_.accept_timeout, opts_.reconnect,
                                   opts_.clock);
  system_ = std::make_unique<VelaSystem>(
      scenario_.system_config(/*remote=*/true), std::move(master), &corpus_);
}

MultiProcCluster::~MultiProcCluster() { shutdown_and_wait(); }

cluster::ProcessSpec MultiProcCluster::worker_spec(std::size_t w,
                                                   bool fresh_start) const {
  cluster::ProcessSpec spec;
  spec.binary = opts_.node_binary;
  spec.args = {"--role",     "worker",
               "--rank",     std::to_string(w),
               "--port",     std::to_string(listener_->bound_port()),
               "--scenario", scenario_.serialize()};
  if (fresh_start) spec.args.push_back("--fresh");
  if (!opts_.log_dir.empty()) {
    spec.log_path = opts_.log_dir + "/worker_" + std::to_string(w) +
                    (fresh_start ? "_respawn" : "") + ".log";
  }
  return spec;
}

void MultiProcCluster::relaunch_worker(std::size_t w) {
  VELA_CHECK(w < children_.size());
  // Reap whatever is left of the previous incarnation first (it was killed
  // or crashed — a live worker is never relaunched).
  children_[w]->kill();
  (void)children_[w]->wait();
  children_[w] = std::make_unique<cluster::ChildProcess>(
      worker_spec(w, /*fresh_start=*/true));
}

int MultiProcCluster::shutdown_and_wait() {
  if (down_) return 0;
  down_ = true;
  // ~VelaSystem → MasterProcess::shutdown(): kShutdown to every worker plus
  // a goodbye-close on every lane, so each vela_node exits by itself.
  system_.reset();
  const int worst = cluster::wait_all(children_);
  listener_->stop();
  return worst;
}

FineTuneArtifacts run_fine_tune(VelaSystem& vela, const Scenario& scenario,
                                const data::SyntheticCorpus& corpus,
                                const std::string& checkpoint_path) {
  data::BatchIterator it(
      corpus.make_dataset(scenario.dataset_sequences,
                          scenario.sequence_length),
      scenario.batch_size, scenario.batch_seed, /*shuffle=*/false);
  FineTuneArtifacts art;
  comm::TrafficMeter& meter = vela.master().meter();
  for (std::size_t step = 0; step < scenario.steps; ++step) {
    art.losses.push_back(vela.train_step(it.next()).loss);
    const std::size_t i = meter.num_steps() - 1;
    art.step_external_bytes.push_back(meter.step_external_bytes(i));
    art.step_total_bytes.push_back(meter.step_total_bytes(i));
    art.step_recovery_bytes.push_back(meter.step_recovery_bytes(i));
  }
  art.requests = vela.master().broker().requests_sent();
  art.lifetime_external_bytes = meter.lifetime_external_bytes();
  art.lifetime_total_bytes = meter.lifetime_total_bytes();
  if (!checkpoint_path.empty()) vela.save_checkpoint(checkpoint_path);
  return art;
}

FineTuneArtifacts run_in_process(const Scenario& scenario,
                                 comm::TransportKind kind,
                                 const std::string& checkpoint_path) {
  VelaSystemConfig cfg = scenario.system_config(/*remote=*/false);
  cfg.transport = kind;
  data::SyntheticCorpus corpus(scenario.corpus_config(),
                               scenario.corpus_seed);
  VelaSystem vela(cfg, &corpus);
  return run_fine_tune(vela, scenario, corpus, checkpoint_path);
}

}  // namespace vela::core
