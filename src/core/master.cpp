#include "core/master.h"

#include "util/check.h"
#include "util/logging.h"

namespace vela::core {

MasterProcess::MasterProcess(const cluster::ClusterTopology& topology,
                             const WorkerSpec& spec_template,
                             placement::Placement placement,
                             std::size_t num_layers, std::size_t num_experts,
                             comm::TransportKind transport)
    : topology_(topology),
      transport_(comm::resolve_transport(transport)),
      meter_(&topology_),
      placement_(std::move(placement)),
      spec_template_(spec_template),
      num_layers_(num_layers),
      num_experts_(num_experts) {
  VELA_CHECK(placement_.num_layers() == num_layers &&
             placement_.num_experts() == num_experts);
  const std::size_t n = topology_.num_workers();
  const std::size_t master_node = topology_.master_node();

  links_.reserve(n);
  workers_.reserve(n);
  rlinks_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    links_.push_back(comm::make_duplex_link(
        transport_, master_node, topology_.worker_node(w), &meter_));
    WorkerSpec spec = spec_template_;
    spec.worker_id = w;
    spec.node = topology_.worker_node(w);
    std::vector<ExpertKey> assigned;
    for (const auto& [l, e] : placement_.experts_of(w)) {
      assigned.push_back(
          {static_cast<std::uint32_t>(l), static_cast<std::uint32_t>(e)});
    }
    workers_.push_back(
        std::make_unique<ExpertWorker>(spec, links_.back().get(), assigned));
    workers_.back()->start();
    rlinks_.push_back(
        std::make_unique<ReliableLink>(w, links_.back().get(), &retry_policy_));
  }
  std::vector<ReliableLink*> rlink_ptrs;
  for (auto& rl : rlinks_) rlink_ptrs.push_back(rl.get());
  broker_ = std::make_unique<ExpertBroker>(rlink_ptrs, &placement_, num_layers,
                                           spec_template_.wire_bits,
                                           spec_template_.quantize_wire);
}

MasterProcess::~MasterProcess() { shutdown(); }

comm::Message MasterProcess::exchange(std::size_t worker, comm::Message msg) {
  const comm::MessageType reply_type = expected_reply_type(msg.type);
  const std::uint64_t id = msg.request_id;
  rlinks_[worker]->post(std::move(msg));
  return rlinks_[worker]->await(reply_type, id);
}

void MasterProcess::broadcast_optimizer_step(std::uint32_t step,
                                             float scheduled_lr) {
  std::vector<std::uint64_t> ids(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    comm::Message msg;
    msg.type = comm::MessageType::kOptimizerStep;
    msg.request_id = ids[w] = next_request_++;
    msg.step = step;
    if (scheduled_lr >= 0.0f) {
      msg.payload = Tensor::full({1}, scheduled_lr);
    }
    rlinks_[w]->post(std::move(msg));
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    rlinks_[w]->await(comm::MessageType::kOptimizerStepDone, ids[w]);
  }
}

void MasterProcess::apply_placement(const placement::Placement& next) {
  VELA_CHECK(next.num_layers() == placement_.num_layers() &&
             next.num_experts() == placement_.num_experts());
  std::size_t moved = 0;
  for (std::size_t l = 0; l < next.num_layers(); ++l) {
    for (std::size_t e = 0; e < next.num_experts(); ++e) {
      const std::size_t from = placement_.worker_of(l, e);
      const std::size_t to = next.worker_of(l, e);
      if (from == to) continue;
      ++moved;
      const ExpertKey key{static_cast<std::uint32_t>(l),
                          static_cast<std::uint32_t>(e)};
      // A standby replica on the destination would collide with the
      // migrating primary; retire it first.
      drop_standby(key, to);

      comm::Message fetch;
      fetch.type = comm::MessageType::kFetchExpert;
      fetch.request_id = next_request_++;
      fetch.layer = key.layer;
      fetch.expert = key.expert;
      comm::Message state = exchange(from, std::move(fetch));

      comm::Message install;
      install.type = comm::MessageType::kInstallExpert;
      install.request_id = next_request_++;
      install.layer = key.layer;
      install.expert = key.expert;
      install.payload = std::move(state.payload);
      exchange(to, std::move(install));
    }
  }
  placement_ = next;
  broker_->set_placement(&placement_);
  VELA_LOG_INFO("master") << "applied new placement; migrated " << moved
                          << " experts";
}

Tensor MasterProcess::query_expert_state(std::size_t layer,
                                         std::size_t expert) {
  const std::size_t w = placement_.worker_of(layer, expert);
  comm::Message msg;
  msg.type = comm::MessageType::kQueryExpert;
  msg.request_id = next_request_++;
  msg.layer = static_cast<std::uint32_t>(layer);
  msg.expert = static_cast<std::uint32_t>(expert);
  return exchange(w, std::move(msg)).payload;
}

void MasterProcess::load_expert_state(std::size_t layer, std::size_t expert,
                                      Tensor state) {
  const std::size_t w = placement_.worker_of(layer, expert);
  comm::Message msg;
  msg.type = comm::MessageType::kLoadExpertState;
  msg.request_id = next_request_++;
  msg.layer = static_cast<std::uint32_t>(layer);
  msg.expert = static_cast<std::uint32_t>(expert);
  msg.payload = std::move(state);
  exchange(w, std::move(msg));
}

void MasterProcess::attach_fault_injector(comm::FaultInjector* injector) {
  injector_ = injector;
  for (std::size_t w = 0; w < links_.size(); ++w) {
    links_[w]->set_fault_injector(injector_, w);
  }
}

bool MasterProcess::probe_worker(std::size_t w) {
  VELA_CHECK(w < workers_.size());
  if (links_[w]->to_worker.closed() || links_[w]->to_master.closed()) {
    return false;
  }
  // One retransmission: a single dropped or corrupted ack must not condemn
  // a live worker. Truly dead workers usually hit the closed-channel fast
  // path above and never pay these timeouts.
  RetryPolicy policy = retry_policy_;
  policy.max_retries = 1;
  return rlinks_[w]->probe(next_request_++, &policy);
}

void MasterProcess::snapshot_experts() {
  if (!spec_template_.lora.enabled) return;
  // Post every snapshot request up front so worker-side state packing for
  // later experts overlaps with receiving earlier replies, then collect in
  // request order (ReliableLink stashes out-of-order arrivals). Same
  // messages, same bytes, same retry semantics as the serial
  // exchange-per-expert loop — only the waiting overlaps.
  struct Outstanding {
    ExpertKey key;
    std::size_t worker;
    std::uint64_t request_id;
  };
  std::vector<Outstanding> outstanding;
  outstanding.reserve(num_layers_ * num_experts_);
  for (std::size_t l = 0; l < num_layers_; ++l) {
    for (std::size_t e = 0; e < num_experts_; ++e) {
      const ExpertKey key{static_cast<std::uint32_t>(l),
                          static_cast<std::uint32_t>(e)};
      comm::Message msg;
      msg.type = comm::MessageType::kSnapshotExpert;
      msg.request_id = next_request_++;
      msg.layer = key.layer;
      msg.expert = key.expert;
      const std::size_t worker = placement_.worker_of(l, e);
      const std::uint64_t id = msg.request_id;
      rlinks_[worker]->post(std::move(msg));
      outstanding.push_back({key, worker, id});
    }
  }
  for (const auto& o : outstanding) {
    snapshot_[o.key] = rlinks_[o.worker]
                           ->await(comm::MessageType::kExpertSnapshot,
                                   o.request_id)
                           .payload;
  }
  // Standbys track the snapshot: push the fresh state out so a fail-over
  // source is never staler than the master's own copy.
  for (const auto& [key, hosts] : standbys_) {
    for (const std::size_t s : hosts) {
      restore_expert(s, key, snapshot_[key]);
    }
  }
}

void MasterProcess::add_standby_replica(std::size_t layer, std::size_t expert,
                                        std::size_t worker) {
  VELA_CHECK(worker < workers_.size());
  const ExpertKey key{static_cast<std::uint32_t>(layer),
                      static_cast<std::uint32_t>(expert)};
  VELA_CHECK_MSG(worker != placement_.worker_of(layer, expert),
                 "standby for " << to_string(key)
                                << " would land on its own primary");
  auto& hosts = standbys_[key];
  for (const std::size_t s : hosts) VELA_CHECK(s != worker);

  Tensor state;
  if (auto it = snapshot_.find(key); it != snapshot_.end()) {
    state = it->second;
  } else if (spec_template_.lora.enabled) {
    comm::Message msg;
    msg.type = comm::MessageType::kSnapshotExpert;
    msg.request_id = next_request_++;
    msg.layer = key.layer;
    msg.expert = key.expert;
    state = exchange(placement_.worker_of(layer, expert), std::move(msg))
                .payload;
  }
  restore_expert(worker, key, std::move(state));
  hosts.push_back(worker);
}

void MasterProcess::drop_standby(const ExpertKey& key, std::size_t worker) {
  auto it = standbys_.find(key);
  if (it == standbys_.end()) return;
  auto& hosts = it->second;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts[i] != worker) continue;
    comm::Message fetch;
    fetch.type = comm::MessageType::kFetchExpert;
    fetch.request_id = next_request_++;
    fetch.layer = key.layer;
    fetch.expert = key.expert;
    exchange(worker, std::move(fetch));  // state discarded; primary is live
    hosts.erase(hosts.begin() + i);
    break;
  }
  if (hosts.empty()) standbys_.erase(it);
}

Tensor MasterProcess::recovery_state(const ExpertKey& key, std::size_t dead) {
  // Prefer a live standby: it was refreshed at the last snapshot and its
  // fetch is charged to the recovering step like any other traffic.
  if (auto it = standbys_.find(key); it != standbys_.end()) {
    for (const std::size_t s : it->second) {
      if (s == dead) continue;
      try {
        comm::Message msg;
        msg.type = comm::MessageType::kSnapshotExpert;
        msg.request_id = next_request_++;
        msg.layer = key.layer;
        msg.expert = key.expert;
        recovery_bytes_ += msg.wire_size();
        comm::Message reply = exchange(s, std::move(msg));
        recovery_bytes_ += reply.wire_size();
        return std::move(reply.payload);
      } catch (const WorkerFailedError&) {
        // Standby host is failing too; fall through to the next source.
      }
    }
  }
  if (auto it = snapshot_.find(key); it != snapshot_.end()) return it->second;
  return {};  // fresh from the seed — lossy, but the step still completes
}

void MasterProcess::restore_expert(std::size_t w, const ExpertKey& key,
                                   Tensor state) {
  comm::Message msg;
  msg.type = comm::MessageType::kRestoreExpert;
  msg.request_id = next_request_++;
  msg.layer = key.layer;
  msg.expert = key.expert;
  msg.payload = std::move(state);
  recovery_bytes_ += msg.wire_size();
  recovery_bytes_ += exchange(w, std::move(msg)).wire_size();
}

void MasterProcess::respawn_worker(std::size_t w) {
  VELA_CHECK(w < workers_.size());
  VELA_LOG_INFO("master") << "respawning worker " << w;
  // Tear down whatever is left: close both directions (unblocks a wedged
  // thread) and join. join() is a no-op if the thread already exited.
  links_[w]->close();
  workers_[w]->join();

  auto fresh = comm::make_duplex_link(
      transport_, topology_.master_node(), topology_.worker_node(w), &meter_);
  if (injector_ != nullptr) fresh->set_fault_injector(injector_, w);
  links_[w] = std::move(fresh);
  rlinks_[w]->reset(links_[w].get());

  WorkerSpec spec = spec_template_;
  spec.worker_id = w;
  spec.node = topology_.worker_node(w);
  // Start empty: every expert is reinstalled over the wire so recovery
  // traffic is measured, exactly like migration traffic.
  workers_[w] = std::make_unique<ExpertWorker>(spec, links_[w].get(),
                                               std::vector<ExpertKey>{});
  workers_[w]->start();
  ++workers_recovered_;

  for (const auto& [l, e] : placement_.experts_of(w)) {
    const ExpertKey key{static_cast<std::uint32_t>(l),
                        static_cast<std::uint32_t>(e)};
    restore_expert(w, key, recovery_state(key, w));
  }
  // Standby replicas that lived on the dead worker are rebuilt from the
  // current primaries (or the master snapshot when a primary is also down).
  for (auto& [key, hosts] : standbys_) {
    for (const std::size_t s : hosts) {
      if (s != w) continue;
      restore_expert(w, key, recovery_state(key, w));
    }
  }
}

std::size_t MasterProcess::recover_step() {
  // Everything in flight is void: replies may be lost, duplicated or stale.
  for (auto& rl : rlinks_) rl->abandon_outstanding();

  std::size_t respawned = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!probe_worker(w)) {
      respawn_worker(w);
      ++respawned;
    }
  }
  // Discard the in-flight step on the survivors (fresh respawns have
  // nothing to discard, but the abort is idempotent and cheap).
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    comm::Message msg;
    msg.type = comm::MessageType::kAbortStep;
    msg.request_id = next_request_++;
    try {
      exchange(w, std::move(msg));
    } catch (const WorkerFailedError&) {
      // Died between probe and abort: respawn; the fresh worker needs no
      // abort.
      respawn_worker(w);
      ++respawned;
    }
  }
  return respawned;
}

FaultStats MasterProcess::fault_stats() const {
  FaultStats total;
  for (const auto& rl : rlinks_) {
    const FaultStats& s = rl->stats();
    total.retransmissions += s.retransmissions;
    total.timeouts += s.timeouts;
    total.corrupt_dropped += s.corrupt_dropped;
    total.duplicates_discarded += s.duplicates_discarded;
  }
  return total;
}

void MasterProcess::shutdown() {
  if (down_) return;
  down_ = true;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    comm::Message msg;
    msg.type = comm::MessageType::kShutdown;
    // Best effort: a severed link or an already-dead worker returns false,
    // which is fine — the close below guarantees the thread exits.
    links_[w]->to_worker.send(std::move(msg));
  }
  // close() wakes any worker blocked in receive() once its backlog drains,
  // so join() cannot hang even for workers that never saw the kShutdown.
  for (auto& link : links_) link->close();
  for (auto& worker : workers_) worker->join();
}

}  // namespace vela::core
