#include "core/master.h"

#include <algorithm>

#include "comm/peer_listener.h"
#include "util/check.h"
#include "util/logging.h"

namespace vela::core {

MasterProcess::MasterProcess(const cluster::ClusterTopology& topology,
                             const WorkerSpec& spec_template,
                             placement::Placement placement,
                             std::size_t num_layers, std::size_t num_experts,
                             comm::TransportKind transport)
    : topology_(topology),
      transport_(comm::resolve_transport(transport)),
      meter_(&topology_),
      placement_(std::move(placement)),
      spec_template_(spec_template),
      num_layers_(num_layers),
      num_experts_(num_experts) {
  VELA_CHECK(placement_.num_layers() == num_layers &&
             placement_.num_experts() == num_experts);
  const std::size_t n = topology_.num_workers();
  const std::size_t master_node = topology_.master_node();

  links_.reserve(n);
  workers_.reserve(n);
  rlinks_.reserve(n);
  respawn_counts_.assign(n, 0);
  dead_.assign(n, false);
  for (std::size_t w = 0; w < n; ++w) {
    links_.push_back(comm::make_duplex_link(
        transport_, master_node, topology_.worker_node(w), &meter_));
    WorkerSpec spec = spec_template_;
    spec.worker_id = w;
    spec.node = topology_.worker_node(w);
    std::vector<ExpertKey> assigned;
    for (const auto& [l, e] : placement_.experts_of(w)) {
      assigned.push_back(
          {static_cast<std::uint32_t>(l), static_cast<std::uint32_t>(e)});
    }
    workers_.push_back(std::make_unique<ExpertWorker>(
        spec, links_.back().get(), assigned, &meter_));
    workers_.back()->start();
    rlinks_.push_back(
        std::make_unique<ReliableLink>(w, links_.back().get(), &retry_policy_));
  }
  std::vector<ReliableLink*> rlink_ptrs;
  for (auto& rl : rlinks_) rlink_ptrs.push_back(rl.get());
  broker_ = std::make_unique<ExpertBroker>(
      rlink_ptrs, &placement_, num_layers, spec_template_.wire_bits,
      spec_template_.quantize_wire, spec_template_.wire_dtype,
      spec_template_.q8_block);
  resolve_paging();
}

MasterProcess::MasterProcess(const cluster::ClusterTopology& topology,
                             const WorkerSpec& spec_template,
                             placement::Placement placement,
                             std::size_t num_layers, std::size_t num_experts,
                             const RemoteFleetConfig& remote)
    : topology_(topology),
      transport_(comm::TransportKind::kSocket),
      meter_(&topology_),
      placement_(std::move(placement)),
      spec_template_(spec_template),
      num_layers_(num_layers),
      num_experts_(num_experts),
      remote_(true) {
  VELA_CHECK(placement_.num_layers() == num_layers &&
             placement_.num_experts() == num_experts);
  VELA_CHECK_MSG(remote.listener != nullptr,
                 "a remote fleet needs a PeerListener to adopt workers from");
  const std::size_t n = topology_.num_workers();
  const std::size_t master_node = topology_.master_node();

  links_.reserve(n);
  workers_.reserve(n);
  rlinks_.reserve(n);
  respawn_counts_.assign(n, 0);
  dead_.assign(n, false);
  for (std::size_t w = 0; w < n; ++w) {
    auto link = comm::make_master_remote_link(
        *remote.listener, static_cast<std::uint32_t>(w),
        placement_.experts_of(w).size(), master_node,
        topology_.worker_node(w), &meter_, remote.accept_timeout,
        remote.reconnect, remote.clock);
    VELA_CHECK_MSG(link != nullptr,
                   "worker " << w << " never dialed in (waited "
                             << remote.accept_timeout.count() << "ms)");
    links_.push_back(std::move(link));
    // The worker runtime lives in its own process (core/node_runtime.h);
    // this slot only marks the rank as occupied.
    workers_.push_back(nullptr);
    rlinks_.push_back(
        std::make_unique<ReliableLink>(w, links_.back().get(), &retry_policy_));
  }
  std::vector<ReliableLink*> rlink_ptrs;
  for (auto& rl : rlinks_) rlink_ptrs.push_back(rl.get());
  broker_ = std::make_unique<ExpertBroker>(
      rlink_ptrs, &placement_, num_layers, spec_template_.wire_bits,
      spec_template_.quantize_wire, spec_template_.wire_dtype,
      spec_template_.q8_block);
  resolve_paging();
  VELA_LOG_INFO("master") << "remote fleet assembled: " << n
                          << " worker process(es)";
}

void MasterProcess::resolve_paging() {
  // The same resolution every in-process worker's store performs (spec
  // overrides env); a remote vela_node resolves its own environment, which
  // the launcher exports identically, so the master's view matches.
  store::StoreConfig cfg;
  cfg.budget = spec_template_.expert_budget;
  cfg.dir = spec_template_.store_dir;
  cfg.dtype = spec_template_.store_dtype;
  paging_ = cfg.resolved().bounded();
  broker_->set_store_hints(paging_);
}

void MasterProcess::set_store_priorities(Tensor priorities) {
  VELA_CHECK_MSG(priorities.size() == num_layers_ * num_experts_,
                 "store priorities need one score per (layer, expert): got "
                     << priorities.size() << ", want "
                     << num_layers_ * num_experts_);
  store_priorities_ = std::move(priorities);
  if (!paging_) return;  // unbounded stores ignore priorities; save the bytes
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (dead_[w]) continue;
    comm::Message msg;
    msg.type = comm::MessageType::kStorePriorities;
    msg.request_id = next_request_++;
    msg.layer = static_cast<std::uint32_t>(num_layers_);
    msg.expert = static_cast<std::uint32_t>(num_experts_);
    msg.payload = store_priorities_;
    exchange(w, std::move(msg));
  }
}

MasterProcess::~MasterProcess() { shutdown(); }

comm::Message MasterProcess::exchange(std::size_t worker, comm::Message msg) {
  const comm::MessageType reply_type = expected_reply_type(msg.type);
  const std::uint64_t id = msg.request_id;
  rlinks_[worker]->post(std::move(msg));
  return rlinks_[worker]->await(reply_type, id);
}

void MasterProcess::broadcast_optimizer_step(std::uint32_t step,
                                             float scheduled_lr) {
  std::vector<std::uint64_t> ids(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (dead_[w]) continue;  // degraded fleet: dead slots host no experts
    comm::Message msg;
    msg.type = comm::MessageType::kOptimizerStep;
    msg.request_id = ids[w] = next_request_++;
    msg.step = step;
    if (scheduled_lr >= 0.0f) {
      msg.payload = Tensor::full({1}, scheduled_lr);
    }
    rlinks_[w]->post(std::move(msg));
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (dead_[w]) continue;
    rlinks_[w]->await(comm::MessageType::kOptimizerStepDone, ids[w]);
  }
}

void MasterProcess::apply_placement(const placement::Placement& next) {
  VELA_CHECK(next.num_layers() == placement_.num_layers() &&
             next.num_experts() == placement_.num_experts());
  std::size_t moved = 0;
  for (std::size_t l = 0; l < next.num_layers(); ++l) {
    for (std::size_t e = 0; e < next.num_experts(); ++e) {
      const std::size_t from = placement_.worker_of(l, e);
      const std::size_t to = next.worker_of(l, e);
      if (from == to) continue;
      VELA_CHECK_MSG(!dead_[from] && !dead_[to],
                     "apply_placement would migrate ("
                         << l << "," << e << ") across dead worker "
                         << (dead_[from] ? from : to)
                         << "; use degrade_to for post-failure moves");
      ++moved;
      const ExpertKey key{static_cast<std::uint32_t>(l),
                          static_cast<std::uint32_t>(e)};
      // A standby replica on the destination would collide with the
      // migrating primary; retire it first.
      drop_standby(key, to);

      comm::Message fetch;
      fetch.type = comm::MessageType::kFetchExpert;
      fetch.request_id = next_request_++;
      fetch.layer = key.layer;
      fetch.expert = key.expert;
      comm::Message state = exchange(from, std::move(fetch));

      comm::Message install;
      install.type = comm::MessageType::kInstallExpert;
      install.request_id = next_request_++;
      install.layer = key.layer;
      install.expert = key.expert;
      install.payload = std::move(state.payload);
      exchange(to, std::move(install));
    }
  }
  placement_ = next;
  broker_->set_placement(&placement_);
  VELA_LOG_INFO("master") << "applied new placement; migrated " << moved
                          << " experts";
}

Tensor MasterProcess::query_expert_state(std::size_t layer,
                                         std::size_t expert) {
  const std::size_t w = placement_.worker_of(layer, expert);
  comm::Message msg;
  msg.type = comm::MessageType::kQueryExpert;
  msg.request_id = next_request_++;
  msg.layer = static_cast<std::uint32_t>(layer);
  msg.expert = static_cast<std::uint32_t>(expert);
  return exchange(w, std::move(msg)).payload;
}

void MasterProcess::load_expert_state(std::size_t layer, std::size_t expert,
                                      Tensor state) {
  const std::size_t w = placement_.worker_of(layer, expert);
  comm::Message msg;
  msg.type = comm::MessageType::kLoadExpertState;
  msg.request_id = next_request_++;
  msg.layer = static_cast<std::uint32_t>(layer);
  msg.expert = static_cast<std::uint32_t>(expert);
  msg.payload = std::move(state);
  exchange(w, std::move(msg));
}

void MasterProcess::attach_fault_injector(comm::FaultInjector* injector) {
  injector_ = injector;
  for (std::size_t w = 0; w < links_.size(); ++w) {
    links_[w]->set_fault_injector(injector_, w);
  }
}

void MasterProcess::set_clock(util::Clock* clock) {
  clock_ = clock != nullptr ? clock : &util::system_clock();
  for (auto& rl : rlinks_) rl->set_clock(clock_);
}

bool MasterProcess::probe_worker(std::size_t w) {
  VELA_CHECK(w < workers_.size());
  if (dead_[w]) return false;
  if (links_[w]->to_worker.closed() || links_[w]->to_master.closed()) {
    return false;
  }
  // One retransmission: a single dropped or corrupted ack must not condemn
  // a live worker. Truly dead workers usually hit the closed-channel fast
  // path above and never pay these timeouts.
  RetryPolicy policy = retry_policy_;
  policy.max_retries = 1;
  return rlinks_[w]->probe(next_request_++, &policy);
}

void MasterProcess::snapshot_experts() {
  if (!spec_template_.lora.enabled) return;
  // Post every snapshot request up front so worker-side state packing for
  // later experts overlaps with receiving earlier replies, then collect in
  // request order (ReliableLink stashes out-of-order arrivals). Same
  // messages, same bytes, same retry semantics as the serial
  // exchange-per-expert loop — only the waiting overlaps.
  struct Outstanding {
    ExpertKey key;
    std::size_t worker;
    std::uint64_t request_id;
  };
  std::vector<Outstanding> outstanding;
  outstanding.reserve(num_layers_ * num_experts_);
  for (std::size_t l = 0; l < num_layers_; ++l) {
    for (std::size_t e = 0; e < num_experts_; ++e) {
      const ExpertKey key{static_cast<std::uint32_t>(l),
                          static_cast<std::uint32_t>(e)};
      const std::size_t worker = placement_.worker_of(l, e);
      // A window exists between declaring a worker dead and degrading the
      // placement off it; experts still mapped there keep their previous
      // snapshot (they will be restored from it during the degrade).
      if (dead_[worker]) continue;
      comm::Message msg;
      msg.type = comm::MessageType::kSnapshotExpert;
      msg.request_id = next_request_++;
      msg.layer = key.layer;
      msg.expert = key.expert;
      const std::uint64_t id = msg.request_id;
      rlinks_[worker]->post(std::move(msg));
      outstanding.push_back({key, worker, id});
    }
  }
  for (const auto& o : outstanding) {
    snapshot_[o.key] = rlinks_[o.worker]
                           ->await(comm::MessageType::kExpertSnapshot,
                                   o.request_id)
                           .payload;
  }
  // Standbys track the snapshot: push the fresh state out so a fail-over
  // source is never staler than the master's own copy.
  for (const auto& [key, hosts] : standbys_) {
    for (const std::size_t s : hosts) {
      restore_expert(s, key, snapshot_[key]);
    }
  }
}

void MasterProcess::add_standby_replica(std::size_t layer, std::size_t expert,
                                        std::size_t worker) {
  VELA_CHECK(worker < workers_.size());
  const ExpertKey key{static_cast<std::uint32_t>(layer),
                      static_cast<std::uint32_t>(expert)};
  VELA_CHECK_MSG(worker != placement_.worker_of(layer, expert),
                 "standby for " << to_string(key)
                                << " would land on its own primary");
  auto& hosts = standbys_[key];
  for (const std::size_t s : hosts) VELA_CHECK(s != worker);

  Tensor state;
  if (auto it = snapshot_.find(key); it != snapshot_.end()) {
    state = it->second;
  } else if (spec_template_.lora.enabled) {
    comm::Message msg;
    msg.type = comm::MessageType::kSnapshotExpert;
    msg.request_id = next_request_++;
    msg.layer = key.layer;
    msg.expert = key.expert;
    state = exchange(placement_.worker_of(layer, expert), std::move(msg))
                .payload;
  }
  restore_expert(worker, key, std::move(state));
  hosts.push_back(worker);
}

void MasterProcess::drop_standby(const ExpertKey& key, std::size_t worker) {
  auto it = standbys_.find(key);
  if (it == standbys_.end()) return;
  auto& hosts = it->second;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts[i] != worker) continue;
    comm::Message fetch;
    fetch.type = comm::MessageType::kFetchExpert;
    fetch.request_id = next_request_++;
    fetch.layer = key.layer;
    fetch.expert = key.expert;
    exchange(worker, std::move(fetch));  // state discarded; primary is live
    hosts.erase(hosts.begin() + i);
    break;
  }
  if (hosts.empty()) standbys_.erase(it);
}

Tensor MasterProcess::recovery_state(const ExpertKey& key, std::size_t dead) {
  // Prefer a live standby: it was refreshed at the last snapshot and its
  // fetch is charged to the recovering step like any other traffic.
  if (auto it = standbys_.find(key); it != standbys_.end()) {
    for (const std::size_t s : it->second) {
      if (s == dead || dead_[s]) continue;
      try {
        comm::Message msg;
        msg.type = comm::MessageType::kSnapshotExpert;
        msg.request_id = next_request_++;
        msg.layer = key.layer;
        msg.expert = key.expert;
        recovery_bytes_ += msg.wire_size();
        comm::Message reply = exchange(s, std::move(msg));
        recovery_bytes_ += reply.wire_size();
        return std::move(reply.payload);
      } catch (const WorkerFailedError&) {
        // Standby host is failing too; fall through to the next source.
      }
    }
  }
  if (auto it = snapshot_.find(key); it != snapshot_.end()) return it->second;
  return {};  // fresh from the seed — lossy, but the step still completes
}

void MasterProcess::restore_expert(std::size_t w, const ExpertKey& key,
                                   Tensor state) {
  comm::Message msg;
  msg.type = comm::MessageType::kRestoreExpert;
  msg.request_id = next_request_++;
  msg.layer = key.layer;
  msg.expert = key.expert;
  msg.payload = std::move(state);
  recovery_bytes_ += msg.wire_size();
  recovery_bytes_ += exchange(w, std::move(msg)).wire_size();
}

void MasterProcess::respawn_worker(std::size_t w) {
  VELA_CHECK(w < workers_.size());
  VELA_CHECK_MSG(!dead_[w], "worker " << w << " was declared dead; "
                                      << "dead slots are never respawned");
  VELA_LOG_INFO("master") << "respawning worker " << w;
  // State restoration below is recovery traffic: meter it into the step's
  // recovery phase on top of the regular external/total accounting.
  comm::TrafficMeter::RecoveryScope recovery_scope(&meter_);
  // Tear down whatever is left: close both directions (unblocks a wedged
  // thread) and join. join() is a no-op if the thread already exited.
  links_[w]->close();
  if (workers_[w] != nullptr) workers_[w]->join();

  std::unique_ptr<comm::DuplexLink> fresh;
  if (remote_) {
    // respawn_within_budget gated on the hook; reaching here without one is
    // a driver bug, not a recoverable condition.
    VELA_CHECK_MSG(remote_respawner_ != nullptr,
                   "remote worker " << w << " respawn without a respawner");
    fresh = remote_respawner_(w);
    VELA_CHECK_MSG(fresh != nullptr,
                   "remote respawner produced no link for worker " << w);
  } else {
    fresh = comm::make_duplex_link(transport_, topology_.master_node(),
                                   topology_.worker_node(w), &meter_);
  }
  if (injector_ != nullptr) fresh->set_fault_injector(injector_, w);
  links_[w] = std::move(fresh);
  rlinks_[w]->reset(links_[w].get());

  if (!remote_) {
    WorkerSpec spec = spec_template_;
    spec.worker_id = w;
    spec.node = topology_.worker_node(w);
    // Start empty: every expert is reinstalled over the wire so recovery
    // traffic is measured, exactly like migration traffic. (A remote
    // replacement process also starts expert-less by contract — the
    // respawner relaunches vela_node with an empty assignment.)
    workers_[w] = std::make_unique<ExpertWorker>(
        spec, links_[w].get(), std::vector<ExpertKey>{}, &meter_);
    workers_[w]->start();
  }
  ++workers_recovered_;
  ++respawn_counts_[w];
  if (monitor_ != nullptr) monitor_->reset_peer(w);

  // Re-prime the fresh store with the last locality broadcast — the respawn
  // wiped it with everything else.
  if (paging_ && store_priorities_.size() > 0) {
    comm::Message prio;
    prio.type = comm::MessageType::kStorePriorities;
    prio.request_id = next_request_++;
    prio.layer = static_cast<std::uint32_t>(num_layers_);
    prio.expert = static_cast<std::uint32_t>(num_experts_);
    prio.payload = store_priorities_;
    recovery_bytes_ += prio.wire_size();
    recovery_bytes_ += exchange(w, std::move(prio)).wire_size();
  }

  for (const auto& [l, e] : placement_.experts_of(w)) {
    const ExpertKey key{static_cast<std::uint32_t>(l),
                        static_cast<std::uint32_t>(e)};
    restore_expert(w, key, recovery_state(key, w));
  }
  // Standby replicas that lived on the dead worker are rebuilt from the
  // current primaries (or the master snapshot when a primary is also down).
  for (auto& [key, hosts] : standbys_) {
    for (const std::size_t s : hosts) {
      if (s != w) continue;
      restore_expert(w, key, recovery_state(key, w));
    }
  }
}

bool MasterProcess::respawn_within_budget(std::size_t w) {
  if (dead_[w]) return false;
  if (remote_ && remote_respawner_ == nullptr) {
    // No way to restart a process from here: skip straight to the degrade
    // path. Killing a worker must shrink the fleet, never hang the step.
    VELA_LOG_WARN("master") << "remote worker " << w
                            << " failed and no respawner is installed; "
                            << "declaring it dead";
    mark_worker_dead(w);
    return false;
  }
  if (respawn_budget_ >= 0 && respawn_counts_[w] >= respawn_budget_) {
    VELA_LOG_WARN("master") << "worker " << w << " exhausted its respawn "
                            << "budget (" << respawn_budget_
                            << "); declaring it dead";
    mark_worker_dead(w);
    return false;
  }
  respawn_worker(w);
  return true;
}

RecoveryReport MasterProcess::recover_step() {
  // Everything in flight is void: replies may be lost, duplicated or stale.
  for (auto& rl : rlinks_) rl->abandon_outstanding();

  RecoveryReport report;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (dead_[w]) continue;
    if (probe_worker(w)) {
      if (monitor_ != nullptr) monitor_->record_ack(w);
      continue;
    }
    if (respawn_within_budget(w)) {
      ++report.respawned;
    } else {
      report.declared_dead.push_back(w);
    }
  }
  // Discard the in-flight step on the survivors (fresh respawns have
  // nothing to discard, but the abort is idempotent and cheap).
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (dead_[w]) continue;
    comm::Message msg;
    msg.type = comm::MessageType::kAbortStep;
    msg.request_id = next_request_++;
    try {
      exchange(w, std::move(msg));
    } catch (const WorkerFailedError&) {
      // Died between probe and abort: respawn (the fresh worker needs no
      // abort) or, out of budget, retire the slot.
      if (respawn_within_budget(w)) {
        ++report.respawned;
      } else {
        report.declared_dead.push_back(w);
      }
    }
  }
  return report;
}

std::size_t MasterProcess::num_live_workers() const {
  std::size_t live = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!dead_[w]) ++live;
  }
  return live;
}

void MasterProcess::mark_worker_dead(std::size_t w) {
  VELA_CHECK(w < workers_.size());
  if (dead_[w]) return;
  VELA_CHECK_MSG(num_live_workers() > 1,
                 "cannot declare the last live worker (" << w << ") dead");
  dead_[w] = true;
  if (monitor_ != nullptr) monitor_->mark_dead(w);
  // Tear down the channel and thread exactly like a respawn would, but
  // permanently: the slot is never rebuilt.
  links_[w]->close();
  if (workers_[w] != nullptr) workers_[w]->join();
  rlinks_[w]->abandon_outstanding();
  // Standby replicas hosted on the dead worker are gone with it.
  for (auto it = standbys_.begin(); it != standbys_.end();) {
    auto& hosts = it->second;
    hosts.erase(std::remove(hosts.begin(), hosts.end(), w), hosts.end());
    it = hosts.empty() ? standbys_.erase(it) : std::next(it);
  }
  VELA_LOG_WARN("master") << "worker " << w << " declared dead; "
                          << num_live_workers() << " worker(s) remain";
}

void MasterProcess::degrade_to(const placement::Placement& next) {
  VELA_CHECK(next.num_layers() == placement_.num_layers() &&
             next.num_experts() == placement_.num_experts());
  // Orphan migration is recovery traffic (metered into the recovery phase
  // on top of regular accounting) and tallied in recovery_bytes().
  comm::TrafficMeter::RecoveryScope recovery_scope(&meter_);
  std::size_t migrated = 0;
  for (std::size_t l = 0; l < next.num_layers(); ++l) {
    for (std::size_t e = 0; e < next.num_experts(); ++e) {
      const std::size_t from = placement_.worker_of(l, e);
      const std::size_t to = next.worker_of(l, e);
      if (from == to) {
        VELA_CHECK_MSG(!dead_[from], "degraded placement keeps ("
                                         << l << "," << e
                                         << ") on dead worker " << from);
        continue;
      }
      VELA_CHECK_MSG(dead_[from] && !dead_[to],
                     "degrade_to may only move orphans of dead workers to "
                     "live survivors; ("
                         << l << "," << e << ") moves " << from << " -> "
                         << to);
      const ExpertKey key{static_cast<std::uint32_t>(l),
                          static_cast<std::uint32_t>(e)};
      // Recover the state BEFORE retiring a standby on the destination: a
      // standby on `to` may itself be the best (freshest) recovery source.
      Tensor state = recovery_state(key, from);
      drop_standby(key, to);
      restore_expert(to, key, std::move(state));
      ++migrated;
    }
  }
  placement_ = next;
  broker_->set_placement(&placement_);
  VELA_LOG_INFO("master") << "degraded to " << num_live_workers()
                          << " worker(s); migrated " << migrated
                          << " orphaned expert(s)";
}

void MasterProcess::enable_heartbeat(const LivenessConfig& cfg,
                                     util::Clock* clock) {
  monitor_ = std::make_unique<HeartbeatMonitor>(
      workers_.size(), cfg, clock != nullptr ? clock : clock_);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (dead_[w]) monitor_->mark_dead(w);
  }
}

RecoveryReport MasterProcess::heartbeat_tick() {
  RecoveryReport report;
  if (monitor_ == nullptr) return report;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (dead_[w] || !monitor_->due(w)) continue;
    if (probe_worker(w)) {
      monitor_->record_ack(w);
      continue;
    }
    monitor_->record_miss(w);
    if (monitor_->state(w) == PeerState::kSuspect) {
      VELA_LOG_WARN("master") << "worker " << w << " is suspect ("
                              << monitor_->consecutive_misses(w)
                              << " consecutive missed heartbeat(s))";
    } else if (monitor_->state(w) == PeerState::kDead) {
      if (respawn_within_budget(w)) {
        ++report.respawned;
      } else {
        report.declared_dead.push_back(w);
      }
    }
  }
  return report;
}

FaultStats MasterProcess::fault_stats() const {
  FaultStats total;
  for (const auto& rl : rlinks_) {
    const FaultStats& s = rl->stats();
    total.retransmissions += s.retransmissions;
    total.timeouts += s.timeouts;
    total.corrupt_dropped += s.corrupt_dropped;
    total.duplicates_discarded += s.duplicates_discarded;
  }
  return total;
}

void MasterProcess::shutdown() {
  if (down_) return;
  down_ = true;
  // Detach the injector first: teardown traffic is not a fault target (a
  // fault injected into kShutdown could hang the join below), and the
  // injector — owned by the caller — may already be destroyed when
  // shutdown() runs from the destructor.
  if (injector_ != nullptr) {
    injector_ = nullptr;
    for (auto& link : links_) link->set_fault_injector(nullptr, 0);
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    comm::Message msg;
    msg.type = comm::MessageType::kShutdown;
    // Best effort: a severed link or an already-dead worker returns false,
    // which is fine — the close below guarantees the thread exits.
    links_[w]->to_worker.send(std::move(msg));
  }
  // close() wakes any worker blocked in receive() once its backlog drains,
  // so join() cannot hang even for workers that never saw the kShutdown.
  // Remote fleets have no threads to join — the kShutdown plus the goodbye
  // that close() sends let each vela_node process exit on its own.
  for (auto& link : links_) link->close();
  for (auto& worker : workers_) {
    if (worker != nullptr) worker->join();
  }
}

}  // namespace vela::core
