#include "core/master.h"

#include "util/check.h"
#include "util/logging.h"

namespace vela::core {

MasterProcess::MasterProcess(const cluster::ClusterTopology& topology,
                             const WorkerSpec& spec_template,
                             placement::Placement placement,
                             std::size_t num_layers, std::size_t num_experts)
    : topology_(topology), meter_(&topology_), placement_(std::move(placement)) {
  VELA_CHECK(placement_.num_layers() == num_layers &&
             placement_.num_experts() == num_experts);
  const std::size_t n = topology_.num_workers();
  const std::size_t master_node = topology_.master_node();

  links_.reserve(n);
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    links_.push_back(std::make_unique<comm::DuplexLink>(
        master_node, topology_.worker_node(w), &meter_));
    WorkerSpec spec = spec_template;
    spec.worker_id = w;
    spec.node = topology_.worker_node(w);
    std::vector<ExpertKey> assigned;
    for (const auto& [l, e] : placement_.experts_of(w)) {
      assigned.push_back(
          {static_cast<std::uint32_t>(l), static_cast<std::uint32_t>(e)});
    }
    workers_.push_back(
        std::make_unique<ExpertWorker>(spec, links_.back().get(), assigned));
    workers_.back()->start();
  }
  std::vector<comm::DuplexLink*> link_ptrs;
  for (auto& link : links_) link_ptrs.push_back(link.get());
  broker_ = std::make_unique<ExpertBroker>(link_ptrs, &placement_, num_layers,
                                           spec_template.wire_bits,
                                           spec_template.quantize_wire);
}

MasterProcess::~MasterProcess() { shutdown(); }

comm::Message MasterProcess::await(std::size_t worker,
                                   comm::MessageType expected,
                                   std::uint64_t request_id) {
  auto maybe = links_[worker]->to_master.receive();
  VELA_CHECK_MSG(maybe.has_value(), "worker " << worker << " channel closed");
  comm::Message reply = std::move(*maybe);
  VELA_CHECK_MSG(reply.type == expected && reply.request_id == request_id,
                 "protocol violation: expected " << message_type_name(expected)
                                                 << ", got "
                                                 << reply.to_string());
  return reply;
}

void MasterProcess::broadcast_optimizer_step(std::uint32_t step,
                                             float scheduled_lr) {
  std::vector<std::uint64_t> ids(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    comm::Message msg;
    msg.type = comm::MessageType::kOptimizerStep;
    msg.request_id = ids[w] = next_request_++;
    msg.step = step;
    if (scheduled_lr >= 0.0f) {
      msg.payload = Tensor::full({1}, scheduled_lr);
    }
    VELA_CHECK(links_[w]->to_worker.send(std::move(msg)));
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    await(w, comm::MessageType::kOptimizerStepDone, ids[w]);
  }
}

void MasterProcess::apply_placement(const placement::Placement& next) {
  VELA_CHECK(next.num_layers() == placement_.num_layers() &&
             next.num_experts() == placement_.num_experts());
  std::size_t moved = 0;
  for (std::size_t l = 0; l < next.num_layers(); ++l) {
    for (std::size_t e = 0; e < next.num_experts(); ++e) {
      const std::size_t from = placement_.worker_of(l, e);
      const std::size_t to = next.worker_of(l, e);
      if (from == to) continue;
      ++moved;
      comm::Message fetch;
      fetch.type = comm::MessageType::kFetchExpert;
      fetch.request_id = next_request_++;
      fetch.layer = static_cast<std::uint32_t>(l);
      fetch.expert = static_cast<std::uint32_t>(e);
      VELA_CHECK(links_[from]->to_worker.send(std::move(fetch)));
      comm::Message state = await(from, comm::MessageType::kExpertState,
                                  next_request_ - 1);

      comm::Message install;
      install.type = comm::MessageType::kInstallExpert;
      install.request_id = next_request_++;
      install.layer = static_cast<std::uint32_t>(l);
      install.expert = static_cast<std::uint32_t>(e);
      install.payload = std::move(state.payload);
      VELA_CHECK(links_[to]->to_worker.send(std::move(install)));
      await(to, comm::MessageType::kInstallExpertDone, next_request_ - 1);
    }
  }
  placement_ = next;
  broker_->set_placement(&placement_);
  VELA_LOG_INFO("master") << "applied new placement; migrated " << moved
                          << " experts";
}

Tensor MasterProcess::query_expert_state(std::size_t layer,
                                         std::size_t expert) {
  const std::size_t w = placement_.worker_of(layer, expert);
  comm::Message msg;
  msg.type = comm::MessageType::kQueryExpert;
  msg.request_id = next_request_++;
  msg.layer = static_cast<std::uint32_t>(layer);
  msg.expert = static_cast<std::uint32_t>(expert);
  VELA_CHECK(links_[w]->to_worker.send(std::move(msg)));
  return await(w, comm::MessageType::kExpertState, next_request_ - 1).payload;
}

void MasterProcess::load_expert_state(std::size_t layer, std::size_t expert,
                                      Tensor state) {
  const std::size_t w = placement_.worker_of(layer, expert);
  comm::Message msg;
  msg.type = comm::MessageType::kLoadExpertState;
  msg.request_id = next_request_++;
  msg.layer = static_cast<std::uint32_t>(layer);
  msg.expert = static_cast<std::uint32_t>(expert);
  msg.payload = std::move(state);
  VELA_CHECK(links_[w]->to_worker.send(std::move(msg)));
  await(w, comm::MessageType::kLoadExpertStateDone, next_request_ - 1);
}

void MasterProcess::shutdown() {
  if (down_) return;
  down_ = true;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    comm::Message msg;
    msg.type = comm::MessageType::kShutdown;
    links_[w]->to_worker.send(std::move(msg));
  }
  for (auto& worker : workers_) worker->join();
  for (auto& link : links_) link->close();
}

}  // namespace vela::core
