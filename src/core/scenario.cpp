#include "core/scenario.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace vela::core {

namespace {

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  VELA_CHECK_MSG(!value.empty(), "scenario: empty value for " << key);
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  VELA_CHECK_MSG(end != nullptr && *end == '\0',
                 "scenario: non-numeric value for " << key << ": " << value);
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

model::ModelConfig Scenario::model_config() const {
  model::ModelConfig cfg;
  if (model == "tiny_test") {
    cfg = model::ModelConfig::tiny_test();
  } else if (model == "tiny_mistral") {
    cfg = model::ModelConfig::tiny_mistral();
  } else {
    VELA_CHECK_MSG(false, "scenario: unknown model preset: " << model);
  }
  return cfg;
}

cluster::ClusterConfig Scenario::cluster_config() const {
  VELA_CHECK_MSG(workers >= 1, "scenario: needs at least one worker");
  cluster::ClusterConfig cfg = cluster::ClusterConfig::paper_testbed();
  cfg.num_nodes = workers + 1;  // master node + one node per worker
  cfg.gpus_per_node = 1;
  cfg.master_device = 0;
  cfg.master_exclusive = true;
  return cfg;
}

data::CorpusConfig Scenario::corpus_config() const {
  const std::size_t vocab = model_config().vocab;
  if (corpus == "wikitext") {
    return data::CorpusConfig::wikitext_like(vocab, corpus_domains);
  }
  if (corpus == "alpaca") {
    return data::CorpusConfig::alpaca_like(vocab, corpus_domains);
  }
  if (corpus == "shakespeare") {
    return data::CorpusConfig::shakespeare_like(vocab, corpus_domains);
  }
  if (corpus == "uniform") {
    return data::CorpusConfig::uniform(vocab, corpus_domains);
  }
  VELA_CHECK_MSG(false, "scenario: unknown corpus preset: " << corpus);
  return {};
}

VelaSystemConfig Scenario::system_config(bool remote) const {
  VelaSystemConfig cfg;
  cfg.model = model_config();
  cfg.cluster = cluster_config();
  cfg.seed = seed;
  cfg.wire_bits = wire_bits;
  cfg.quantize_wire = quantize_wire;
  cfg.wire_dtype = wire_dtype;
  cfg.q8_block = q8_block;
  cfg.transport =
      remote ? comm::TransportKind::kSocket : comm::TransportKind::kDefault;
  return cfg;
}

std::string Scenario::serialize() const {
  std::ostringstream out;
  out << "model=" << model << ";workers=" << workers << ";seed=" << seed
      << ";wire_bits=" << wire_bits << ";quantize_wire=" << (quantize_wire ? 1 : 0)
      << ";wire_dtype=" << comm::wire_dtype_name(wire_dtype)
      << ";q8_block=" << q8_block << ";corpus=" << corpus << ";corpus_seed=" << corpus_seed
      << ";corpus_domains=" << corpus_domains
      << ";dataset_sequences=" << dataset_sequences
      << ";sequence_length=" << sequence_length << ";batch_size=" << batch_size
      << ";batch_seed=" << batch_seed << ";steps=" << steps;
  return out.str();
}

Scenario Scenario::parse(const std::string& text) {
  Scenario sc;
  std::stringstream in(text);
  std::string pair;
  while (std::getline(in, pair, ';')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    VELA_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "scenario: malformed pair: " << pair);
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "model") {
      sc.model = value;
    } else if (key == "workers") {
      sc.workers = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "seed") {
      sc.seed = parse_u64(key, value);
    } else if (key == "wire_bits") {
      sc.wire_bits = static_cast<unsigned>(parse_u64(key, value));
    } else if (key == "quantize_wire") {
      sc.quantize_wire = parse_u64(key, value) != 0;
    } else if (key == "wire_dtype") {
      VELA_CHECK_MSG(!value.empty(), "scenario: empty value for " << key);
      sc.wire_dtype = comm::parse_wire_dtype(value);
    } else if (key == "q8_block") {
      sc.q8_block = static_cast<unsigned>(parse_u64(key, value));
    } else if (key == "corpus") {
      sc.corpus = value;
    } else if (key == "corpus_seed") {
      sc.corpus_seed = parse_u64(key, value);
    } else if (key == "corpus_domains") {
      sc.corpus_domains = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "dataset_sequences") {
      sc.dataset_sequences = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "sequence_length") {
      sc.sequence_length = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "batch_size") {
      sc.batch_size = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "batch_seed") {
      sc.batch_seed = parse_u64(key, value);
    } else if (key == "steps") {
      sc.steps = static_cast<std::size_t>(parse_u64(key, value));
    } else {
      VELA_CHECK_MSG(false, "scenario: unknown key: " << key);
    }
  }
  // Presets must resolve; surface a typo at parse time, not mid-run.
  (void)sc.model_config();
  (void)sc.corpus_config();
  return sc;
}

}  // namespace vela::core
