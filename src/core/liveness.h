// Heartbeat/liveness protocol for the master↔worker fabric (DESIGN.md §11).
//
// The PR-1 recovery layer only notices a sick worker when a training request
// to it times out — a worker that dies while idle (between steps, or hosting
// no expert on the current layer) stays undetected until traffic happens to
// touch it. The liveness layer closes that gap: the master probes every peer
// whose heartbeat deadline has expired (a kProbe/kProbeAck round trip over
// the existing ReliableLink, so it rides the same transport, metering and
// fault-injection path as real traffic on BOTH backends), and tracks each
// peer through a three-state machine:
//
//     healthy ──miss──▶ suspect ──misses──▶ dead
//        ▲                 │
//        └──────ack────────┘
//
// A peer is suspect after `suspect_after` consecutive missed probes and dead
// after `dead_after`; any ack snaps it back to healthy. Dead is terminal for
// the state machine — only the master's recovery path revives a peer (via
// reset_peer after a successful respawn) or retires it for good (degrade).
//
// Probing is driven synchronously from the master thread (heartbeat_tick at
// step boundaries), never from a background thread: the request/reply
// protocol on a DuplexLink is single-consumer, and a concurrent prober would
// race the broker for replies. That makes the whole module single-threaded
// by construction and keeps probe traffic deterministic — with a FakeClock,
// the exact probe schedule is reproducible bit for bit.
//
// Enabled by VELA_HEARTBEAT_MS=<interval> (or programmatically via
// FaultToleranceConfig::liveness). Off by default: healthy-run byte ledgers
// must stay identical to previous releases.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "util/clock.h"

namespace vela::core {

enum class PeerState : std::uint8_t { kHealthy, kSuspect, kDead };

[[nodiscard]] const char* peer_state_name(PeerState s);

struct LivenessConfig {
  // Probe a peer when this much clock time has passed since it was last
  // heard from. Zero disables the heartbeat layer entirely.
  std::chrono::milliseconds interval{0};
  int suspect_after = 1;  // consecutive misses before healthy → suspect
  int dead_after = 3;     // consecutive misses before suspect → dead
};

// Reads VELA_HEARTBEAT_MS (interval; unset or 0 = disabled). Thresholds
// keep their defaults — they are programmatic knobs.
[[nodiscard]] LivenessConfig liveness_config_from_env();

// Per-peer liveness state machine. Pure bookkeeping: callers decide when to
// probe (probe_due) and feed outcomes back (on_ack / on_miss).
class PeerHealth {
 public:
  PeerHealth() = default;
  PeerHealth(const LivenessConfig& cfg, util::Clock::time_point now)
      : cfg_(cfg), last_heard_(now) {}

  [[nodiscard]] PeerState state() const { return state_; }
  [[nodiscard]] int consecutive_misses() const { return misses_; }

  // True when the heartbeat interval has elapsed since the peer was last
  // heard from (or last probed). Dead peers are never due.
  [[nodiscard]] bool probe_due(util::Clock::time_point now) const {
    if (state_ == PeerState::kDead || cfg_.interval.count() <= 0) return false;
    return now - last_heard_ >= cfg_.interval;
  }

  void on_ack(util::Clock::time_point now) {
    if (state_ == PeerState::kDead) return;  // terminal; revive via reset()
    state_ = PeerState::kHealthy;
    misses_ = 0;
    last_heard_ = now;
  }

  void on_miss(util::Clock::time_point now) {
    if (state_ == PeerState::kDead) return;
    ++misses_;
    last_heard_ = now;  // the probe itself counts as a check; re-arm timer
    if (misses_ >= cfg_.dead_after) {
      state_ = PeerState::kDead;
    } else if (misses_ >= cfg_.suspect_after) {
      state_ = PeerState::kSuspect;
    }
  }

  // Unconditional transitions for the recovery path: a respawned peer starts
  // healthy; a peer whose channel is gone is dead no matter the miss count.
  void reset(util::Clock::time_point now) {
    state_ = PeerState::kHealthy;
    misses_ = 0;
    last_heard_ = now;
  }
  void mark_dead() {
    state_ = PeerState::kDead;
    misses_ = cfg_.dead_after;
  }

 private:
  LivenessConfig cfg_{};
  PeerState state_ = PeerState::kHealthy;
  int misses_ = 0;
  util::Clock::time_point last_heard_{};
};

// The master's view of all peers. Single-threaded (master thread only; see
// header comment). Does not send probes itself — MasterProcess drives the
// probe/ack traffic and reports outcomes here.
class HeartbeatMonitor {
 public:
  HeartbeatMonitor(std::size_t num_peers, const LivenessConfig& cfg,
                   util::Clock* clock);

  [[nodiscard]] bool enabled() const { return cfg_.interval.count() > 0; }
  [[nodiscard]] const LivenessConfig& config() const { return cfg_; }

  [[nodiscard]] bool due(std::size_t peer) const;
  void record_ack(std::size_t peer);
  void record_miss(std::size_t peer);
  void mark_dead(std::size_t peer);
  void reset_peer(std::size_t peer);

  [[nodiscard]] PeerState state(std::size_t peer) const;
  [[nodiscard]] int consecutive_misses(std::size_t peer) const;
  [[nodiscard]] std::size_t count(PeerState s) const;
  [[nodiscard]] std::size_t num_peers() const { return peers_.size(); }

 private:
  LivenessConfig cfg_;
  util::Clock* clock_;
  std::vector<PeerHealth> peers_;
};

}  // namespace vela::core
