// Fault-tolerant request/reply layer over a master↔worker DuplexLink.
//
// The raw Endpoint is an unreliable transport once a FaultInjector is in
// play: messages can vanish, arrive twice, or arrive corrupted, and the
// channel itself can die. ReliableLink turns that into the semantics the
// broker and master need:
//
//   * every request keeps a retransmit copy until its reply arrives;
//   * await() enforces a per-request timeout and retransmits with
//     exponential backoff (bounded by RetryPolicy::max_retries);
//   * corrupted replies (checksum mismatch) are dropped and re-requested;
//   * duplicate replies — from duplication faults or from retransmits the
//     worker answered twice — are recognized and discarded;
//   * replies to *other* outstanding requests that arrive out of order are
//     stashed and handed to their own await() later;
//   * a closed channel or an exhausted retry budget raises
//     WorkerFailedError, the structured signal the recovery path (worker
//     respawn + step retry) is built on. Genuine protocol violations —
//     replies that match nothing ever sent — still raise CheckError.
//
// Retransmission is idempotent because workers dedupe requests by
// (type, request_id) and replay the cached reply instead of re-executing.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "comm/endpoint.h"
#include "util/clock.h"

namespace vela::core {

struct RetryPolicy {
  // First-attempt reply timeout; each retransmission multiplies it by
  // `backoff`. Generous by default — on a healthy link the timer never
  // fires, so only genuinely lost messages pay it.
  std::chrono::milliseconds timeout{1000};
  int max_retries = 3;   // retransmissions after the first send
  double backoff = 2.0;  // timeout growth per retransmission
};

// Counters the runtime surfaces through StepReport.
struct FaultStats {
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t corrupt_dropped = 0;
  std::uint64_t duplicates_discarded = 0;
};

// A worker stopped answering (dead channel or exhausted retries). Carries
// the worker index so MasterProcess/VelaSystem can respawn exactly it.
class WorkerFailedError : public std::runtime_error {
 public:
  WorkerFailedError(std::size_t worker, const std::string& what)
      : std::runtime_error("worker " + std::to_string(worker) +
                           " failed: " + what),
        worker_(worker) {}

  std::size_t worker() const { return worker_; }

 private:
  std::size_t worker_;
};

// The reply type each request type is answered with (kShutdown and friends
// that have no reply map to themselves).
comm::MessageType expected_reply_type(comm::MessageType request);

class ReliableLink {
 public:
  // `clock` drives every await deadline (nullptr = system clock); tests
  // inject a FakeClock so timeout/backoff schedules resolve in virtual
  // time instead of wall time.
  ReliableLink(std::size_t worker, comm::DuplexLink* link,
               const RetryPolicy* policy, util::Clock* clock = nullptr);

  // Re-attaches after a worker respawn: the fresh link starts with no
  // outstanding requests; everything in flight on the old link is abandoned
  // (late duplicates of it will be discarded, not treated as violations).
  void reset(comm::DuplexLink* link);

  // Swaps the time source (nullptr = system clock). Safe between awaits;
  // MasterProcess::set_clock fans this out to every link.
  void set_clock(util::Clock* clock);

  comm::DuplexLink* link() { return link_; }
  std::size_t worker() const { return worker_; }
  const RetryPolicy& policy() const { return *policy_; }
  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

  // Sends a request, keeping a retransmit copy until the reply arrives.
  // Throws WorkerFailedError if the channel is severed.
  void post(comm::Message msg);

  // Blocks for the reply to `request_id` of the given type, retransmitting
  // on timeout. `on_retransmit(bytes)` (optional) lets the caller charge
  // retransmitted bytes to its own ledgers; the TrafficMeter sees them
  // automatically. `policy_override` (optional) replaces the link's policy
  // for this await only (probes use one short attempt).
  comm::Message await(comm::MessageType expected, std::uint64_t request_id,
                      const std::function<void(std::uint64_t)>& on_retransmit =
                          nullptr,
                      const RetryPolicy* policy_override = nullptr);

  // Abandons every outstanding request: their eventual replies are treated
  // as discardable duplicates. Called before aborting a failed step.
  void abandon_outstanding();

  // Liveness check: true if the worker answers a kProbe within
  // `policy_override` (or the link policy). Never throws.
  bool probe(std::uint64_t request_id,
             const RetryPolicy* policy_override = nullptr);

  // Insertion-ordered recently-completed keys (tests pin this order: the
  // eviction sequence must not depend on unordered_map iteration order).
  const std::deque<std::uint64_t>& recent_keys_for_testing() const {
    return recent_order_;
  }

 private:
  static std::uint64_t key_of(comm::MessageType type, std::uint64_t id) {
    return (static_cast<std::uint64_t>(type) << 56) ^ id;
  }
  void remember(std::uint64_t key);

  std::size_t worker_;
  comm::DuplexLink* link_;
  const RetryPolicy* policy_;
  util::Clock* clock_;
  FaultStats stats_;
  // request_id → retransmit copy of the request still awaiting its reply.
  std::unordered_map<std::uint64_t, comm::Message> outstanding_;
  // (reply type, id) → reply that arrived while awaiting a different one.
  std::unordered_map<std::uint64_t, comm::Message> stash_;
  // Recently completed (reply type, id) keys; duplicates of these are
  // silently discarded. Bounded FIFO.
  std::unordered_set<std::uint64_t> recent_;
  std::deque<std::uint64_t> recent_order_;
};

}  // namespace vela::core
