#include "core/expert_broker.h"

#include <functional>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace vela::core {

ExpertBroker::ExpertBroker(std::vector<ReliableLink*> rlinks,
                           const placement::Placement* placement,
                           std::size_t num_layers, unsigned wire_bits,
                           bool quantize_wire)
    : rlinks_(std::move(rlinks)),
      placement_(placement),
      num_layers_(num_layers),
      wire_bits_(wire_bits),
      quantize_wire_(quantize_wire && wire_bits == 16) {
  VELA_CHECK(!rlinks_.empty());
  VELA_CHECK(placement_ != nullptr);
  for (auto* rlink : rlinks_) VELA_CHECK(rlink != nullptr);
  begin_step();
}

void ExpertBroker::set_placement(const placement::Placement* placement) {
  VELA_CHECK(placement != nullptr);
  placement_ = placement;
}

void ExpertBroker::begin_step() {
  const std::size_t n = rlinks_.size();
  fwd_phases_.assign(num_layers_, comm::MasterWorkerPhase{
                                      std::vector<std::uint64_t>(n, 0),
                                      std::vector<std::uint32_t>(n, 0)});
  bwd_phases_.assign(num_layers_, comm::MasterWorkerPhase{
                                      std::vector<std::uint64_t>(n, 0),
                                      std::vector<std::uint32_t>(n, 0)});
}

comm::VelaStepRecord ExpertBroker::finish_step() {
  comm::VelaStepRecord record;
  record.phases.reserve(2 * num_layers_);
  for (std::size_t l = 0; l < num_layers_; ++l) {
    record.phases.push_back(fwd_phases_[l]);
  }
  for (std::size_t l = num_layers_; l-- > 0;) {
    record.phases.push_back(bwd_phases_[l]);
  }
  begin_step();
  return record;
}

void ExpertBroker::account(std::size_t layer, bool backward_phase,
                           std::size_t worker, std::uint64_t bytes,
                           std::uint32_t messages) {
  VELA_CHECK(layer < num_layers_ && worker < rlinks_.size());
  auto& phase = backward_phase ? bwd_phases_[layer] : fwd_phases_[layer];
  phase.bytes[worker] += bytes;
  phase.messages[worker] += messages;
}

comm::Message ExpertBroker::await_reply(std::size_t worker,
                                        comm::MessageType expected,
                                        std::uint64_t request_id,
                                        std::size_t layer,
                                        bool backward_phase) {
  return rlinks_[worker]->await(
      expected, request_id, [&](std::uint64_t bytes) {
        account(layer, backward_phase, worker, bytes, 1);
      });
}

ag::Variable ExpertBroker::expert_forward(std::size_t layer,
                                          std::size_t expert,
                                          const ag::Variable& xs) {
  auto out = experts_forward(layer, {{expert, xs}});
  return out[0];
}

std::vector<ag::Variable> ExpertBroker::experts_forward(
    std::size_t layer,
    const std::vector<std::pair<std::size_t, ag::Variable>>& groups) {
  struct Outstanding {
    std::size_t worker;
    std::uint64_t request_id;
    std::size_t expert;
  };
  // Overlap dispatch serialization with itself: the per-group wire payloads
  // (fp16 quantization, or a plain copy) are built as parallel tasks before
  // the sequential post loop, so expert compute on the workers starts while
  // later groups are still being packed. Posting order, accounting order and
  // byte counts are exactly the serial ones — only the packing is concurrent.
  std::vector<Tensor> wire(groups.size());
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(groups.size());
    for (std::size_t i = 0; i < groups.size(); ++i) {
      tasks.push_back([this, &groups, &wire, i] {
        const Tensor& x = groups[i].second.value();
        wire[i] = quantize_wire_ ? ops::to_half_precision(x) : x;
      });
    }
    util::ThreadPool::global().run(tasks);
  }

  // Token dispatcher: send every group before receiving anything, so all
  // workers compute concurrently.
  std::vector<Outstanding> outstanding;
  outstanding.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::size_t expert = groups[i].first;
    const std::size_t worker = placement_->worker_of(layer, expert);
    const std::uint64_t request_id = next_request_++;
    comm::Message msg;
    msg.type = comm::MessageType::kExpertForward;
    msg.request_id = request_id;
    msg.layer = static_cast<std::uint32_t>(layer);
    msg.expert = static_cast<std::uint32_t>(expert);
    msg.payload = std::move(wire[i]);
    msg.wire_bits = wire_bits_;
    account(layer, /*backward=*/false, worker, msg.wire_size(), 1);
    rlinks_[worker]->post(std::move(msg));
    outstanding.push_back({worker, request_id, expert});
  }

  // Token receiver: collect results in send order (FIFO per worker).
  std::vector<ag::Variable> results;
  results.reserve(groups.size());
  for (std::size_t i = 0; i < outstanding.size(); ++i) {
    const Outstanding& o = outstanding[i];
    comm::Message reply =
        await_reply(o.worker, comm::MessageType::kExpertForwardResult,
                    o.request_id, layer, /*backward=*/false);
    account(layer, /*backward=*/false, o.worker, reply.wire_size(), 1);

    // Wire the remote computation into the master tape: the backward closure
    // is the gradient dispatcher/receiver.
    const std::size_t worker = o.worker;
    const std::uint64_t request_id = o.request_id;
    const std::uint32_t expert32 = static_cast<std::uint32_t>(o.expert);
    const std::uint32_t layer32 = static_cast<std::uint32_t>(layer);
    results.push_back(ag::make_op(
        std::move(reply.payload), {groups[i].second},
        [this, worker, request_id, layer32, expert32](ag::detail::Node& n) {
          comm::Message grad_msg;
          grad_msg.type = comm::MessageType::kExpertBackward;
          grad_msg.request_id = request_id;
          grad_msg.layer = layer32;
          grad_msg.expert = expert32;
          grad_msg.payload =
              quantize_wire_ ? ops::to_half_precision(n.grad) : n.grad;
          grad_msg.wire_bits = wire_bits_;
          account(layer32, /*backward=*/true, worker, grad_msg.wire_size(), 1);
          rlinks_[worker]->post(std::move(grad_msg));
          comm::Message dx =
              await_reply(worker, comm::MessageType::kExpertBackwardResult,
                          request_id, layer32, /*backward=*/true);
          account(layer32, /*backward=*/true, worker, dx.wire_size(), 1);
          n.parents[0]->accumulate_grad(dx.payload);
        }));
  }
  return results;
}

}  // namespace vela::core
