#include "core/expert_broker.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace vela::core {

namespace {

// Fixed row partition of a group into at most `k` chunks (no empty chunks).
// Depends only on (rows, k), so the chunk schedule — and with it every
// accounting and accumulation order — is identical across runs.
std::vector<std::size_t> chunk_row_counts(std::size_t rows, std::size_t k) {
  const std::size_t n = std::max<std::size_t>(1, std::min(k, rows));
  std::vector<std::size_t> out(n, rows / n);
  for (std::size_t c = 0; c < rows % n; ++c) ++out[c];
  return out;
}

}  // namespace

std::size_t overlap_chunks_from_env() {
  const char* env = std::getenv("VELA_OVERLAP");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v <= 1) return 0;
  return static_cast<std::size_t>(std::min<long>(v, 255));
}

ExpertBroker::ExpertBroker(std::vector<ReliableLink*> rlinks,
                           const placement::Placement* placement,
                           std::size_t num_layers, unsigned wire_bits,
                           bool quantize_wire, comm::WireDtype wire_dtype,
                           unsigned q8_block)
    : rlinks_(std::move(rlinks)),
      placement_(placement),
      num_layers_(num_layers),
      codec_(comm::WireCodec::resolve(wire_dtype, wire_bits, quantize_wire,
                                      q8_block)),
      ledger_(num_layers, 1, rlinks_.size()) {
  VELA_CHECK(!rlinks_.empty());
  VELA_CHECK(placement_ != nullptr);
  for (auto* rlink : rlinks_) VELA_CHECK(rlink != nullptr);
}

void ExpertBroker::set_placement(const placement::Placement* placement) {
  VELA_CHECK(placement != nullptr);
  placement_ = placement;
}

void ExpertBroker::set_overlap_chunks(std::size_t chunks) {
  overlap_chunks_ = std::min<std::size_t>(chunks, 255);
}

void ExpertBroker::begin_step() { ledger_.reset(); }

comm::VelaStepRecord ExpertBroker::finish_step() {
  // take_vela() emits phases forward 0..L−1 then backward L−1..0 and resets.
  return ledger_.take_vela();
}

void ExpertBroker::account(std::size_t layer, bool backward_phase,
                           std::size_t worker, std::uint64_t bytes,
                           std::uint32_t messages) {
  ledger_.charge(layer, backward_phase, 0, worker, bytes, messages);
}

comm::Message ExpertBroker::await_reply(std::size_t worker,
                                        comm::MessageType expected,
                                        std::uint64_t request_id,
                                        std::size_t layer,
                                        bool backward_phase) {
  return rlinks_[worker]->await(
      expected, request_id, [&](std::uint64_t bytes) {
        account(layer, backward_phase, worker, bytes, 1);
      });
}

ag::Variable ExpertBroker::expert_forward(std::size_t layer,
                                          std::size_t expert,
                                          const ag::Variable& xs) {
  auto out = experts_forward(layer, {{expert, xs}});
  return out[0];
}

void ExpertBroker::send_prefetch_hints(
    std::size_t layer,
    const std::vector<std::pair<std::size_t, ag::Variable>>& groups) {
  // One hint per involved worker, workers ascending, naming every expert the
  // dispatch below will route to it. Raw sends on the underlying link: a
  // ReliableLink::post would track the hint as outstanding forever (nothing
  // ever awaits it), and a lost hint costs only the overlap it would have
  // bought — the demand path still pages the expert in.
  std::map<std::size_t, std::vector<std::size_t>> by_worker;
  for (const auto& [expert, xs] : groups) {
    by_worker[placement_->worker_of(layer, expert)].push_back(expert);
  }
  for (const auto& [worker, experts] : by_worker) {
    comm::Message msg;
    msg.type = comm::MessageType::kPrefetchExperts;
    msg.request_id = next_request_++;
    msg.layer = static_cast<std::uint32_t>(layer);
    msg.payload = Tensor({experts.size()});
    for (std::size_t i = 0; i < experts.size(); ++i) {
      msg.payload[i] = static_cast<float>(experts[i]);
    }
    account(layer, /*backward=*/false, worker, msg.wire_size(), 1);
    // A severed channel surfaces on the very next post(); the hint itself is
    // allowed to vanish silently.
    (void)rlinks_[worker]->link()->to_worker.send(std::move(msg));
  }
}

std::vector<ag::Variable> ExpertBroker::experts_forward(
    std::size_t layer,
    const std::vector<std::pair<std::size_t, ag::Variable>>& groups) {
  if (store_hints_ && !groups.empty()) send_prefetch_hints(layer, groups);
  if (overlap_chunks_ >= 2) return experts_forward_chunked(layer, groups);
  struct Outstanding {
    std::size_t worker;
    std::uint64_t request_id;
    std::size_t expert;
  };
  // Overlap dispatch serialization with itself: the per-group wire payloads
  // (fp16/int8 quantization, or a plain copy) are built as parallel tasks before
  // the sequential post loop, so expert compute on the workers starts while
  // later groups are still being packed. Posting order, accounting order and
  // byte counts are exactly the serial ones — only the packing is concurrent.
  std::vector<Tensor> wire(groups.size());
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(groups.size());
    for (std::size_t i = 0; i < groups.size(); ++i) {
      tasks.push_back([this, &groups, &wire, i] {
        wire[i] = codec_.apply(groups[i].second.value());
      });
    }
    util::ThreadPool::global().run(tasks);
  }

  // Token dispatcher: send every group before receiving anything, so all
  // workers compute concurrently.
  std::vector<Outstanding> outstanding;
  outstanding.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::size_t expert = groups[i].first;
    const std::size_t worker = placement_->worker_of(layer, expert);
    const std::uint64_t request_id = next_request_++;
    comm::Message msg;
    msg.type = comm::MessageType::kExpertForward;
    msg.request_id = request_id;
    msg.layer = static_cast<std::uint32_t>(layer);
    msg.expert = static_cast<std::uint32_t>(expert);
    msg.payload = std::move(wire[i]);
    codec_.stamp(msg);
    account(layer, /*backward=*/false, worker, msg.wire_size(), 1);
    rlinks_[worker]->post(std::move(msg));
    outstanding.push_back({worker, request_id, expert});
  }

  // Token receiver: collect results in send order (FIFO per worker).
  std::vector<ag::Variable> results;
  results.reserve(groups.size());
  for (std::size_t i = 0; i < outstanding.size(); ++i) {
    const Outstanding& o = outstanding[i];
    comm::Message reply =
        await_reply(o.worker, comm::MessageType::kExpertForwardResult,
                    o.request_id, layer, /*backward=*/false);
    account(layer, /*backward=*/false, o.worker, reply.wire_size(), 1);

    // Wire the remote computation into the master tape: the backward closure
    // is the gradient dispatcher/receiver.
    const std::size_t worker = o.worker;
    const std::uint64_t request_id = o.request_id;
    const std::uint32_t expert32 = static_cast<std::uint32_t>(o.expert);
    const std::uint32_t layer32 = static_cast<std::uint32_t>(layer);
    results.push_back(ag::make_op(
        std::move(reply.payload), {groups[i].second},
        [this, worker, request_id, layer32, expert32](ag::detail::Node& n) {
          comm::Message grad_msg;
          grad_msg.type = comm::MessageType::kExpertBackward;
          grad_msg.request_id = request_id;
          grad_msg.layer = layer32;
          grad_msg.expert = expert32;
          grad_msg.payload = codec_.apply(n.grad);
          codec_.stamp(grad_msg);
          account(layer32, /*backward=*/true, worker, grad_msg.wire_size(), 1);
          rlinks_[worker]->post(std::move(grad_msg));
          comm::Message dx =
              await_reply(worker, comm::MessageType::kExpertBackwardResult,
                          request_id, layer32, /*backward=*/true);
          account(layer32, /*backward=*/true, worker, dx.wire_size(), 1);
          n.parents[0]->accumulate_grad(dx.payload);
        }));
  }
  return results;
}

comm::Message ExpertBroker::await_train_reply(
    std::size_t worker, std::uint64_t request_id, std::size_t layer,
    const std::vector<comm::Message>& train) {
  ReliableLink& rlink = *rlinks_[worker];
  const RetryPolicy& policy = rlink.policy();
  RetryPolicy attempt = policy;
  attempt.max_retries = 0;  // escalation below replaces per-request retries
  for (int escalations = 0;; ++escalations) {
    try {
      return rlink.await(comm::MessageType::kExpertBackwardResult, request_id,
                         /*on_retransmit=*/nullptr, &attempt);
    } catch (const WorkerFailedError&) {
      if (escalations >= policy.max_retries) throw;
      rlink.stats().retransmissions += train.size();
      for (const comm::Message& m : train) {
        account(layer, /*backward=*/true, worker, m.wire_size(),
                m.chunk_index == 0 ? 1 : 0);
        rlink.post(comm::Message(m));
      }
      attempt.timeout = std::chrono::milliseconds(static_cast<std::int64_t>(
          static_cast<double>(attempt.timeout.count()) * policy.backoff));
    }
  }
}

std::vector<ag::Variable> ExpertBroker::experts_forward_chunked(
    std::size_t layer,
    const std::vector<std::pair<std::size_t, ag::Variable>>& groups) {
  struct GroupPlan {
    std::size_t expert = 0;
    std::size_t worker = 0;
    std::uint64_t base_id = 0;                // fragment c has id base_id + c
    std::vector<std::size_t> rows;            // per-chunk row counts
    std::vector<std::size_t> begin;           // per-chunk first row
    std::vector<Tensor> wire;                 // per-chunk request payloads
    std::vector<Tensor> result;               // per-chunk reply payloads
  };
  std::vector<GroupPlan> plans(groups.size());
  std::size_t max_chunks = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    GroupPlan& p = plans[g];
    p.expert = groups[g].first;
    p.worker = placement_->worker_of(layer, p.expert);
    p.rows = chunk_row_counts(groups[g].second.value().rows(), overlap_chunks_);
    p.begin.resize(p.rows.size());
    std::size_t at = 0;
    for (std::size_t c = 0; c < p.rows.size(); ++c) {
      p.begin[c] = at;
      at += p.rows[c];
    }
    p.base_id = next_request_;
    next_request_ += p.rows.size();
    p.wire.resize(p.rows.size());
    p.result.resize(p.rows.size());
    max_chunks = std::max(max_chunks, p.rows.size());
  }

  // Pack every chunk's wire payload as parallel tasks. Slice-then-quantize
  // equals quantize-then-slice bitwise for every dtype: fp16 rounding is
  // elementwise, and the int8 tier's blocks never span rows (qblock.h), so
  // a row slice carries exactly its own blocks and scales.
  {
    std::vector<std::function<void()>> tasks;
    for (std::size_t g = 0; g < plans.size(); ++g) {
      for (std::size_t c = 0; c < plans[g].rows.size(); ++c) {
        tasks.push_back([this, &groups, &plans, g, c] {
          GroupPlan& p = plans[g];
          Tensor slice =
              ops::slice_rows(groups[g].second.value(), p.begin[c], p.rows[c]);
          p.wire[c] = codec_.transforms ? codec_.apply(slice) : std::move(slice);
        });
      }
    }
    util::ThreadPool::global().run(tasks);
  }

  // Dispatch pipeline: chunk-major post order, so every worker holds its
  // groups' fragment 0 and computes it while fragment 1 is still in flight.
  // Fragment 0 carries the logical transfer's header (and its message count);
  // continuations are charged payload-only, keeping the ledger invariant in K.
  for (std::size_t c = 0; c < max_chunks; ++c) {
    for (GroupPlan& p : plans) {
      if (c >= p.rows.size()) continue;
      comm::Message msg;
      msg.type = comm::MessageType::kExpertForward;
      msg.request_id = p.base_id + c;
      msg.layer = static_cast<std::uint32_t>(layer);
      msg.expert = static_cast<std::uint32_t>(p.expert);
      msg.chunk_index = static_cast<std::uint8_t>(c);
      msg.chunk_count = static_cast<std::uint8_t>(p.rows.size());
      msg.payload = std::move(p.wire[c]);
      codec_.stamp(msg);
      account(layer, /*backward=*/false, p.worker, msg.wire_size(),
              c == 0 ? 1 : 0);
      rlinks_[p.worker]->post(std::move(msg));
    }
  }

  // Collect replies in post order. A retransmitted fragment re-pays exactly
  // its own wire size (continuations stay header-free and message-free).
  for (std::size_t c = 0; c < max_chunks; ++c) {
    for (GroupPlan& p : plans) {
      if (c >= p.rows.size()) continue;
      const std::uint32_t msgs = c == 0 ? 1 : 0;
      comm::Message reply = rlinks_[p.worker]->await(
          comm::MessageType::kExpertForwardResult, p.base_id + c,
          [&](std::uint64_t bytes) {
            account(layer, /*backward=*/false, p.worker, bytes, msgs);
          });
      account(layer, /*backward=*/false, p.worker, reply.wire_size(),
              reply.chunk_index == 0 ? 1 : 0);
      p.result[c] = std::move(reply.payload);
    }
  }

  // Merge in fixed chunk order (per-chunk forward equals full-batch forward
  // row-for-row: the expert kernels are row-local) and wire each group into
  // the master tape. The backward closure ships dL/dy as the same fragment
  // train and reassembles dL/dx from the per-fragment replies.
  std::vector<ag::Variable> results;
  results.reserve(groups.size());
  for (std::size_t g = 0; g < plans.size(); ++g) {
    GroupPlan& p = plans[g];
    Tensor merged = ops::concat_rows(p.result);
    const std::size_t worker = p.worker;
    const std::uint64_t base_id = p.base_id;
    const std::uint32_t expert32 = static_cast<std::uint32_t>(p.expert);
    const std::uint32_t layer32 = static_cast<std::uint32_t>(layer);
    results.push_back(ag::make_op(
        std::move(merged), {groups[g].second},
        [this, worker, base_id, layer32, expert32, rows = p.rows,
         begin = p.begin](ag::detail::Node& n) {
          const std::size_t k = rows.size();
          std::vector<comm::Message> train(k);
          for (std::size_t c = 0; c < k; ++c) {
            comm::Message& m = train[c];
            m.type = comm::MessageType::kExpertBackward;
            m.request_id = base_id + c;
            m.layer = layer32;
            m.expert = expert32;
            m.chunk_index = static_cast<std::uint8_t>(c);
            m.chunk_count = static_cast<std::uint8_t>(k);
            Tensor slice = ops::slice_rows(n.grad, begin[c], rows[c]);
            m.payload =
                codec_.transforms ? codec_.apply(slice) : std::move(slice);
            codec_.stamp(m);
            account(layer32, /*backward=*/true, worker, m.wire_size(),
                    c == 0 ? 1 : 0);
            rlinks_[worker]->post(comm::Message(m));  // keep the train copy
          }
          std::vector<Tensor> dx(k);
          for (std::size_t c = 0; c < k; ++c) {
            comm::Message reply =
                await_train_reply(worker, base_id + c, layer32, train);
            account(layer32, /*backward=*/true, worker, reply.wire_size(),
                    c == 0 ? 1 : 0);
            dx[c] = std::move(reply.payload);
          }
          n.parents[0]->accumulate_grad(ops::concat_rows(dx));
        }));
  }
  return results;
}

}  // namespace vela::core
