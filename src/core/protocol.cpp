#include "core/protocol.h"

#include <algorithm>

#include "util/check.h"

namespace vela::core {

Tensor pack_trainable(const nn::Module& module) {
  auto params = module.trainable_parameters();
  std::sort(params.begin(), params.end(),
            [](const nn::Parameter& a, const nn::Parameter& b) {
              return a.name < b.name;
            });
  std::size_t total = 0;
  for (const auto& p : params) total += p.var.value().size();
  VELA_CHECK_MSG(total > 0, "module has no trainable parameters to pack");
  Tensor packed({total});
  std::size_t offset = 0;
  for (const auto& p : params) {
    const Tensor& v = p.var.value();
    std::copy(v.data(), v.data() + v.size(), packed.data() + offset);
    offset += v.size();
  }
  return packed;
}

void unpack_trainable(const Tensor& packed, nn::Module& module) {
  auto params = module.trainable_parameters();
  std::sort(params.begin(), params.end(),
            [](const nn::Parameter& a, const nn::Parameter& b) {
              return a.name < b.name;
            });
  std::size_t total = 0;
  for (const auto& p : params) total += p.var.value().size();
  VELA_CHECK_MSG(packed.size() == total,
                 "packed state size " << packed.size()
                                      << " != module trainable size " << total);
  std::size_t offset = 0;
  for (auto& p : params) {
    Tensor& v = p.var.mutable_value();
    std::copy(packed.data() + offset, packed.data() + offset + v.size(),
              v.data());
    offset += v.size();
  }
}

Tensor pack_full_state(const nn::Module& module, const nn::AdamW* optimizer) {
  const Tensor params = pack_trainable(module);
  const Tensor opt =
      optimizer != nullptr ? optimizer->pack_state() : Tensor{};
  Tensor packed({1 + params.size() + opt.size()});
  packed[0] = static_cast<float>(params.size());
  std::copy(params.data(), params.data() + params.size(), packed.data() + 1);
  if (opt.size() > 0) {
    std::copy(opt.data(), opt.data() + opt.size(),
              packed.data() + 1 + params.size());
  }
  return packed;
}

void unpack_full_state(const Tensor& packed, nn::Module& module,
                       nn::AdamW* optimizer) {
  VELA_CHECK_MSG(packed.size() >= 1, "full state blob is empty");
  const std::size_t param_count = static_cast<std::size_t>(packed[0]);
  VELA_CHECK_MSG(1 + param_count <= packed.size(),
                 "full state blob truncated: declares " << param_count
                                                        << " params in "
                                                        << packed.size()
                                                        << " floats");
  Tensor params({param_count});
  std::copy(packed.data() + 1, packed.data() + 1 + param_count, params.data());
  unpack_trainable(params, module);
  const std::size_t opt_size = packed.size() - 1 - param_count;
  if (optimizer != nullptr && opt_size > 0) {
    Tensor opt({opt_size});
    std::copy(packed.data() + 1 + param_count,
              packed.data() + packed.size(), opt.data());
    optimizer->load_state(opt);
  }
}

std::string to_string(const ExpertKey& key) {
  return "(" + std::to_string(key.layer) + ", " + std::to_string(key.expert) +
         ")";
}

}  // namespace vela::core
