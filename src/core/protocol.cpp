#include "core/protocol.h"

#include <algorithm>

#include "util/check.h"

namespace vela::core {

Tensor pack_trainable(const nn::Module& module) {
  auto params = module.trainable_parameters();
  std::sort(params.begin(), params.end(),
            [](const nn::Parameter& a, const nn::Parameter& b) {
              return a.name < b.name;
            });
  std::size_t total = 0;
  for (const auto& p : params) total += p.var.value().size();
  VELA_CHECK_MSG(total > 0, "module has no trainable parameters to pack");
  Tensor packed({total});
  std::size_t offset = 0;
  for (const auto& p : params) {
    const Tensor& v = p.var.value();
    std::copy(v.data(), v.data() + v.size(), packed.data() + offset);
    offset += v.size();
  }
  return packed;
}

void unpack_trainable(const Tensor& packed, nn::Module& module) {
  auto params = module.trainable_parameters();
  std::sort(params.begin(), params.end(),
            [](const nn::Parameter& a, const nn::Parameter& b) {
              return a.name < b.name;
            });
  std::size_t total = 0;
  for (const auto& p : params) total += p.var.value().size();
  VELA_CHECK_MSG(packed.size() == total,
                 "packed state size " << packed.size()
                                      << " != module trainable size " << total);
  std::size_t offset = 0;
  for (auto& p : params) {
    Tensor& v = p.var.mutable_value();
    std::copy(packed.data() + offset, packed.data() + offset + v.size(),
              v.data());
    offset += v.size();
  }
}

std::string to_string(const ExpertKey& key) {
  return "(" + std::to_string(key.layer) + ", " + std::to_string(key.expert) +
         ")";
}

}  // namespace vela::core
