#include "core/step_simulator.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace vela::core {

VelaTrafficModel::VelaTrafficModel(const cluster::ClusterTopology* topology,
                                   VelaTrafficModelConfig cfg)
    : topology_(topology), cfg_(cfg) {
  VELA_CHECK(topology != nullptr);
  VELA_CHECK(cfg_.bytes_per_token > 0);
}

comm::VelaStepRecord VelaTrafficModel::account_step(
    const std::vector<moe::RoutePlan>& plans,
    const placement::Placement& placement) const {
  const std::size_t num_layers = plans.size();
  const std::size_t n = topology_->num_workers();
  VELA_CHECK(placement.num_layers() == num_layers);

  // One phase per block per direction; forward and backward move the same
  // volume (features out + outputs back ≙ gradients out + input-grads back).
  std::vector<comm::MasterWorkerPhase> per_block(n ? num_layers : 0);
  for (std::size_t l = 0; l < num_layers; ++l) {
    per_block[l].bytes.assign(n, 0);
    per_block[l].messages.assign(n, 0);
    const moe::RoutePlan& plan = plans[l];
    VELA_CHECK(plan.num_experts == placement.num_experts());
    for (std::size_t e = 0; e < plan.num_experts; ++e) {
      const std::size_t tokens = plan.expert_tokens[e].size();
      if (tokens == 0) continue;
      const std::size_t worker = placement.worker_of(l, e);
      // Request (features) + reply (outputs), each header + payload.
      per_block[l].bytes[worker] +=
          2 * (cfg_.header_bytes +
               static_cast<std::uint64_t>(tokens) * cfg_.bytes_per_token);
      per_block[l].messages[worker] += 2;
    }
  }

  comm::VelaStepRecord record;
  record.phases.reserve(2 * num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    record.phases.push_back(per_block[l]);
  }
  for (std::size_t l = num_layers; l-- > 0;) {
    record.phases.push_back(per_block[l]);
  }
  return record;
}

comm::VelaStepRecord VelaTrafficModel::account_step_replicated(
    const std::vector<moe::RoutePlan>& plans,
    const placement::ReplicatedPlacement& placement,
    const placement::PlacementProblem& problem) const {
  const std::size_t num_layers = plans.size();
  const std::size_t n = topology_->num_workers();
  VELA_CHECK(placement.num_layers() == num_layers);
  VELA_CHECK(problem.num_workers == n);

  std::vector<comm::MasterWorkerPhase> per_block(num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    per_block[l].bytes.assign(n, 0);
    per_block[l].messages.assign(n, 0);
    const moe::RoutePlan& plan = plans[l];
    for (std::size_t e = 0; e < plan.num_experts; ++e) {
      const std::size_t tokens = plan.expert_tokens[e].size();
      if (tokens == 0) continue;
      const auto& replicas = placement.replicas(l, e);
      const auto fractions = placement.split_fractions(l, e, problem);
      // Largest-remainder apportionment of `tokens` over the replicas.
      std::vector<std::size_t> share(replicas.size());
      std::vector<std::pair<double, std::size_t>> remainders;
      std::size_t assigned = 0;
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        const double exact = fractions[i] * static_cast<double>(tokens);
        share[i] = static_cast<std::size_t>(exact);
        assigned += share[i];
        remainders.emplace_back(exact - static_cast<double>(share[i]), i);
      }
      std::sort(remainders.rbegin(), remainders.rend());
      for (std::size_t k = 0; assigned < tokens; ++k, ++assigned) {
        ++share[remainders[k % remainders.size()].second];
      }
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (share[i] == 0) continue;
        per_block[l].bytes[replicas[i]] +=
            2 * (cfg_.header_bytes +
                 static_cast<std::uint64_t>(share[i]) * cfg_.bytes_per_token);
        per_block[l].messages[replicas[i]] += 2;
      }
    }
  }

  comm::VelaStepRecord record;
  record.phases.reserve(2 * num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    record.phases.push_back(per_block[l]);
  }
  for (std::size_t l = num_layers; l-- > 0;) {
    record.phases.push_back(per_block[l]);
  }
  return record;
}

std::uint64_t VelaTrafficModel::external_bytes(
    const comm::VelaStepRecord& record) const {
  const std::size_t master_node = topology_->master_node();
  std::uint64_t total = 0;
  for (const auto& phase : record.phases) {
    for (std::size_t w = 0; w < phase.bytes.size(); ++w) {
      if (topology_->worker_node(w) != master_node) total += phase.bytes[w];
    }
  }
  return total;
}

ModeledStepTimes modeled_step_times(const comm::CommClock& clock,
                                    const comm::VelaStepRecord& record,
                                    std::size_t overlap_chunks) {
  ModeledStepTimes times;
  times.sequential_s = clock.vela_step_seconds(record);
  times.overlap_s = clock.vela_overlap_step_seconds(record, overlap_chunks);
  return times;
}

}  // namespace vela::core
