// The pre-fine-tuning profiling pass (§IV-B, "prior to fine-tuning, we pass
// the dataset through the model to generate a probability matrix P").
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/topology.h"
#include "model/transformer.h"
#include "moe/routing_stats.h"
#include "placement/placement.h"

namespace vela::core {

// Runs `dataset` through the model in inference mode (forward only, no
// parameter updates) and returns the accumulated routing statistics.
moe::RoutingStats profile_expert_access(
    model::MoETransformer& model,
    const std::vector<std::vector<std::size_t>>& dataset,
    std::size_t batch_size);

// Assembles the Eq. (8)–(11) problem instance from a profiled probability
// matrix. `tokens_per_step` is K = batch size × sequence length;
// `capacity_slack` scales the uniform worker capacities (≥ 1).
placement::PlacementProblem build_placement_problem(
    const Tensor& probability, const model::ModelConfig& model_cfg,
    const cluster::ClusterTopology& topology, double tokens_per_step,
    double capacity_slack);

}  // namespace vela::core
