// Shared definitions of the master↔worker protocol: worker specifications
// and adapter-state (de)serialization for expert migration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/wire_codec.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "store/expert_store.h"
#include "tensor/tensor.h"

namespace vela::core {

// Expert identity and state serialization live in the store layer now
// (store/expert_state.h) — the pager serializes the same images the
// protocol ships. Re-exported here so protocol call sites are unchanged.
using store::ExpertKey;
using store::pack_full_state;
using store::pack_trainable;
using store::to_string;
using store::unpack_full_state;
using store::unpack_trainable;

// Everything a worker process needs to construct and train experts locally.
// Frozen base weights never travel: they are derived from
// nn::expert_seed(base_seed, layer, expert) on whichever device hosts the
// expert, so migration only ships the (small) LoRA adapter state.
struct WorkerSpec {
  std::size_t worker_id = 0;
  std::size_t node = 0;
  std::size_t model_dim = 0;
  std::size_t hidden_dim = 0;
  nn::LoRAConfig lora;
  nn::AdamWConfig adamw;
  std::uint64_t base_seed = 1;
  unsigned wire_bits = 32;
  // When true and wire_bits == 16, payloads are rounded to fp16-representable
  // values before transmission (simulating a half-precision transport; off
  // by default so tests can assert bit-exact dense/distributed equivalence).
  bool quantize_wire = false;
  // Quantized wire tier (DESIGN.md §13). kDefault defers to VELA_WIRE_DTYPE
  // and then to the legacy pair above; every process of a fleet resolves the
  // same comm::WireCodec from these four knobs, so master, workers and
  // remote vela_nodes can never disagree on the dispatch dtype.
  comm::WireDtype wire_dtype = comm::WireDtype::kDefault;
  unsigned q8_block = 0;  // int8 block length; 0 → VELA_WIRE_BLOCK, then 64
  // Expert store knobs (DESIGN.md §15). budget -1 → VELA_EXPERT_BUDGET,
  // then unbounded; dir "" → VELA_STORE_DIR, then the system temp dir;
  // dtype kDefault → VELA_STORE_DTYPE, then fp32. Remote vela_nodes resolve
  // from their own environment (the launcher propagates it), so every
  // process of a fleet sees the same store behavior.
  long long expert_budget = -1;
  std::string store_dir;
  store::StoreDtype store_dtype = store::StoreDtype::kDefault;
};

}  // namespace vela::core
