// Shared definitions of the master↔worker protocol: worker specifications
// and adapter-state (de)serialization for expert migration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/wire_codec.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace vela::core {

// Everything a worker process needs to construct and train experts locally.
// Frozen base weights never travel: they are derived from
// nn::expert_seed(base_seed, layer, expert) on whichever device hosts the
// expert, so migration only ships the (small) LoRA adapter state.
struct WorkerSpec {
  std::size_t worker_id = 0;
  std::size_t node = 0;
  std::size_t model_dim = 0;
  std::size_t hidden_dim = 0;
  nn::LoRAConfig lora;
  nn::AdamWConfig adamw;
  std::uint64_t base_seed = 1;
  unsigned wire_bits = 32;
  // When true and wire_bits == 16, payloads are rounded to fp16-representable
  // values before transmission (simulating a half-precision transport; off
  // by default so tests can assert bit-exact dense/distributed equivalence).
  bool quantize_wire = false;
  // Quantized wire tier (DESIGN.md §13). kDefault defers to VELA_WIRE_DTYPE
  // and then to the legacy pair above; every process of a fleet resolves the
  // same comm::WireCodec from these four knobs, so master, workers and
  // remote vela_nodes can never disagree on the dispatch dtype.
  comm::WireDtype wire_dtype = comm::WireDtype::kDefault;
  unsigned q8_block = 0;  // int8 block length; 0 → VELA_WIRE_BLOCK, then 64
};

// Packs a module's *trainable* parameters into one flat rank-1 tensor, in
// name order (deterministic across processes).
Tensor pack_trainable(const nn::Module& module);

// Inverse of pack_trainable: writes `packed` back into the module's
// trainable parameters. Sizes must match exactly.
void unpack_trainable(const Tensor& packed, nn::Module& module);

// Full recovery state of a hosted expert: [param count, params...,
// optimizer state...]. Unlike pack_trainable this also carries the AdamW
// step count and moment buffers, so restoring onto a respawned worker
// resumes training bit-exactly (adapter-only restores reset the moments and
// perturb every later update). `optimizer` may be null (frozen experts).
Tensor pack_full_state(const nn::Module& module, const nn::AdamW* optimizer);
void unpack_full_state(const Tensor& packed, nn::Module& module,
                       nn::AdamW* optimizer);

// Key for an expert within the whole model.
struct ExpertKey {
  std::uint32_t layer = 0;
  std::uint32_t expert = 0;

  bool operator==(const ExpertKey&) const = default;
  bool operator<(const ExpertKey& o) const {
    return layer != o.layer ? layer < o.layer : expert < o.expert;
  }
};

std::string to_string(const ExpertKey& key);

}  // namespace vela::core
