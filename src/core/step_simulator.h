// Byte-accurate accounting of one VELA fine-tuning step from routing plans —
// the shape-preset twin of the real broker's ledger.
//
// Given the routing decisions of a step (real or from moe::SyntheticRouter)
// and a placement, produces exactly the per-phase per-worker byte counts the
// live ExpertBroker would have recorded, without moving any tensors. An
// integration test pins this equivalence (simulated bytes == measured bytes
// on the runnable model), which is what licenses using the simulator for the
// Mixtral-scale Figs. 5 and 6.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/topology.h"
#include "comm/comm_clock.h"
#include "comm/message.h"
#include "moe/gate.h"
#include "placement/placement.h"
#include "placement/replication.h"

namespace vela::core {

struct VelaTrafficModelConfig {
  std::size_t bytes_per_token = 0;  // H · b / 8, one token one direction
  std::uint64_t header_bytes = comm::Message::kHeaderBytes;
};

class VelaTrafficModel {
 public:
  VelaTrafficModel(const cluster::ClusterTopology* topology,
                   VelaTrafficModelConfig cfg);

  // Per-phase ledger of one step (forward blocks 0..L−1, backward L−1..0).
  comm::VelaStepRecord account_step(const std::vector<moe::RoutePlan>& plans,
                                    const placement::Placement& placement) const;

  // Replicated variant: each expert group splits across its replicas with
  // the placement's bandwidth-proportional fractions (largest-remainder
  // integer apportionment, so split token counts sum exactly).
  comm::VelaStepRecord account_step_replicated(
      const std::vector<moe::RoutePlan>& plans,
      const placement::ReplicatedPlacement& placement,
      const placement::PlacementProblem& problem) const;

  // Cross-node bytes of a record (workers off the master's node).
  std::uint64_t external_bytes(const comm::VelaStepRecord& record) const;

 private:
  const cluster::ClusterTopology* topology_;
  VelaTrafficModelConfig cfg_;
};

// Fig. 6 step times of one record under both schedules: the sequential
// exchange and the micro-chunked overlap pipeline at depth `overlap_chunks`
// (DESIGN.md §8). The record — and hence every byte — is the same for both;
// only the clock model differs. overlap_chunks <= 1 yields equal fields.
struct ModeledStepTimes {
  double sequential_s = 0.0;
  double overlap_s = 0.0;
};
ModeledStepTimes modeled_step_times(const comm::CommClock& clock,
                                    const comm::VelaStepRecord& record,
                                    std::size_t overlap_chunks);

}  // namespace vela::core
