// The Expert Broker layer (Fig. 4): VELA's replacement for an in-process MoE
// block's expert calls.
//
// Forward (token dispatcher / receiver): every non-empty expert group of a
// block is sent to whichever worker the current placement assigns the expert
// to — all sends first, then all receives, so workers overlap. The returned
// Variables join the master's autograd tape through a custom op whose
// backward closure implements the gradient dispatcher / receiver: it ships
// dL/dy to the hosting worker, which backpropagates through its local tape
// (accumulating expert-adapter gradients on the worker) and returns dL/dx.
//
// Requests travel over ReliableLinks (core/fault_tolerance.h): lost or
// corrupted messages are retransmitted with backoff, duplicates discarded,
// and a worker that stops answering raises WorkerFailedError rather than
// hanging the step. Retransmitted bytes are charged to the same phase ledger
// as first transmissions.
//
// The broker also keeps the per-phase byte ledger the CommClock converts to
// Fig. 6 step times.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/comm_clock.h"
#include "comm/phase_ledger.h"
#include "comm/wire_codec.h"
#include "core/fault_tolerance.h"
#include "moe/moe_block.h"
#include "placement/placement.h"

namespace vela::core {

class ExpertBroker : public moe::ExpertBackend {
 public:
  // `rlinks[n]` is the reliable link to worker n. `placement` may be updated
  // later via set_placement (expert migration). All pointers are non-owning;
  // MasterProcess keeps the links valid across worker respawns.
  // The last two parameters select the quantized wire tier (DESIGN.md §13);
  // the defaults resolve to the legacy (wire_bits, quantize_wire) behavior.
  ExpertBroker(std::vector<ReliableLink*> rlinks,
               const placement::Placement* placement, std::size_t num_layers,
               unsigned wire_bits, bool quantize_wire = false,
               comm::WireDtype wire_dtype = comm::WireDtype::kDefault,
               unsigned q8_block = 0);

  ag::Variable expert_forward(std::size_t layer, std::size_t expert,
                              const ag::Variable& xs) override;
  std::vector<ag::Variable> experts_forward(
      std::size_t layer,
      const std::vector<std::pair<std::size_t, ag::Variable>>& groups) override;

  void set_placement(const placement::Placement* placement);
  const placement::Placement* placement() const { return placement_; }

  // Micro-chunked dispatch pipeline (VELA_OVERLAP, DESIGN.md §8): 0 or 1
  // keeps the sequential exchange; K >= 2 splits every expert group into K
  // row chunks sent as fragments of one logical transfer (fragment 0 carries
  // the header, continuations are header-free), posted chunk-major so a
  // worker computes chunk i while chunk i+1 is in flight. Results, gradients
  // and the byte ledger are bit-identical to the sequential path at any K.
  // Values above 255 are clamped (the fragment header is one byte).
  void set_overlap_chunks(std::size_t chunks);
  std::size_t overlap_chunks() const { return overlap_chunks_; }

  // Expert-store dispatch hints (DESIGN.md §15): when enabled, every
  // experts_forward precedes its posts with one fire-and-forget
  // kPrefetchExperts per involved worker, naming the experts the dispatch is
  // about to touch — a paging worker overlaps its page-ins with the hint's
  // in-flight forwards instead of demand-faulting on each. Sent raw (never
  // awaited, never retransmitted); bytes are charged to the layer's forward
  // phase. Off by default: with an unbounded store the hint is a no-op on
  // the worker but its bytes would break bit-exact ledger parity.
  void set_store_hints(bool on) { store_hints_ = on; }
  bool store_hints() const { return store_hints_; }

  // Step-phase ledger.
  void begin_step();
  // Returns phases ordered forward block 0..L−1 then backward block L−1..0
  // and resets the ledger.
  comm::VelaStepRecord finish_step();

  std::uint64_t requests_sent() const { return next_request_; }

 private:
  void account(std::size_t layer, bool backward_phase, std::size_t worker,
               std::uint64_t bytes, std::uint32_t messages);
  // Awaits via the worker's ReliableLink, charging retransmitted bytes to
  // the same (layer, phase, worker) ledger cell as the original request.
  comm::Message await_reply(std::size_t worker, comm::MessageType expected,
                            std::uint64_t request_id, std::size_t layer,
                            bool backward_phase);

  // Sends the kPrefetchExperts hints for one dispatch (store_hints_ only).
  void send_prefetch_hints(
      std::size_t layer,
      const std::vector<std::pair<std::size_t, ag::Variable>>& groups);

  // The overlap pipeline's experts_forward (overlap_chunks_ >= 2).
  std::vector<ag::Variable> experts_forward_chunked(
      std::size_t layer,
      const std::vector<std::pair<std::size_t, ag::Variable>>& groups);
  // Awaits one fragment's backward reply. A worker answers a fragment train
  // only once the whole train has arrived, so a lost fragment cannot be
  // recovered by retransmitting the awaited one alone: on timeout the entire
  // train is re-posted (charged to the ledger like any retransmission),
  // bounded by the link's RetryPolicy.
  comm::Message await_train_reply(std::size_t worker, std::uint64_t request_id,
                                  std::size_t layer,
                                  const std::vector<comm::Message>& train);

  std::vector<ReliableLink*> rlinks_;
  const placement::Placement* placement_;
  std::size_t num_layers_;
  // Resolved dispatch-payload codec: every outgoing activation/gradient is
  // transformed by codec_.apply() and stamped by codec_.stamp(), so the
  // ledgers charge the quantized footprint uniformly across transports.
  comm::WireCodec codec_;
  std::size_t overlap_chunks_ = 0;
  bool store_hints_ = false;
  std::uint64_t next_request_ = 1;
  // Per-phase byte/message ledger, one master row × one column per worker
  // (the same helper the EP runtime uses with an N×N shape).
  comm::PhaseLedger ledger_;
};

// Parses VELA_OVERLAP (the pipeline depth K). Unset, 0, 1 or unparsable all
// mean "sequential"; values above 255 are clamped.
std::size_t overlap_chunks_from_env();

}  // namespace vela::core
