// The Expert Broker layer (Fig. 4): VELA's replacement for an in-process MoE
// block's expert calls.
//
// Forward (token dispatcher / receiver): every non-empty expert group of a
// block is sent to whichever worker the current placement assigns the expert
// to — all sends first, then all receives, so workers overlap. The returned
// Variables join the master's autograd tape through a custom op whose
// backward closure implements the gradient dispatcher / receiver: it ships
// dL/dy to the hosting worker, which backpropagates through its local tape
// (accumulating expert-adapter gradients on the worker) and returns dL/dx.
//
// The broker also keeps the per-phase byte ledger the CommClock converts to
// Fig. 6 step times.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/channel.h"
#include "comm/comm_clock.h"
#include "moe/moe_block.h"
#include "placement/placement.h"

namespace vela::core {

class ExpertBroker : public moe::ExpertBackend {
 public:
  // `links[n]` connects to worker n. `placement` may be updated later via
  // set_placement (expert migration). All pointers are non-owning.
  ExpertBroker(std::vector<comm::DuplexLink*> links,
               const placement::Placement* placement, std::size_t num_layers,
               unsigned wire_bits, bool quantize_wire = false);

  ag::Variable expert_forward(std::size_t layer, std::size_t expert,
                              const ag::Variable& xs) override;
  std::vector<ag::Variable> experts_forward(
      std::size_t layer,
      const std::vector<std::pair<std::size_t, ag::Variable>>& groups) override;

  void set_placement(const placement::Placement* placement);
  const placement::Placement* placement() const { return placement_; }

  // Step-phase ledger.
  void begin_step();
  // Returns phases ordered forward block 0..L−1 then backward block L−1..0
  // and resets the ledger.
  comm::VelaStepRecord finish_step();

  std::uint64_t requests_sent() const { return next_request_; }

 private:
  void account(std::size_t layer, bool backward_phase, std::size_t worker,
               std::uint64_t bytes, std::uint32_t messages);
  comm::Message await_reply(std::size_t worker, comm::MessageType expected,
                            std::uint64_t request_id);

  std::vector<comm::DuplexLink*> links_;
  const placement::Placement* placement_;
  std::size_t num_layers_;
  unsigned wire_bits_;
  bool quantize_wire_;
  std::uint64_t next_request_ = 1;
  std::vector<comm::MasterWorkerPhase> fwd_phases_;  // [L]
  std::vector<comm::MasterWorkerPhase> bwd_phases_;  // [L]
};

}  // namespace vela::core
