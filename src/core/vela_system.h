// VelaSystem: the top-level public API of the library.
//
// Wires everything together in the paper's workflow:
//
//   VelaSystemConfig cfg;                    // model + cluster + optimizer
//   VelaSystem vela(cfg);                    // spawn master + workers
//   vela.profile(dataset);                   // pass data through the model,
//                                            //   estimate P (§IV-B)
//   vela.optimize_placement();               // LP placement + migration
//   for (...) vela.train_step(batch);        // LoRA fine-tuning
//
// Every train_step returns the measured per-step communication (Fig. 5's
// metric) and the modelled step duration (Fig. 6's metric).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "comm/comm_clock.h"
#include "comm/wire_codec.h"
#include "core/liveness.h"
#include "core/master.h"
#include "core/profiler.h"
#include "core/replanner.h"
#include "model/router_planting.h"
#include "model/transformer.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "placement/locality_aware.h"

namespace vela::core {

struct VelaSystemConfig {
  model::ModelConfig model;
  cluster::ClusterConfig cluster;
  comm::CommClockConfig clock;
  nn::AdamWConfig adamw;
  std::uint64_t seed = 1;
  // Transport precision for feature/gradient exchange byte accounting
  // (paper: b = 16). Payload numerics stay fp32 ("exchanged without
  // precision loss" at computation precision) unless quantize_wire is set.
  unsigned wire_bits = 16;
  // Round payloads to fp16 on the wire (validates the paper's claim that
  // half-precision exchange preserves convergence).
  bool quantize_wire = false;
  // Quantized wire tier (DESIGN.md §13): dispatch-payload dtype. kDefault
  // consults VELA_WIRE_DTYPE, then falls back to the legacy pair above —
  // leaving both unset keeps every pre-tier run bit-identical. kInt8 also
  // switches hosted experts to the packed-q8 GEMM compute path.
  comm::WireDtype wire_dtype = comm::WireDtype::kDefault;
  // int8 block length (32/64); 0 resolves VELA_WIRE_BLOCK, then 64.
  unsigned q8_block = 0;
  // Weight of the Switch-style load-balancing auxiliary loss. 0 for the
  // paper's fine-tuning setting (locality must not be suppressed).
  float aux_loss_weight = 0.0f;
  // Worker capacity slack over the even share of L·E experts.
  double capacity_slack = 1.34;
  // Micro-chunked dispatch pipeline depth K (DESIGN.md §8): each expert
  // group is split into K row chunks so workers compute chunk i while chunk
  // i+1 is in flight. Results, gradients and byte counts are bit-identical
  // to the sequential exchange at any K; only the modeled overlap step time
  // changes. -1 = read the VELA_OVERLAP env var; 0 or 1 = off.
  int overlap_chunks = -1;
  // Comm-fabric backend for every master↔worker link (DESIGN.md §10).
  // kDefault follows VELA_TRANSPORT (unset → inproc). Losses, weights and
  // TrafficMeter byte counts are bit-exact across backends.
  comm::TransportKind transport = comm::TransportKind::kDefault;
  // Expert store (DESIGN.md §15): resident-expert budget per worker. -1
  // resolves VELA_EXPERT_BUDGET; 0 / unset keeps every expert resident
  // (bit-identical to the pre-store runtime); > 0 bounds the resident pool
  // and spills cold experts to an on-disk table.
  long long expert_budget = -1;
  // Spill directory; empty resolves VELA_STORE_DIR, then the system temp dir.
  std::string store_dir;
  // At-rest dtype of paged images (kDefault resolves VELA_STORE_DTYPE:
  // fp32 = lossless round trip, q8 = block-quantized adapters/moments).
  store::StoreDtype store_dtype = store::StoreDtype::kDefault;
};

struct StepReport {
  std::size_t step = 0;
  float loss = 0.0f;
  double external_mb_per_node = 0.0;  // measured bytes (Fig. 5 series)
  double comm_seconds = 0.0;          // modelled communication time
  double step_seconds = 0.0;          // modelled comm + compute (Fig. 6)
  std::size_t overlap_chunks = 0;     // dispatch pipeline depth (0/1 = off)
  double overlap_step_seconds = 0.0;  // modelled step time under the overlap
                                      // clock; equals step_seconds when off
  // --- fault tolerance (all zero on a healthy run) ---------------------------
  std::size_t faults_injected = 0;    // injector events during this step
  std::size_t retries = 0;            // step-level recovery retries
  std::size_t workers_recovered = 0;  // workers respawned during this step
  double recovery_mb = 0.0;           // state-restoration traffic (in the
                                      // meter too; broken out here)
  std::size_t workers_lost = 0;       // workers declared dead this step
                                      // (training degraded to the survivors)
  double injected_delay_seconds = 0.0;  // virtual delay-fault time, already
                                        // included in comm/step_seconds
  // Expert-store paging traffic this step (page-ins + page-outs, DESIGN.md
  // §15). Disk bytes, NOT network bytes: never part of external_mb_per_node.
  // 0.0 whenever the fleet runs unbounded.
  double paged_mb = 0.0;
};

// Opt-in resilience for train_step: on a WorkerFailedError the fleet is
// probed, dead workers respawned (state restored from the last snapshot),
// and the step retried. Defaults make crash recovery lossless: with a
// snapshot every step, a retried step re-runs from exactly the pre-step
// state, so the loss sequence is bit-identical to a fault-free run.
struct FaultToleranceConfig {
  RetryPolicy retry;           // per-request timeout / retransmission budget
  int max_step_retries = 3;    // whole-step retries before giving up
  // Steps between full-state snapshots (adapters + optimizer moments);
  // 0 disables periodic snapshots. Snapshot traffic is metered and charged
  // to the step that takes it.
  std::size_t snapshot_interval = 1;
  // Per-worker respawn budget (DESIGN.md §11): once a worker has consumed
  // this many respawns, its next failure declares it dead and training
  // degrades to the survivors — orphaned experts migrate from the freshest
  // recovery source and the step retries at reduced capacity. -1 keeps the
  // old behavior (unlimited respawns, never degrade); 0 degrades on the
  // first failure.
  int respawn_budget = -1;
  // Liveness heartbeat (DESIGN.md §11): interval > 0 arms a probe pass at
  // the start of every train_step, catching workers that died while idle.
  // Defaults follow VELA_HEARTBEAT_MS (unset = off, preserving healthy-run
  // byte ledgers exactly).
  LivenessConfig liveness = liveness_config_from_env();
  // Time source for retry deadlines, heartbeat scheduling and reconnect
  // backoff. Tests inject a util::FakeClock so timeout paths resolve in
  // virtual time. nullptr = the real system clock.
  util::Clock* clock = nullptr;
};

// The initial (pre-optimization) placement every mode starts from: expert e
// of every layer on worker e mod W. Exported so a remote vela_node process
// derives the SAME expert assignment for its rank that the master derives
// when adopting it — single source of truth (DESIGN.md §12).
placement::Placement initial_placement(std::size_t num_layers,
                                       std::size_t num_experts,
                                       std::size_t num_workers);

// The WorkerSpec a VelaSystem built from `cfg` gives worker `worker_id` on
// cluster node `node`. Exported for the same reason as initial_placement:
// a worker process must rebuild bit-identical frozen bases and optimizer
// settings from the scenario alone.
WorkerSpec make_worker_spec(const VelaSystemConfig& cfg, std::size_t worker_id,
                            std::size_t node);

class VelaSystem {
 public:
  // Builds the cluster, spawns workers under an initial sequential
  // placement, and constructs the backbone model around the expert broker.
  // If `plant_corpus` is provided, pre-trained expert locality is planted
  // for it before any worker computation happens.
  VelaSystem(const VelaSystemConfig& cfg,
             const data::SyntheticCorpus* plant_corpus = nullptr,
             const model::PlantingConfig& planting = {});

  // Wraps a pre-built fleet — the multi-process deployment path, where the
  // MasterProcess was assembled from a PeerListener (remote-fleet ctor)
  // before the system exists. `master` must host cfg.model's expert grid
  // under initial_placement; everything above the fleet (backbone, broker
  // wiring, optimizer, clock) is identical to the spawning constructor.
  VelaSystem(const VelaSystemConfig& cfg, std::unique_ptr<MasterProcess> master,
             const data::SyntheticCorpus* plant_corpus = nullptr,
             const model::PlantingConfig& planting = {});

  // --- the paper's workflow --------------------------------------------------
  // Profiling pass: estimates the probability matrix P.
  const moe::RoutingStats& profile(
      const std::vector<std::vector<std::size_t>>& dataset,
      std::size_t batch_size);

  // Solves the placement LP from the profiled P for a fine-tuning workload
  // of `tokens_per_step` (K), migrates experts, returns the placement used.
  const placement::Placement& optimize_placement(double tokens_per_step);
  // Installs an externally chosen placement (sequential/random baselines).
  void set_placement(const placement::Placement& placement);

  // One LoRA fine-tuning step on `batch`.
  StepReport train_step(const std::vector<std::vector<std::size_t>>& batch);

  // One optimizer step over several micro-batches (gradient accumulation):
  // gradients from every micro-batch accumulate — on the master for the
  // backbone, on the workers for the experts — before a single update.
  // The reported loss is the mean over micro-batches.
  StepReport train_step_accumulated(
      const std::vector<std::vector<std::vector<std::size_t>>>& micro_batches);

  // Installs a learning-rate schedule; before each step the scheduled rate
  // is applied to the backbone optimizer and broadcast to the workers.
  // The schedule must outlive the system.
  void set_lr_schedule(const nn::LrSchedule* schedule);

  // Persists / restores the complete fine-tuning state (backbone + expert
  // LoRA adapters, pulled from / pushed to the hosting workers). Optimizer
  // moments are not checkpointed.
  void save_checkpoint(const std::string& path);
  void load_checkpoint(const std::string& path);

  // Dynamic re-placement: after every step the routing decisions feed a
  // sliding-window estimate of P, and every cfg.interval steps the placement
  // LP is re-solved; experts migrate when the predicted gain clears the
  // hysteresis threshold. Migration traffic is charged to the triggering
  // step. (Extension beyond the paper, motivated by Fig. 5(a)'s drift.)
  void enable_dynamic_replacement(const ReplanConfig& cfg,
                                  double tokens_per_step);
  const Replanner* replanner() const { return replanner_.get(); }

  // --- fault tolerance -------------------------------------------------------
  // Turns on graceful degradation (see FaultToleranceConfig): installs the
  // retry policy on every link and takes an initial snapshot so even a
  // first-step crash has a restore point. The provisioning snapshot's
  // traffic is discarded (setup, like initial placement); periodic refresh
  // snapshots are charged to the step that takes them.
  void enable_fault_tolerance(const FaultToleranceConfig& cfg = {});
  bool fault_tolerance_enabled() const { return ft_enabled_; }

  // Attaches a deterministic fault injector to every master↔worker link
  // (comm/fault_injector.h). Null detaches. The injector must outlive the
  // system. Injected faults, step retries, respawned workers and recovery
  // traffic all surface in the StepReport.
  void attach_fault_injector(comm::FaultInjector* injector) {
    master_->attach_fault_injector(injector);
  }

  // --- access ---------------------------------------------------------------
  model::MoETransformer& model() { return *model_; }
  MasterProcess& master() { return *master_; }
  const cluster::ClusterTopology& topology() const {
    return master_->topology();
  }
  const comm::CommClock& clock() const { return *clock_; }
  const std::optional<moe::RoutingStats>& profiled_stats() const {
    return profiled_;
  }
  const placement::LocalityAwareReport& placement_report() const {
    return placement_report_;
  }
  std::size_t steps_taken() const { return step_; }
  std::size_t overlap_chunks() const { return overlap_chunks_; }
  const std::vector<StepReport>& history() const { return history_; }

 private:
  // Shared tail of both constructors: model, planting, optimizer, comm
  // clock and overlap depth on top of an already-built master_.
  void init(const data::SyntheticCorpus* plant_corpus,
            const model::PlantingConfig& planting);

  // Degrades to the survivors when a recovery pass declared workers dead:
  // re-solves the placement for the reduced fleet (degrade_placement) and
  // migrates the orphaned experts. No-op when nothing died.
  void degrade_after(const RecoveryReport& report);

  VelaSystemConfig cfg_;
  std::unique_ptr<MasterProcess> master_;
  std::unique_ptr<model::MoETransformer> model_;
  std::unique_ptr<nn::AdamW> backbone_optimizer_;
  std::unique_ptr<comm::CommClock> clock_;
  std::optional<moe::RoutingStats> profiled_;
  placement::LocalityAwareReport placement_report_;
  const nn::LrSchedule* lr_schedule_ = nullptr;
  std::unique_ptr<Replanner> replanner_;
  bool ft_enabled_ = false;
  FaultToleranceConfig ft_;
  // Workload scale of the last placement solve; reused by degrade_after to
  // rebuild the cost model (the orphan argmin is invariant to this common
  // factor, so any positive value yields the same degraded placement).
  double tokens_per_step_ = 1.0;
  std::size_t overlap_chunks_ = 0;  // resolved pipeline depth (0/1 = off)
  std::size_t step_ = 0;
  std::vector<StepReport> history_;
};

}  // namespace vela::core
