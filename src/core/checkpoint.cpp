#include "core/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "core/master.h"
#include "util/check.h"

namespace vela::core {
namespace {

constexpr char kMagic[8] = {'V', 'E', 'L', 'A', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  VELA_CHECK_MSG(in.good(), "checkpoint truncated");
  return value;
}

std::string expert_entry_name(std::size_t layer, std::size_t expert) {
  return "expert." + std::to_string(layer) + "." + std::to_string(expert);
}

}  // namespace

void save_named_tensors(const std::string& path, const NamedTensors& tensors) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  VELA_CHECK_MSG(out.good(), "cannot open checkpoint file " << path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    VELA_CHECK(!name.empty());
    write_pod(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(out, static_cast<std::uint64_t>(tensor.size()));
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.size() * sizeof(float)));
  }
  VELA_CHECK_MSG(out.good(), "checkpoint write failed: " << path);
}

NamedTensors load_named_tensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VELA_CHECK_MSG(in.good(), "cannot open checkpoint file " << path);
  char magic[8];
  in.read(magic, sizeof(magic));
  VELA_CHECK_MSG(in.good() && std::equal(magic, magic + 8, kMagic),
                 "not a VELA checkpoint: " << path);
  const auto version = read_pod<std::uint32_t>(in);
  VELA_CHECK_MSG(version == kVersion,
                 "unsupported checkpoint version " << version);
  const auto count = read_pod<std::uint64_t>(in);
  NamedTensors tensors;
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto numel = read_pod<std::uint64_t>(in);
    VELA_CHECK_MSG(numel > 0, "empty tensor in checkpoint");
    std::vector<float> data(numel);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    VELA_CHECK_MSG(in.good(), "checkpoint truncated at entry " << name);
    tensors.emplace_back(
        std::move(name),
        Tensor({static_cast<std::size_t>(numel)}, std::move(data)));
  }
  return tensors;
}

NamedTensors snapshot_trainable(const nn::Module& module) {
  NamedTensors out;
  for (const auto& p : module.trainable_parameters()) {
    out.emplace_back(p.name, p.var.value().reshaped({p.var.value().size()}));
  }
  return out;
}

void restore_trainable(const NamedTensors& tensors, nn::Module& module) {
  auto params = module.trainable_parameters();
  for (const auto& [name, tensor] : tensors) {
    bool found = false;
    for (auto& p : params) {
      if (p.name != name) continue;
      Tensor& value = p.var.mutable_value();
      VELA_CHECK_MSG(value.size() == tensor.size(),
                     "checkpoint entry " << name << " has " << tensor.size()
                                         << " elements, parameter has "
                                         << value.size());
      std::copy(tensor.data(), tensor.data() + tensor.size(), value.data());
      found = true;
      break;
    }
    VELA_CHECK_MSG(found, "checkpoint entry " << name
                                              << " has no matching parameter");
  }
}

void save_system_checkpoint(const std::string& path,
                            const nn::Module& backbone,
                            MasterProcess& master) {
  NamedTensors tensors = snapshot_trainable(backbone);
  const placement::Placement& placement = master.placement();
  for (std::size_t l = 0; l < placement.num_layers(); ++l) {
    for (std::size_t e = 0; e < placement.num_experts(); ++e) {
      Tensor state = master.query_expert_state(l, e);
      VELA_CHECK_MSG(state.size() > 0,
                     "expert (" << l << ", " << e << ") has no trainable "
                                << "state to checkpoint");
      tensors.emplace_back(expert_entry_name(l, e), std::move(state));
    }
  }
  save_named_tensors(path, tensors);
}

void load_system_checkpoint(const std::string& path, nn::Module& backbone,
                            MasterProcess& master) {
  NamedTensors tensors = load_named_tensors(path);
  NamedTensors backbone_entries;
  const placement::Placement& placement = master.placement();
  for (auto& [name, tensor] : tensors) {
    if (name.rfind("expert.", 0) != 0) {
      backbone_entries.emplace_back(name, std::move(tensor));
      continue;
    }
    const auto first_dot = name.find('.', 7);
    VELA_CHECK_MSG(first_dot != std::string::npos,
                   "malformed expert entry " << name);
    const std::size_t layer = std::stoul(name.substr(7, first_dot - 7));
    const std::size_t expert = std::stoul(name.substr(first_dot + 1));
    VELA_CHECK(layer < placement.num_layers() &&
               expert < placement.num_experts());
    master.load_expert_state(layer, expert, std::move(tensor));
  }
  restore_trainable(backbone_entries, backbone);
}

}  // namespace vela::core
