#include "core/checkpoint.h"

#include <algorithm>

#include "core/master.h"
#include "util/check.h"

namespace vela::core {
namespace {

std::string expert_entry_name(std::size_t layer, std::size_t expert) {
  return "expert." + std::to_string(layer) + "." + std::to_string(expert);
}

}  // namespace

NamedTensors snapshot_trainable(const nn::Module& module) {
  NamedTensors out;
  for (const auto& p : module.trainable_parameters()) {
    out.emplace_back(p.name, p.var.value().reshaped({p.var.value().size()}));
  }
  return out;
}

void restore_trainable(const NamedTensors& tensors, nn::Module& module) {
  auto params = module.trainable_parameters();
  for (const auto& [name, tensor] : tensors) {
    bool found = false;
    for (auto& p : params) {
      if (p.name != name) continue;
      Tensor& value = p.var.mutable_value();
      VELA_CHECK_MSG(value.size() == tensor.size(),
                     "checkpoint entry " << name << " has " << tensor.size()
                                         << " elements, parameter has "
                                         << value.size());
      std::copy(tensor.data(), tensor.data() + tensor.size(), value.data());
      found = true;
      break;
    }
    VELA_CHECK_MSG(found, "checkpoint entry " << name
                                              << " has no matching parameter");
  }
}

void save_system_checkpoint(const std::string& path,
                            const nn::Module& backbone,
                            MasterProcess& master) {
  NamedTensors tensors = snapshot_trainable(backbone);
  const placement::Placement& placement = master.placement();
  for (std::size_t l = 0; l < placement.num_layers(); ++l) {
    for (std::size_t e = 0; e < placement.num_experts(); ++e) {
      Tensor state = master.query_expert_state(l, e);
      VELA_CHECK_MSG(state.size() > 0,
                     "expert (" << l << ", " << e << ") has no trainable "
                                << "state to checkpoint");
      tensors.emplace_back(expert_entry_name(l, e), std::move(state));
    }
  }
  save_named_tensors(path, tensors);
}

void load_system_checkpoint(const std::string& path, nn::Module& backbone,
                            MasterProcess& master) {
  NamedTensors tensors = load_named_tensors(path);
  NamedTensors backbone_entries;
  const placement::Placement& placement = master.placement();
  for (auto& [name, tensor] : tensors) {
    if (name.rfind("expert.", 0) != 0) {
      backbone_entries.emplace_back(name, std::move(tensor));
      continue;
    }
    const auto first_dot = name.find('.', 7);
    VELA_CHECK_MSG(first_dot != std::string::npos,
                   "malformed expert entry " << name);
    const std::size_t layer = std::stoul(name.substr(7, first_dot - 7));
    const std::size_t expert = std::stoul(name.substr(first_dot + 1));
    VELA_CHECK(layer < placement.num_layers() &&
               expert < placement.num_experts());
    master.load_expert_state(layer, expert, std::move(tensor));
  }
  restore_trainable(backbone_entries, backbone);
}

}  // namespace vela::core
