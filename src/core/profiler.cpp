#include "core/profiler.h"

#include <algorithm>

#include "util/check.h"

namespace vela::core {

moe::RoutingStats profile_expert_access(
    model::MoETransformer& model,
    const std::vector<std::vector<std::size_t>>& dataset,
    std::size_t batch_size) {
  VELA_CHECK(!dataset.empty() && batch_size > 0);
  moe::RoutingStats stats(model.config().num_layers,
                          model.config().num_experts);
  for (std::size_t start = 0; start < dataset.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, dataset.size());
    std::vector<std::vector<std::size_t>> batch(dataset.begin() + start,
                                                dataset.begin() + end);
    // Forward only; the graph is dropped without a backward pass.
    model.forward_batch(batch, &stats);
  }
  return stats;
}

placement::PlacementProblem build_placement_problem(
    const Tensor& probability, const model::ModelConfig& model_cfg,
    const cluster::ClusterTopology& topology, double tokens_per_step,
    double capacity_slack) {
  placement::PlacementProblem problem;
  problem.num_workers = topology.num_workers();
  problem.num_layers = model_cfg.num_layers;
  problem.num_experts = model_cfg.num_experts;
  problem.probability = probability;
  problem.tokens_per_step = tokens_per_step;
  problem.bytes_per_token = static_cast<double>(model_cfg.bytes_per_token());
  problem.master_node = topology.master_node();
  for (std::size_t w = 0; w < problem.num_workers; ++w) {
    problem.bandwidth.push_back(topology.worker_bandwidth(w));
    problem.worker_node.push_back(topology.worker_node(w));
  }
  problem.capacity = topology.uniform_capacities(
      model_cfg.num_layers * model_cfg.num_experts, capacity_slack);
  // The system boots under the sequential (expert e → worker e mod N)
  // layout, so each worker's capacity must at least cover its share of that
  // layout even when E is not a multiple of N.
  for (std::size_t w = 0; w < problem.num_workers; ++w) {
    std::size_t experts_on_w = 0;
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      if (e % problem.num_workers == w) ++experts_on_w;
    }
    problem.capacity[w] =
        std::max(problem.capacity[w], experts_on_w * problem.num_layers);
  }
  problem.validate();
  return problem;
}

}  // namespace vela::core
