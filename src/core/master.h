// The Master process (Fig. 4): owns the communication fabric, the worker
// fleet and the broker, and speaks the control side of the protocol
// (optimizer-step broadcast, expert migration, shutdown).
//
// The fabric is fault-tolerant: every link is wrapped in a ReliableLink
// (timeouts, retransmission, dedupe — core/fault_tolerance.h), workers can
// be probed for liveness and respawned in place after a crash, and periodic
// full-state snapshots (adapters + optimizer moments) plus optional standby
// replicas (placement/replication.h gives the placement-level rationale)
// make that respawn lossless. All detection, recovery and snapshot traffic
// flows through the metered channels like any other traffic.
//
// The model backbone and the fine-tuning loop live one level up in
// VelaSystem; MasterProcess is reusable runtime plumbing.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cluster/topology.h"
#include "comm/endpoint.h"
#include "comm/fault_injector.h"
#include "comm/traffic_meter.h"
#include "core/expert_broker.h"
#include "core/expert_worker.h"
#include "core/fault_tolerance.h"
#include "placement/placement.h"

namespace vela::core {

class MasterProcess {
 public:
  // Spawns one worker per cluster device, hosting the experts `placement`
  // assigns to it. `spec_template` supplies model dims / LoRA / seeds; the
  // per-worker id and node are filled in here.
  // `transport` selects the comm-fabric backend for every link (kDefault
  // follows VELA_TRANSPORT); respawned workers get fresh links of the same
  // kind.
  MasterProcess(const cluster::ClusterTopology& topology,
                const WorkerSpec& spec_template,
                placement::Placement placement, std::size_t num_layers,
                std::size_t num_experts,
                comm::TransportKind transport = comm::TransportKind::kDefault);
  ~MasterProcess();

  MasterProcess(const MasterProcess&) = delete;
  MasterProcess& operator=(const MasterProcess&) = delete;

  ExpertBroker& broker() { return *broker_; }
  comm::TrafficMeter& meter() { return meter_; }
  // Pipeline depth of the broker's micro-chunked dispatch (DESIGN.md §8);
  // 0/1 = sequential exchange. The broker survives worker respawns, so the
  // setting does too.
  void set_overlap_chunks(std::size_t chunks) {
    broker_->set_overlap_chunks(chunks);
  }
  std::size_t overlap_chunks() const { return broker_->overlap_chunks(); }
  // The comm-fabric backend every link runs on (resolved at construction).
  comm::TransportKind transport() const { return transport_; }
  const cluster::ClusterTopology& topology() const { return topology_; }
  const placement::Placement& placement() const { return placement_; }
  std::size_t num_workers() const { return workers_.size(); }

  // Ends a fine-tuning step: tells every worker to apply its local AdamW and
  // waits for all acks. When `scheduled_lr` >= 0 it is installed on the
  // workers' optimizers first (LR-schedule propagation).
  void broadcast_optimizer_step(std::uint32_t step, float scheduled_lr = -1.0f);

  // Migrates experts so the hosted set matches `next`: each moved expert's
  // adapter state is fetched from its old worker and installed on the new
  // one (frozen bases are re-derived from the seed on the new worker).
  // Control traffic is metered like any other traffic.
  void apply_placement(const placement::Placement& next);

  // Checkpoint support: reads / overwrites one expert's packed adapter
  // state on whichever worker currently hosts it (placement unchanged).
  Tensor query_expert_state(std::size_t layer, std::size_t expert);
  void load_expert_state(std::size_t layer, std::size_t expert, Tensor state);

  // --- fault tolerance -------------------------------------------------------
  // Attaches a fault injector to every link (and to links of workers
  // respawned later). Null detaches.
  void attach_fault_injector(comm::FaultInjector* injector);
  comm::FaultInjector* fault_injector() const { return injector_; }

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  // Heartbeat: true if worker `w` answers a probe within one retry-policy
  // timeout. Never throws.
  bool probe_worker(std::size_t w);

  // Pulls a full recovery snapshot (LoRA adapters + AdamW moments) of every
  // expert from its hosting worker, and refreshes standby replicas from it.
  // Metered; charge it to whichever step triggers it. No-op without LoRA.
  void snapshot_experts();
  std::size_t snapshots_held() const { return snapshot_.size(); }

  // Registers and provisions a standby replica of (layer, expert) on
  // `worker` (must differ from the current primary). The standby receives
  // state on every snapshot_experts() refresh, is never routed tokens, and
  // is the preferred recovery source when the primary's worker dies.
  void add_standby_replica(std::size_t layer, std::size_t expert,
                           std::size_t worker);

  // Mid-step failure recovery: abandons all in-flight requests, probes the
  // fleet, respawns every dead worker on its original device (rebuilding
  // frozen bases from the seed and restoring adapter/optimizer state from a
  // live standby replica, else the last snapshot, else fresh), and aborts
  // the in-flight step on surviving workers (tapes + partial gradients are
  // discarded). Returns the number of workers respawned. Recovery traffic is
  // metered and tallied in recovery_bytes().
  std::size_t recover_step();

  // Tears down and rebuilds one worker; recover_step() drives this.
  void respawn_worker(std::size_t w);

  // --- fault accounting ------------------------------------------------------
  // Aggregated retry-layer counters over all links.
  FaultStats fault_stats() const;
  std::size_t workers_recovered() const { return workers_recovered_; }
  std::uint64_t recovery_bytes() const { return recovery_bytes_; }

  // Graceful shutdown; also called by the destructor. Robust to workers
  // that already died (no hang, no double-join).
  void shutdown();

 private:
  comm::Message exchange(std::size_t worker, comm::Message msg);
  // Best recovery state for (layer, expert) when worker `dead` is gone:
  // live standby → master snapshot → empty (fresh from seed).
  Tensor recovery_state(const ExpertKey& key, std::size_t dead);
  void restore_expert(std::size_t w, const ExpertKey& key, Tensor state);
  void drop_standby(const ExpertKey& key, std::size_t worker);

  cluster::ClusterTopology topology_;
  comm::TransportKind transport_ = comm::TransportKind::kInProc;
  comm::TrafficMeter meter_;
  placement::Placement placement_;
  WorkerSpec spec_template_;
  std::size_t num_layers_ = 0;
  std::size_t num_experts_ = 0;
  RetryPolicy retry_policy_;  // must outlive rlinks_ (they point at it)
  std::vector<std::unique_ptr<comm::DuplexLink>> links_;
  std::vector<std::unique_ptr<ExpertWorker>> workers_;
  std::vector<std::unique_ptr<ReliableLink>> rlinks_;
  std::unique_ptr<ExpertBroker> broker_;
  comm::FaultInjector* injector_ = nullptr;
  std::map<ExpertKey, Tensor> snapshot_;
  std::map<ExpertKey, std::vector<std::size_t>> standbys_;
  std::size_t workers_recovered_ = 0;
  std::uint64_t recovery_bytes_ = 0;
  std::uint64_t next_request_ = 1u << 20;  // distinct from broker ids
  bool down_ = false;
};

}  // namespace vela::core
