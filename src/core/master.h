// The Master process (Fig. 4): owns the communication fabric, the worker
// fleet and the broker, and speaks the control side of the protocol
// (optimizer-step broadcast, expert migration, shutdown).
//
// The model backbone and the fine-tuning loop live one level up in
// VelaSystem; MasterProcess is reusable runtime plumbing.
#pragma once

#include <memory>
#include <vector>

#include "cluster/topology.h"
#include "comm/channel.h"
#include "comm/traffic_meter.h"
#include "core/expert_broker.h"
#include "core/expert_worker.h"
#include "placement/placement.h"

namespace vela::core {

class MasterProcess {
 public:
  // Spawns one worker per cluster device, hosting the experts `placement`
  // assigns to it. `spec_template` supplies model dims / LoRA / seeds; the
  // per-worker id and node are filled in here.
  MasterProcess(const cluster::ClusterTopology& topology,
                const WorkerSpec& spec_template,
                placement::Placement placement, std::size_t num_layers,
                std::size_t num_experts);
  ~MasterProcess();

  MasterProcess(const MasterProcess&) = delete;
  MasterProcess& operator=(const MasterProcess&) = delete;

  ExpertBroker& broker() { return *broker_; }
  comm::TrafficMeter& meter() { return meter_; }
  const cluster::ClusterTopology& topology() const { return topology_; }
  const placement::Placement& placement() const { return placement_; }
  std::size_t num_workers() const { return workers_.size(); }

  // Ends a fine-tuning step: tells every worker to apply its local AdamW and
  // waits for all acks. When `scheduled_lr` >= 0 it is installed on the
  // workers' optimizers first (LR-schedule propagation).
  void broadcast_optimizer_step(std::uint32_t step, float scheduled_lr = -1.0f);

  // Migrates experts so the hosted set matches `next`: each moved expert's
  // adapter state is fetched from its old worker and installed on the new
  // one (frozen bases are re-derived from the seed on the new worker).
  // Control traffic is metered like any other traffic.
  void apply_placement(const placement::Placement& next);

  // Checkpoint support: reads / overwrites one expert's packed adapter
  // state on whichever worker currently hosts it (placement unchanged).
  Tensor query_expert_state(std::size_t layer, std::size_t expert);
  void load_expert_state(std::size_t layer, std::size_t expert, Tensor state);

  // Graceful shutdown; also called by the destructor.
  void shutdown();

 private:
  comm::Message await(std::size_t worker, comm::MessageType expected,
                      std::uint64_t request_id);

  cluster::ClusterTopology topology_;
  comm::TrafficMeter meter_;
  placement::Placement placement_;
  std::vector<std::unique_ptr<comm::DuplexLink>> links_;
  std::vector<std::unique_ptr<ExpertWorker>> workers_;
  std::unique_ptr<ExpertBroker> broker_;
  std::uint64_t next_request_ = 1u << 20;  // distinct from broker ids
  bool down_ = false;
};

}  // namespace vela::core
