// The Master process (Fig. 4): owns the communication fabric, the worker
// fleet and the broker, and speaks the control side of the protocol
// (optimizer-step broadcast, expert migration, shutdown).
//
// The fabric is fault-tolerant: every link is wrapped in a ReliableLink
// (timeouts, retransmission, dedupe — core/fault_tolerance.h), workers can
// be probed for liveness and respawned in place after a crash, and periodic
// full-state snapshots (adapters + optimizer moments) plus optional standby
// replicas (placement/replication.h gives the placement-level rationale)
// make that respawn lossless. All detection, recovery and snapshot traffic
// flows through the metered channels like any other traffic.
//
// The model backbone and the fine-tuning loop live one level up in
// VelaSystem; MasterProcess is reusable runtime plumbing.
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/topology.h"
#include "comm/endpoint.h"
#include "comm/fault_injector.h"
#include "comm/traffic_meter.h"
#include "core/expert_broker.h"
#include "core/expert_worker.h"
#include "core/fault_tolerance.h"
#include "core/liveness.h"
#include "placement/placement.h"
#include "util/clock.h"

namespace vela::core {

// What one recovery pass (recover_step / heartbeat_tick) did: workers
// brought back within their respawn budget, and workers newly declared dead.
// A non-empty `declared_dead` obliges the caller to install a placement that
// avoids the dead workers (degrade_to) before routing more traffic.
struct RecoveryReport {
  std::size_t respawned = 0;
  std::vector<std::size_t> declared_dead;
};

// Options of the remote-fleet constructor (DESIGN.md §12): the workers are
// separate OS processes (vela_node) dialing `listener`, not threads spawned
// here. `accept_timeout` bounds how long construction waits for each worker
// to appear; `reconnect`/`clock` parameterize session resume after a torn
// connection.
struct RemoteFleetConfig {
  comm::PeerListener* listener = nullptr;
  std::chrono::milliseconds accept_timeout{30000};
  comm::ReconnectPolicy reconnect;
  util::Clock* clock = nullptr;
};

class MasterProcess {
 public:
  // Spawns one worker per cluster device, hosting the experts `placement`
  // assigns to it. `spec_template` supplies model dims / LoRA / seeds; the
  // per-worker id and node are filled in here.
  // `transport` selects the comm-fabric backend for every link (kDefault
  // follows VELA_TRANSPORT); respawned workers get fresh links of the same
  // kind.
  MasterProcess(const cluster::ClusterTopology& topology,
                const WorkerSpec& spec_template,
                placement::Placement placement, std::size_t num_layers,
                std::size_t num_experts,
                comm::TransportKind transport = comm::TransportKind::kDefault);

  // Remote fleet (DESIGN.md §12): adopts one worker PROCESS per cluster
  // device from `remote.listener` instead of spawning threads. Each worker
  // must dial both lanes and identify itself within `remote.accept_timeout`
  // (a missing worker fails construction — the launcher propagates it as a
  // crash). Everything above the links — broker, retry layer, liveness,
  // recovery — is shared with the in-process fleet; the protocol and the
  // metering are identical by construction.
  MasterProcess(const cluster::ClusterTopology& topology,
                const WorkerSpec& spec_template,
                placement::Placement placement, std::size_t num_layers,
                std::size_t num_experts, const RemoteFleetConfig& remote);
  ~MasterProcess();

  MasterProcess(const MasterProcess&) = delete;
  MasterProcess& operator=(const MasterProcess&) = delete;

  ExpertBroker& broker() { return *broker_; }
  comm::TrafficMeter& meter() { return meter_; }
  // Pipeline depth of the broker's micro-chunked dispatch (DESIGN.md §8);
  // 0/1 = sequential exchange. The broker survives worker respawns, so the
  // setting does too.
  void set_overlap_chunks(std::size_t chunks) {
    broker_->set_overlap_chunks(chunks);
  }
  std::size_t overlap_chunks() const { return broker_->overlap_chunks(); }
  // The comm-fabric backend every link runs on (resolved at construction).
  comm::TransportKind transport() const { return transport_; }
  const cluster::ClusterTopology& topology() const { return topology_; }
  const placement::Placement& placement() const { return placement_; }
  std::size_t num_workers() const { return workers_.size(); }
  // True when the fleet lives in other OS processes (remote-fleet ctor).
  bool remote_fleet() const { return remote_; }
  // The duplex link of worker `w` — per-lane byte counters for the
  // --processes bench emitters (bytes_sent on to_worker, bytes_received on
  // to_master; in a remote fleet the far halves are in another process).
  const comm::DuplexLink& link(std::size_t w) const { return *links_[w]; }

  // Ends a fine-tuning step: tells every worker to apply its local AdamW and
  // waits for all acks. When `scheduled_lr` >= 0 it is installed on the
  // workers' optimizers first (LR-schedule propagation).
  void broadcast_optimizer_step(std::uint32_t step, float scheduled_lr = -1.0f);

  // Migrates experts so the hosted set matches `next`: each moved expert's
  // adapter state is fetched from its old worker and installed on the new
  // one (frozen bases are re-derived from the seed on the new worker).
  // Control traffic is metered like any other traffic.
  void apply_placement(const placement::Placement& next);

  // Checkpoint support: reads / overwrites one expert's packed adapter
  // state on whichever worker currently hosts it (placement unchanged).
  Tensor query_expert_state(std::size_t layer, std::size_t expert);
  void load_expert_state(std::size_t layer, std::size_t expert, Tensor state);

  // --- expert store (DESIGN.md §15) ------------------------------------------
  // True when this master's spec resolves to a bounded expert store — the
  // fleet pages, so dispatch hints and priority broadcasts are worth their
  // bytes. (Resolved once at construction from the spec template + env; a
  // remote fleet's workers resolve their own env, which the launcher keeps
  // in sync with the master's.)
  bool paging() const { return paging_; }

  // Broadcasts locality scores (an L×E matrix, higher = hotter) to every
  // live worker's expert store as eviction priorities, and caches them so a
  // respawned worker is re-primed. No-op when the fleet does not page.
  void set_store_priorities(Tensor priorities);

  // --- fault tolerance -------------------------------------------------------
  // Attaches a fault injector to every link (and to links of workers
  // respawned later). Null detaches.
  void attach_fault_injector(comm::FaultInjector* injector);
  comm::FaultInjector* fault_injector() const { return injector_; }

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  // Swaps the time source that drives retry deadlines and heartbeat
  // scheduling on every link (nullptr = system clock). Tests inject a
  // FakeClock so timeout paths resolve in virtual time.
  void set_clock(util::Clock* clock);
  util::Clock* clock() const { return clock_; }

  // Liveness probe: true if worker `w` answers a kProbe within one
  // retry-policy timeout. Never throws. Declared-dead workers are false
  // without touching the wire.
  bool probe_worker(std::size_t w);

  // --- liveness & degradation (DESIGN.md §11) --------------------------------
  // Arms the heartbeat protocol: heartbeat_tick() then probes every worker
  // whose `cfg.interval` has elapsed on the injected clock and walks it
  // through healthy → suspect → dead on consecutive misses. `clock` null =
  // the clock installed via set_clock.
  void enable_heartbeat(const LivenessConfig& cfg, util::Clock* clock = nullptr);
  const HeartbeatMonitor* heartbeat() const { return monitor_.get(); }

  // One synchronous pass of the liveness protocol (call at step boundaries;
  // see liveness.h for why probing is never concurrent with step traffic).
  // Workers the state machine declares dead are respawned within budget or
  // declared dead for good. No-op unless enable_heartbeat was called.
  RecoveryReport heartbeat_tick();

  // Per-worker respawn budget: a worker that already consumed `budget`
  // respawns is declared dead on its next failure instead of respawned.
  // -1 = unlimited (never degrade); 0 = first failure degrades.
  void set_respawn_budget(int budget) { respawn_budget_ = budget; }
  int respawn_budget() const { return respawn_budget_; }

  // dead_mask()[w] is true once worker w was declared dead. Terminal:
  // elastic shrink only, a dead slot is never re-used.
  const std::vector<bool>& dead_mask() const { return dead_; }
  std::size_t num_live_workers() const;

  // Declares worker `w` dead: closes its link, joins the thread, abandons
  // its in-flight requests and retires its standby replicas. The caller
  // must then install a placement avoiding `w` (degrade_to) before routing
  // more traffic.
  void mark_worker_dead(std::size_t w);

  // Installs a reduced-capacity placement after deaths. Every moved expert
  // must be moving OFF a dead worker (placement::degrade_placement emits
  // exactly this shape); its state is recovered from a live standby, else
  // the last snapshot, else fresh, and installed on the surviving worker.
  // Migration bytes are metered into the recovery phase
  // (TrafficMeter::RecoveryScope) and tallied in recovery_bytes().
  void degrade_to(const placement::Placement& next);

  // Pulls a full recovery snapshot (LoRA adapters + AdamW moments) of every
  // expert from its hosting worker, and refreshes standby replicas from it.
  // Metered; charge it to whichever step triggers it. No-op without LoRA.
  void snapshot_experts();
  std::size_t snapshots_held() const { return snapshot_.size(); }

  // Registers and provisions a standby replica of (layer, expert) on
  // `worker` (must differ from the current primary). The standby receives
  // state on every snapshot_experts() refresh, is never routed tokens, and
  // is the preferred recovery source when the primary's worker dies.
  void add_standby_replica(std::size_t layer, std::size_t expert,
                           std::size_t worker);

  // Mid-step failure recovery: abandons all in-flight requests, probes the
  // fleet, respawns every unresponsive worker on its original device
  // (rebuilding frozen bases from the seed and restoring adapter/optimizer
  // state from a live standby replica, else the last snapshot, else fresh) —
  // or, when its respawn budget is spent, declares it dead — and aborts the
  // in-flight step on surviving workers (tapes + partial gradients are
  // discarded). Recovery traffic is metered (recovery phase) and tallied in
  // recovery_bytes(). A non-empty declared_dead in the report obliges the
  // caller to degrade_to() a placement avoiding the dead workers.
  RecoveryReport recover_step();

  // Tears down and rebuilds one worker; recover_step() drives this.
  void respawn_worker(std::size_t w);

  // Remote fleets cannot rebuild a worker by spawning a thread: the hook
  // supplies a fresh link to a REPLACEMENT process (typically: relaunch
  // vela_node with the same rank, then make_master_remote_link again).
  // Without a hook a remote worker failure skips respawn and goes straight
  // to mark_worker_dead → degrade, which is the desired no-hang default.
  void set_remote_respawner(
      std::function<std::unique_ptr<comm::DuplexLink>(std::size_t)> fn) {
    remote_respawner_ = std::move(fn);
  }

  // --- fault accounting ------------------------------------------------------
  // Aggregated retry-layer counters over all links.
  FaultStats fault_stats() const;
  std::size_t workers_recovered() const { return workers_recovered_; }
  std::uint64_t recovery_bytes() const { return recovery_bytes_; }

  // Graceful shutdown; also called by the destructor. Robust to workers
  // that already died (no hang, no double-join).
  void shutdown();

 private:
  comm::Message exchange(std::size_t worker, comm::Message msg);
  // Best recovery state for (layer, expert) when worker `dead` is gone:
  // live standby → master snapshot → empty (fresh from seed).
  Tensor recovery_state(const ExpertKey& key, std::size_t dead);
  void restore_expert(std::size_t w, const ExpertKey& key, Tensor state);
  void drop_standby(const ExpertKey& key, std::size_t worker);
  // Resolves whether the fleet pages (spec + env) and arms the broker's
  // dispatch hints accordingly; both constructors end with it.
  void resolve_paging();
  // Respawns `w` if its budget allows, else marks it dead. False = now dead.
  bool respawn_within_budget(std::size_t w);

  cluster::ClusterTopology topology_;
  comm::TransportKind transport_ = comm::TransportKind::kInProc;
  comm::TrafficMeter meter_;
  placement::Placement placement_;
  WorkerSpec spec_template_;
  std::size_t num_layers_ = 0;
  std::size_t num_experts_ = 0;
  RetryPolicy retry_policy_;  // must outlive rlinks_ (they point at it)
  std::vector<std::unique_ptr<comm::DuplexLink>> links_;
  // In a remote fleet every entry is nullptr (the worker is a process at
  // the far end of the link); all join()/start sites are guarded on it.
  std::vector<std::unique_ptr<ExpertWorker>> workers_;
  bool remote_ = false;
  std::function<std::unique_ptr<comm::DuplexLink>(std::size_t)>
      remote_respawner_;
  std::vector<std::unique_ptr<ReliableLink>> rlinks_;
  std::unique_ptr<ExpertBroker> broker_;
  comm::FaultInjector* injector_ = nullptr;
  bool paging_ = false;
  Tensor store_priorities_;  // last broadcast L×E matrix (respawn re-prime)
  std::map<ExpertKey, Tensor> snapshot_;
  std::map<ExpertKey, std::vector<std::size_t>> standbys_;
  util::Clock* clock_ = &util::system_clock();
  std::unique_ptr<HeartbeatMonitor> monitor_;
  int respawn_budget_ = -1;          // per-worker; -1 = unlimited
  std::vector<int> respawn_counts_;  // respawns consumed, per worker
  std::vector<bool> dead_;           // declared dead (terminal)
  std::size_t workers_recovered_ = 0;
  std::uint64_t recovery_bytes_ = 0;
  std::uint64_t next_request_ = 1u << 20;  // distinct from broker ids
  bool down_ = false;
};

}  // namespace vela::core
