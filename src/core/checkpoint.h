// Checkpointing: persist and restore the fine-tuning state (LoRA adapters).
//
// Only trainable parameters are stored — frozen pre-trained weights are
// reproducible from seeds, mirroring how VELA never ships base matrices over
// the network. Format (little-endian binary):
//
//   magic "VELACKPT" | u32 version | u64 entry count |
//   per entry: u32 name length | name bytes | u64 element count | f32 data
//
// MasterProcess gains checkpoint support through the kQueryExpert /
// kLoadExpertState protocol messages: expert adapter states are pulled from
// (pushed to) whichever worker currently hosts each expert, without
// disturbing the placement.
#pragma once

#include <string>

#include "nn/module.h"
#include "store/tensor_file.h"
#include "tensor/tensor.h"

namespace vela::core {

class MasterProcess;

// The container format and its I/O live in store/tensor_file.h (raw file
// access is confined to the store layer); re-exported here so checkpoint
// call sites keep their historical names.
using store::NamedTensors;
using store::load_named_tensors;
using store::save_named_tensors;

// Module state: one entry per trainable parameter, keyed by parameter name.
NamedTensors snapshot_trainable(const nn::Module& module);
// Restores by name; every entry must match an existing trainable parameter
// of identical size (extra parameters in the module are left untouched).
void restore_trainable(const NamedTensors& tensors, nn::Module& module);

// Full-system checkpoint: backbone trainable params (by name) + one packed
// adapter blob per expert, fetched from / pushed to the hosting workers.
void save_system_checkpoint(const std::string& path, const nn::Module& backbone,
                            MasterProcess& master);
void load_system_checkpoint(const std::string& path, nn::Module& backbone,
                            MasterProcess& master);

}  // namespace vela::core
