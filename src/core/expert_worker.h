// The Expert Manager process of Fig. 4, realized as a thread.
//
// A worker owns a subset of the model's experts, serves forward requests
// (keeping the local autograd tape alive per request), resumes backward
// passes when the master ships output gradients, and runs a *local* AdamW
// per expert at the end of every step — no gradient ever leaves the worker,
// which is precisely how VELA avoids data parallelism's all-reduce.
//
// Expert state lives in a store::ExpertStore (DESIGN.md §15), not in the
// worker itself: with VELA_EXPERT_BUDGET unset the InMemoryStore backend
// reproduces the old everything-resident semantics bit for bit; with a
// budget the PagedStore spills cold experts to disk. The worker pins an
// expert for exactly the window where its resident object carries state a
// paged image cannot — a live autograd tape, forward through backward
// retire — and keeps all pin bookkeeping on the worker thread, so the
// parallel compute tasks below only ever touch pinned experts.
//
// Request handling is idempotent: every (type, request id) pair is served at
// most once and its reply cached, so a master retransmission (after a lost
// request or a lost reply) replays the cached reply instead of re-executing.
// Checksummed messages that fail verification are dropped — the master's
// timeout/retry recovers them. Both are prerequisites for the retry layer in
// core/fault_tolerance.h.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "autograd/variable.h"
#include "comm/endpoint.h"
#include "core/protocol.h"
#include "nn/expert.h"
#include "nn/optimizer.h"
#include "store/expert_store.h"

namespace vela::comm {
class TrafficMeter;
}

namespace vela::core {

class ExpertWorker {
 public:
  // `link` is the duplex master↔worker connection; the worker receives on
  // link->to_worker and replies on link->to_master. `initial_experts` are
  // constructed (from the spec's base_seed) before the thread starts.
  // `meter` (optional) receives the store's page-in/page-out byte series —
  // in-process workers share the master's TrafficMeter, remote vela_nodes
  // run unmetered.
  ExpertWorker(WorkerSpec spec, comm::DuplexLink* link,
               std::vector<ExpertKey> initial_experts,
               comm::TrafficMeter* meter = nullptr);
  ~ExpertWorker();

  ExpertWorker(const ExpertWorker&) = delete;
  ExpertWorker& operator=(const ExpertWorker&) = delete;

  void start();
  // Blocks until the worker thread exits (send kShutdown first, or close the
  // channel).
  void join();

  const WorkerSpec& spec() const { return spec_; }
  // Thread-unsafe introspection; call only after join() (tests).
  std::size_t experts_hosted() const { return store_->size(); }
  std::size_t requests_served() const { return requests_served_; }
  std::size_t duplicates_replayed() const { return duplicates_replayed_; }
  std::size_t corrupt_dropped() const { return corrupt_dropped_; }
  const store::ExpertStore& expert_store() const { return *store_; }

 private:
  struct PendingRequest {
    ExpertKey key;
    ag::Variable input;
    ag::Variable output;
  };
  // Backward fragments of one logical transfer (the master's VELA_OVERLAP
  // dispatch pipeline) collected until the train is complete; keyed by
  // chunk index, so iteration is chunk order. May span worker batches.
  struct PartialTrain {
    std::size_t chunk_count = 0;
    std::map<std::size_t, comm::Message> fragments;
  };

  void run();
  void run_loop(const std::string& tag);
  // Drains and handles one batch of messages. Consecutive forward (resp.
  // backward) requests are computed as parallel tasks on the shared
  // util::ThreadPool; everything else is handled serially in arrival order.
  // Returns false when the worker must terminate (closed channel, shutdown
  // or injected crash).
  bool process_batch(std::vector<comm::Message> batch, const std::string& tag);
  // Computes a run of forward (backward) requests in parallel and sends the
  // replies in arrival order. Backward runs are grouped by expert id so each
  // expert's gradient accumulation stays sequential (and so deterministic).
  bool handle_forward_run(std::vector<comm::Message>& run);
  bool handle_backward_run(std::vector<comm::Message>& run);
  // Backpropagates a complete fragment train through ONE full-batch tape
  // (forward recomputed on the concatenated chunks — the expert kernels are
  // row-local, so values match the per-chunk tapes bit-for-bit) and replies
  // per fragment in chunk order. Keeps the LoRA gradient accumulation order
  // identical to the unchunked exchange.
  bool stitched_backward(std::uint64_t base_id, PartialTrain train);
  void install_expert(const ExpertKey& key, const Tensor* state);
  // CheckError (with the historical message) when the store does not host
  // `key` — the protocol-violation death the master observes as silence.
  void require_hosted(const ExpertKey& key) const;
  // Unpins every pending request's expert and drops the tapes (step
  // boundary, abort).
  void release_pending();
  // Sends a reply and caches a copy under `key` for idempotent replay.
  // Returns false when the master-side channel is gone (terminate loop).
  bool reply_and_cache(std::uint64_t key, comm::Message reply);
  static std::uint64_t dedupe_key(const comm::Message& m) {
    // (type, id) key matching ReliableLink's: forward and backward of the
    // same request share an id, so the type disambiguates the cache entry.
    return (static_cast<std::uint64_t>(m.type) << 56) ^ m.request_id;
  }

  WorkerSpec spec_;
  // Dispatch-payload codec resolved from the spec (comm/wire_codec.h) —
  // necessarily the same resolution the master's broker performed. Applies
  // to compute replies only; state/snapshot replies stay raw fp32.
  comm::WireCodec codec_;
  comm::DuplexLink* link_;
  std::unique_ptr<store::ExpertStore> store_;
  // Every pending request holds one pin on its expert: the tape references
  // the expert's parameter nodes, so eviction before the backward retires
  // would orphan the gradients the backward is about to accumulate.
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  // Incomplete backward fragment trains, keyed by the train's base request
  // id (fragment ids are consecutive: base + chunk_index). Cleared with
  // pending_ at step boundaries and aborts.
  std::unordered_map<std::uint64_t, PartialTrain> partial_backward_;
  // (request type, request id) → cached reply, bounded FIFO.
  std::unordered_map<std::uint64_t, comm::Message> reply_cache_;
  std::deque<std::uint64_t> reply_cache_order_;
  std::size_t requests_served_ = 0;
  std::size_t duplicates_replayed_ = 0;
  std::size_t corrupt_dropped_ = 0;
  std::thread thread_;
};

}  // namespace vela::core
