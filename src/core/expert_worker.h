// The Expert Manager process of Fig. 4, realized as a thread.
//
// A worker owns a subset of the model's experts, serves forward requests
// (keeping the local autograd tape alive per request), resumes backward
// passes when the master ships output gradients, and runs a *local* AdamW
// per expert at the end of every step — no gradient ever leaves the worker,
// which is precisely how VELA avoids data parallelism's all-reduce.
#pragma once

#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "autograd/variable.h"
#include "comm/channel.h"
#include "core/protocol.h"
#include "nn/expert.h"
#include "nn/optimizer.h"

namespace vela::core {

class ExpertWorker {
 public:
  // `link` is the duplex master↔worker connection; the worker receives on
  // link->to_worker and replies on link->to_master. `initial_experts` are
  // constructed (from the spec's base_seed) before the thread starts.
  ExpertWorker(WorkerSpec spec, comm::DuplexLink* link,
               std::vector<ExpertKey> initial_experts);
  ~ExpertWorker();

  ExpertWorker(const ExpertWorker&) = delete;
  ExpertWorker& operator=(const ExpertWorker&) = delete;

  void start();
  // Blocks until the worker thread exits (send kShutdown first, or close the
  // channel).
  void join();

  const WorkerSpec& spec() const { return spec_; }
  // Thread-unsafe introspection; call only after join() (tests).
  std::size_t experts_hosted() const { return experts_.size(); }
  std::size_t requests_served() const { return requests_served_; }

 private:
  struct HostedExpert {
    std::unique_ptr<nn::SwiGLUExpert> expert;
    std::unique_ptr<nn::AdamW> optimizer;  // per-expert, moves with it
  };
  struct PendingRequest {
    ExpertKey key;
    ag::Variable input;
    ag::Variable output;
  };

  void run();
  void run_loop(const std::string& tag);
  void install_expert(const ExpertKey& key, const Tensor* state);
  HostedExpert& hosted(const ExpertKey& key);

  WorkerSpec spec_;
  comm::DuplexLink* link_;
  std::map<ExpertKey, HostedExpert> experts_;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::size_t requests_served_ = 0;
  std::thread thread_;
};

}  // namespace vela::core
