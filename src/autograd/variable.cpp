#include "autograd/variable.h"

#include <unordered_set>

#include "util/audit.h"
#include "util/check.h"

namespace vela::ag {

namespace detail {

void Node::accumulate_grad(const Tensor& g) {
  VELA_CHECK_MSG(g.same_shape(value),
                 "gradient shape " << const_cast<Tensor&>(g).shape_string()
                                   << " != value shape "
                                   << value.shape_string());
  if (!grad_ready) {
    grad = g;
    grad_ready = true;
  } else {
    grad.add_(g);
  }
}

}  // namespace detail

Variable Variable::leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<detail::Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return from_node(std::move(node));
}

Variable Variable::from_node(std::shared_ptr<detail::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

const Tensor& Variable::value() const {
  VELA_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  VELA_CHECK(defined());
  return node_->value;
}

bool Variable::requires_grad() const {
  VELA_CHECK(defined());
  return node_->requires_grad;
}

const Tensor& Variable::grad() const {
  VELA_CHECK(defined());
  VELA_CHECK_MSG(node_->grad_ready, "grad() read before backward()");
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad_ready; }

void Variable::zero_grad() {
  VELA_CHECK(defined());
  node_->grad = Tensor();
  node_->grad_ready = false;
}

void Variable::set_grad(Tensor grad) {
  VELA_CHECK(defined());
  VELA_CHECK_MSG(grad.same_shape(node_->value),
                 "set_grad shape mismatch: " << grad.shape_string() << " vs "
                                             << node_->value.shape_string());
  node_->grad = std::move(grad);
  node_->grad_ready = true;
}

Variable make_op(Tensor value, std::vector<Variable> parents,
                 std::function<void(detail::Node&)> backward_fn) {
  auto node = std::make_shared<detail::Node>();
  node->value = std::move(value);
  bool any = false;
  node->parents.reserve(parents.size());
  for (const auto& p : parents) {
    VELA_CHECK_MSG(p.defined(), "op parent is an undefined Variable");
    node->parents.push_back(p.node());
    any = any || p.node()->requires_grad;
  }
  node->requires_grad = any;
  if (any) node->backward_fn = std::move(backward_fn);
  return Variable::from_node(std::move(node));
}

void backward(const Variable& root) {
  VELA_CHECK(root.defined());
  VELA_CHECK_MSG(root.value().size() == 1,
                 "backward() requires a scalar root, got shape "
                     << root.value().shape_string());
  backward_from(root, Tensor::ones(root.value().shape()));
}

void backward_from(const Variable& root, const Tensor& grad) {
  VELA_CHECK(root.defined());
  VELA_CHECK_MSG(root.requires_grad(),
                 "backward_from() on a graph with no trainable leaves");

  // Iterative post-order topological sort (recursion would overflow on deep
  // transformer graphs).
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  struct Frame {
    detail::Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root.node().get(), 0});
  visited.insert(root.node().get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      detail::Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  root.node()->accumulate_grad(grad);
  const bool auditing = audit::enabled();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* node = *it;
    if (!node->backward_fn || !node->grad_ready) continue;
    if (auditing) {
      audit::check_backward_tensors(node->value, node->grad, "backward node");
    }
    node->backward_fn(*node);
    if (auditing) {
      // backward_fn just wrote into the parents' grads; validate each one
      // while the producing node is still identifiable.
      for (const auto& parent : node->parents) {
        if (parent->grad_ready) {
          audit::check_backward_tensors(parent->value, parent->grad,
                                        "backward parent");
        }
      }
    }
  }
}

}  // namespace vela::ag
