#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace vela::ag {

using detail::Node;

namespace {

// Row-parallel helper: rows are independent in every kernel below, so chunk
// boundaries (fixed by row count and grain) never affect the result.
void for_rows(std::size_t n, std::size_t cols,
              const std::function<void(std::size_t)>& row_fn) {
  constexpr std::size_t kRowGrainElems = 16384;
  const std::size_t grain =
      std::max<std::size_t>(1, kRowGrainElems / std::max<std::size_t>(cols, 1));
  util::ThreadPool::global().parallel_for(
      n, grain, [&](std::size_t r0, std::size_t r1, std::size_t) {
        for (std::size_t i = r0; i < r1; ++i) row_fn(i);
      });
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  Tensor value = ops::add(a.value(), b.value());
  return make_op(std::move(value), {a, b}, [](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
    if (n.parents[1]->requires_grad) n.parents[1]->accumulate_grad(n.grad);
  });
}

Variable sub(const Variable& a, const Variable& b) {
  Tensor value = ops::sub(a.value(), b.value());
  return make_op(std::move(value), {a, b}, [](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
    if (n.parents[1]->requires_grad)
      n.parents[1]->accumulate_grad(ops::neg(n.grad));
  });
}

Variable mul(const Variable& a, const Variable& b) {
  Tensor value = ops::mul(a.value(), b.value());
  return make_op(std::move(value), {a, b}, [](Node& n) {
    if (n.parents[0]->requires_grad)
      n.parents[0]->accumulate_grad(ops::mul(n.grad, n.parents[1]->value));
    if (n.parents[1]->requires_grad)
      n.parents[1]->accumulate_grad(ops::mul(n.grad, n.parents[0]->value));
  });
}

Variable scale(const Variable& a, float s) {
  Tensor value = ops::scale(a.value(), s);
  return make_op(std::move(value), {a}, [s](Node& n) {
    n.parents[0]->accumulate_grad(ops::scale(n.grad, s));
  });
}

Variable silu(const Variable& a) {
  Tensor value = ops::silu(a.value());
  return make_op(std::move(value), {a}, [](Node& n) {
    n.parents[0]->accumulate_grad(
        ops::mul(n.grad, ops::silu_grad(n.parents[0]->value)));
  });
}

Variable matmul(const Variable& a, const Variable& b) {
  Tensor value = ops::matmul(a.value(), b.value());
  return make_op(std::move(value), {a, b}, [](Node& n) {
    // dA = dC Bᵀ ; dB = Aᵀ dC.
    if (n.parents[0]->requires_grad)
      n.parents[0]->accumulate_grad(ops::matmul_nt(n.grad, n.parents[1]->value));
    if (n.parents[1]->requires_grad)
      n.parents[1]->accumulate_grad(ops::matmul_tn(n.parents[0]->value, n.grad));
  });
}

Variable matmul_nt(const Variable& a, const Variable& b) {
  Tensor value = ops::matmul_nt(a.value(), b.value());
  return make_op(std::move(value), {a, b}, [](Node& n) {
    // C = A Bᵀ: dA = dC B ; dB = dCᵀ A.
    if (n.parents[0]->requires_grad)
      n.parents[0]->accumulate_grad(ops::matmul(n.grad, n.parents[1]->value));
    if (n.parents[1]->requires_grad)
      n.parents[1]->accumulate_grad(ops::matmul_tn(n.grad, n.parents[0]->value));
  });
}

Variable linear_nt(const Variable& x, const Variable& w) {
  Tensor value = ops::matmul_nt(x.value(), w.value());
  return make_op(std::move(value), {x, w}, [](Node& n) {
    // y = x Wᵀ: dX = dY W ; dW = dYᵀ X.
    if (n.parents[0]->requires_grad)
      n.parents[0]->accumulate_grad(ops::matmul(n.grad, n.parents[1]->value));
    if (n.parents[1]->requires_grad)
      n.parents[1]->accumulate_grad(ops::matmul_tn(n.grad, n.parents[0]->value));
  });
}

Variable add_row_broadcast(const Variable& x, const Variable& bias) {
  Tensor value = ops::add_row_broadcast(x.value(), bias.value());
  return make_op(std::move(value), {x, bias}, [](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
    if (n.parents[1]->requires_grad)
      n.parents[1]->accumulate_grad(ops::sum_rows(n.grad));
  });
}

Variable rmsnorm(const Variable& x, const Variable& gain, float eps) {
  const Tensor& xv = x.value();
  VELA_CHECK(xv.rank() == 2 && gain.value().rank() == 1 &&
             gain.value().dim(0) == xv.cols());
  const std::size_t n = xv.rows(), m = xv.cols();
  // Precompute the per-row inverse RMS once; the backward closure reuses it.
  auto inv_rms = std::make_shared<std::vector<float>>(n);
  Tensor value({n, m});
  for_rows(n, m, [&](std::size_t i) {
    double ss = 0.0;
    for (std::size_t j = 0; j < m; ++j) ss += double(xv.at(i, j)) * xv.at(i, j);
    const float r =
        1.0f / std::sqrt(static_cast<float>(ss / static_cast<double>(m)) + eps);
    (*inv_rms)[i] = r;
    for (std::size_t j = 0; j < m; ++j)
      value.at(i, j) = xv.at(i, j) * r * gain.value().at(j);
  });
  return make_op(std::move(value), {x, gain}, [inv_rms, n, m](Node& node) {
    const Tensor& px = node.parents[0]->value;
    const Tensor& g = node.parents[1]->value;
    const Tensor& dy = node.grad;
    if (node.parents[0]->requires_grad) {
      Tensor dx({n, m});
      for_rows(n, m, [&](std::size_t i) {
        const float r = (*inv_rms)[i];
        double proj = 0.0;  // Σ_j dy_j g_j x_j
        for (std::size_t j = 0; j < m; ++j)
          proj += double(dy.at(i, j)) * g.at(j) * px.at(i, j);
        const float c =
            static_cast<float>(proj) * r * r * r / static_cast<float>(m);
        for (std::size_t j = 0; j < m; ++j)
          dx.at(i, j) = r * g.at(j) * dy.at(i, j) - c * px.at(i, j);
      });
      node.parents[0]->accumulate_grad(dx);
    }
    if (node.parents[1]->requires_grad) {
      Tensor dg({m});
      for (std::size_t i = 0; i < n; ++i) {
        const float r = (*inv_rms)[i];
        for (std::size_t j = 0; j < m; ++j)
          dg.at(j) += dy.at(i, j) * px.at(i, j) * r;
      }
      node.parents[1]->accumulate_grad(dg);
    }
  });
}

namespace {

// Shared softmax backward: dz = (dy - rowdot(dy, y)) * y.
Tensor softmax_backward(const Tensor& y, const Tensor& dy) {
  const std::size_t n = y.rows(), m = y.cols();
  Tensor dz({n, m});
  for_rows(n, m, [&](std::size_t i) {
    double inner = 0.0;
    for (std::size_t j = 0; j < m; ++j)
      inner += double(dy.at(i, j)) * y.at(i, j);
    for (std::size_t j = 0; j < m; ++j)
      dz.at(i, j) = (dy.at(i, j) - static_cast<float>(inner)) * y.at(i, j);
  });
  return dz;
}

}  // namespace

Variable softmax_rows(const Variable& logits) {
  Tensor value = ops::softmax_rows(logits.value());
  return make_op(std::move(value), {logits}, [](Node& n) {
    n.parents[0]->accumulate_grad(softmax_backward(n.value, n.grad));
  });
}

Variable causal_masked_softmax(const Variable& scores) {
  const Tensor& s = scores.value();
  VELA_CHECK_MSG(s.rank() == 2 && s.rows() == s.cols(),
                 "causal mask requires a square score matrix");
  const std::size_t t = s.rows();
  Tensor value({t, t});
  for_rows(t, t, [&](std::size_t i) {
    float mx = s.at(i, 0);
    for (std::size_t j = 1; j <= i; ++j) mx = std::max(mx, s.at(i, j));
    double total = 0.0;
    for (std::size_t j = 0; j <= i; ++j) {
      const float e = std::exp(s.at(i, j) - mx);
      value.at(i, j) = e;
      total += e;
    }
    const float inv = static_cast<float>(1.0 / total);
    for (std::size_t j = 0; j <= i; ++j) value.at(i, j) *= inv;
    // j > i stays exactly zero: masked out.
  });
  return make_op(std::move(value), {scores}, [](Node& n) {
    // Masked entries have y == 0, so softmax_backward already yields zero
    // gradient for them.
    n.parents[0]->accumulate_grad(softmax_backward(n.value, n.grad));
  });
}

Variable embedding(const Variable& weight, const std::vector<std::size_t>& ids) {
  Tensor value = ops::gather_rows(weight.value(), ids);
  auto ids_copy = std::make_shared<std::vector<std::size_t>>(ids);
  return make_op(std::move(value), {weight}, [ids_copy](Node& n) {
    Tensor dw(n.parents[0]->value.shape());
    ops::scatter_add_rows(dw, n.grad, *ids_copy);
    n.parents[0]->accumulate_grad(dw);
  });
}

Variable gather_rows(const Variable& x, const std::vector<std::size_t>& indices) {
  Tensor value = ops::gather_rows(x.value(), indices);
  auto idx = std::make_shared<std::vector<std::size_t>>(indices);
  return make_op(std::move(value), {x}, [idx](Node& n) {
    Tensor dx(n.parents[0]->value.shape());
    ops::scatter_add_rows(dx, n.grad, *idx);
    n.parents[0]->accumulate_grad(dx);
  });
}

Variable scatter_rows(const Variable& x, const std::vector<std::size_t>& indices,
                      std::size_t out_rows) {
  const Tensor& xv = x.value();
  VELA_CHECK(xv.rank() == 2 && xv.rows() == indices.size());
  Tensor value({out_rows, xv.cols()});
  ops::scatter_add_rows(value, xv, indices);
  auto idx = std::make_shared<std::vector<std::size_t>>(indices);
  return make_op(std::move(value), {x}, [idx](Node& n) {
    n.parents[0]->accumulate_grad(ops::gather_rows(n.grad, *idx));
  });
}

Variable scale_rows(const Variable& x, const Variable& weights) {
  const Tensor& xv = x.value();
  const Tensor& wv = weights.value();
  VELA_CHECK(xv.rank() == 2 && wv.rank() == 1 && wv.dim(0) == xv.rows());
  const std::size_t n = xv.rows(), m = xv.cols();
  Tensor value({n, m});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) value.at(i, j) = xv.at(i, j) * wv.at(i);
  return make_op(std::move(value), {x, weights}, [n, m](Node& node) {
    const Tensor& px = node.parents[0]->value;
    const Tensor& pw = node.parents[1]->value;
    if (node.parents[0]->requires_grad) {
      Tensor dx({n, m});
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < m; ++j)
          dx.at(i, j) = node.grad.at(i, j) * pw.at(i);
      node.parents[0]->accumulate_grad(dx);
    }
    if (node.parents[1]->requires_grad) {
      Tensor dw({n});
      for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < m; ++j)
          acc += double(node.grad.at(i, j)) * px.at(i, j);
        dw.at(i) = static_cast<float>(acc);
      }
      node.parents[1]->accumulate_grad(dw);
    }
  });
}

Variable slice_cols(const Variable& x, std::size_t start, std::size_t len) {
  const Tensor& xv = x.value();
  VELA_CHECK(xv.rank() == 2 && start + len <= xv.cols() && len > 0);
  const std::size_t n = xv.rows();
  Tensor value({n, len});
  for (std::size_t i = 0; i < n; ++i)
    std::memcpy(value.data() + i * len, xv.data() + i * xv.cols() + start,
                len * sizeof(float));
  const std::size_t cols = xv.cols();
  return make_op(std::move(value), {x}, [start, len, n, cols](Node& node) {
    Tensor dx({n, cols});
    for (std::size_t i = 0; i < n; ++i)
      std::memcpy(dx.data() + i * cols + start, node.grad.data() + i * len,
                  len * sizeof(float));
    node.parents[0]->accumulate_grad(dx);
  });
}

Variable slice_vec(const Variable& x, std::size_t start, std::size_t len) {
  const Tensor& xv = x.value();
  VELA_CHECK(xv.rank() == 1 && start + len <= xv.dim(0) && len > 0);
  Tensor value({len});
  std::memcpy(value.data(), xv.data() + start, len * sizeof(float));
  const std::size_t total = xv.dim(0);
  return make_op(std::move(value), {x}, [start, len, total](Node& node) {
    Tensor dx({total});
    std::memcpy(dx.data() + start, node.grad.data(), len * sizeof(float));
    node.parents[0]->accumulate_grad(dx);
  });
}

Variable concat_cols(const std::vector<Variable>& parts) {
  VELA_CHECK(!parts.empty());
  const std::size_t n = parts[0].value().rows();
  std::size_t total = 0;
  for (const auto& p : parts) {
    VELA_CHECK(p.value().rank() == 2 && p.value().rows() == n);
    total += p.value().cols();
  }
  Tensor value({n, total});
  std::size_t offset = 0;
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> widths;
  for (const auto& p : parts) {
    const std::size_t w = p.value().cols();
    for (std::size_t i = 0; i < n; ++i)
      std::memcpy(value.data() + i * total + offset,
                  p.value().data() + i * w, w * sizeof(float));
    offsets.push_back(offset);
    widths.push_back(w);
    offset += w;
  }
  return make_op(std::move(value), parts,
                 [offsets, widths, n, total](Node& node) {
                   for (std::size_t k = 0; k < node.parents.size(); ++k) {
                     if (!node.parents[k]->requires_grad) continue;
                     const std::size_t w = widths[k], off = offsets[k];
                     Tensor dp({n, w});
                     for (std::size_t i = 0; i < n; ++i)
                       std::memcpy(dp.data() + i * w,
                                   node.grad.data() + i * total + off,
                                   w * sizeof(float));
                     node.parents[k]->accumulate_grad(dp);
                   }
                 });
}

Variable concat_rows(const std::vector<Variable>& parts) {
  VELA_CHECK(!parts.empty());
  const std::size_t m = parts[0].value().cols();
  std::size_t total = 0;
  for (const auto& p : parts) {
    VELA_CHECK(p.value().rank() == 2 && p.value().cols() == m);
    total += p.value().rows();
  }
  Tensor value({total, m});
  std::size_t row = 0;
  std::vector<std::size_t> row_offsets;
  std::vector<std::size_t> row_counts;
  for (const auto& p : parts) {
    const std::size_t r = p.value().rows();
    std::memcpy(value.data() + row * m, p.value().data(),
                r * m * sizeof(float));
    row_offsets.push_back(row);
    row_counts.push_back(r);
    row += r;
  }
  return make_op(std::move(value), parts,
                 [row_offsets, row_counts, m](Node& node) {
                   for (std::size_t k = 0; k < node.parents.size(); ++k) {
                     if (!node.parents[k]->requires_grad) continue;
                     const std::size_t r = row_counts[k];
                     Tensor dp({r, m});
                     std::memcpy(dp.data(),
                                 node.grad.data() + row_offsets[k] * m,
                                 r * m * sizeof(float));
                     node.parents[k]->accumulate_grad(dp);
                   }
                 });
}

Variable sum(const Variable& x) {
  Tensor value({1});
  value[0] = ops::sum(x.value());
  return make_op(std::move(value), {x}, [](Node& n) {
    Tensor dx(n.parents[0]->value.shape());
    dx.fill(n.grad[0]);
    n.parents[0]->accumulate_grad(dx);
  });
}

Variable mean(const Variable& x) {
  const float inv = 1.0f / static_cast<float>(x.value().size());
  Tensor value({1});
  value[0] = ops::mean(x.value());
  return make_op(std::move(value), {x}, [inv](Node& n) {
    Tensor dx(n.parents[0]->value.shape());
    dx.fill(n.grad[0] * inv);
    n.parents[0]->accumulate_grad(dx);
  });
}

Variable logsumexp_rows(const Variable& x) {
  const Tensor& xv = x.value();
  VELA_CHECK(xv.rank() == 2);
  const std::size_t n = xv.rows(), m = xv.cols();
  Tensor value({n});
  for (std::size_t i = 0; i < n; ++i) {
    float mx = xv.at(i, 0);
    for (std::size_t j = 1; j < m; ++j) mx = std::max(mx, xv.at(i, j));
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) total += std::exp(xv.at(i, j) - mx);
    value.at(i) = mx + static_cast<float>(std::log(total));
  }
  return make_op(std::move(value), {x}, [n, m](Node& node) {
    // d lse_i / d x_ij = softmax(x_i)_j.
    const Tensor& px = node.parents[0]->value;
    Tensor dx = ops::softmax_rows(px);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) dx.at(i, j) *= node.grad.at(i);
    }
    node.parents[0]->accumulate_grad(dx);
  });
}

Variable cross_entropy(const Variable& logits,
                       const std::vector<std::size_t>& targets) {
  Tensor value({1});
  value[0] = ops::cross_entropy(logits.value(), targets);
  auto tgt = std::make_shared<std::vector<std::size_t>>(targets);
  return make_op(std::move(value), {logits}, [tgt](Node& n) {
    Tensor dl = ops::cross_entropy_grad(n.parents[0]->value, *tgt);
    dl.scale_(n.grad[0]);
    n.parents[0]->accumulate_grad(dl);
  });
}

float gradcheck_max_abs_err(Variable& leaf,
                            const std::function<Variable()>& loss_fn,
                            float eps) {
  VELA_CHECK(leaf.requires_grad());
  // Analytic gradient.
  leaf.zero_grad();
  Variable loss = loss_fn();
  backward(loss);
  const Tensor analytic = leaf.grad();

  Tensor& theta = leaf.mutable_value();
  float max_err = 0.0f;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    const float saved = theta[i];
    theta[i] = saved + eps;
    const float up = loss_fn().value()[0];
    theta[i] = saved - eps;
    const float down = loss_fn().value()[0];
    theta[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    max_err = std::max(max_err, std::abs(numeric - analytic[i]));
  }
  return max_err;
}

}  // namespace vela::ag
