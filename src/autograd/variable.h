// Tape-based reverse-mode automatic differentiation.
//
// This engine is the stand-in for LibTorch in the original system: it supplies
// exact gradients for the backbone, the gating mechanism, LoRA adapters and
// the expert FFNs. The design is a dynamic define-by-run graph: every op in
// autograd/ops.h produces a Variable whose Node remembers its parents and a
// closure that pushes gradients to them. Variables are cheap value-semantic
// handles (shared_ptr to the Node), so routing-dependent graphs — the MoE
// dispatch — fall out naturally.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace vela::ag {

class Variable;

namespace detail {

struct Node {
  Tensor value;
  Tensor grad;          // allocated lazily on first accumulation
  bool requires_grad = false;
  bool grad_ready = false;  // whether `grad` has been allocated
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's grad into the parents' grads. Empty for leaves.
  std::function<void(Node&)> backward_fn;

  void accumulate_grad(const Tensor& g);
};

}  // namespace detail

// A differentiable tensor handle. Copying a Variable aliases the same
// underlying node (same value and gradient buffer).
class Variable {
 public:
  Variable() = default;

  // Leaf construction. Leaves with requires_grad=true receive gradients in
  // backward(); constants do not.
  static Variable leaf(Tensor value, bool requires_grad);
  static Variable constant(Tensor value) { return leaf(std::move(value), false); }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();  // optimizers update leaf values in place
  bool requires_grad() const;

  // The accumulated gradient. Only valid after backward(); zero-shaped
  // gradient means "never touched".
  const Tensor& grad() const;
  bool has_grad() const;
  void zero_grad();
  // Overwrites the gradient (distributed gradient averaging installs the
  // all-reduced result before the optimizer step). Shape must match value.
  void set_grad(Tensor grad);

  // Internal: used by op constructors.
  std::shared_ptr<detail::Node> node() const { return node_; }
  static Variable from_node(std::shared_ptr<detail::Node> node);

 private:
  std::shared_ptr<detail::Node> node_;
};

// Runs reverse-mode accumulation from `root`, which must hold exactly one
// element (a scalar loss). Gradients accumulate into every reachable leaf
// with requires_grad=true. Safe to call multiple times (grads accumulate,
// mirroring gradient-accumulation training).
void backward(const Variable& root);

// Reverse sweep seeded with an externally supplied output gradient — how an
// expert worker resumes backpropagation when the master ships it dL/dy for a
// previously computed expert output (Fig. 4's gradient receiver). `grad`
// must match root's shape.
void backward_from(const Variable& root, const Tensor& grad);

// Builds an interior node: value computed by the caller, parents recorded,
// backward closure invoked during the reverse sweep iff any parent requires
// grad. Exposed for ops.cpp and for user-defined ops (the ExpertBroker layer
// in src/core defines its distributed op through this hook).
Variable make_op(Tensor value, std::vector<Variable> parents,
                 std::function<void(detail::Node&)> backward_fn);

}  // namespace vela::ag
