// Differentiable operations over ag::Variable.
//
// Each op computes its value with the raw kernels in tensor/ops.h and
// registers a closure with the exact vector–Jacobian product. The set is the
// minimal closure needed by a Mixtral-style MoE transformer with LoRA:
// linear algebra, SwiGLU, RMSNorm, (masked) softmax, embedding, the row
// gather/scatter pair that implements MoE token dispatch, and cross-entropy.
#pragma once

#include <cstddef>
#include <vector>

#include "autograd/variable.h"

namespace vela::ag {

// --- elementwise -----------------------------------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);  // Hadamard
Variable scale(const Variable& a, float s);
Variable silu(const Variable& a);

// --- linear algebra --------------------------------------------------------
Variable matmul(const Variable& a, const Variable& b);
// C = A · Bᵀ for A [n,k], B [m,k] (attention scores q·kᵀ).
Variable matmul_nt(const Variable& a, const Variable& b);
// y = x · Wᵀ for a [out,in] weight matrix (the Linear layer convention).
Variable linear_nt(const Variable& x, const Variable& w);
Variable add_row_broadcast(const Variable& x, const Variable& bias);

// --- normalization / activation --------------------------------------------
// RMSNorm with learned per-feature gain: y = x / rms(x) * g.
Variable rmsnorm(const Variable& x, const Variable& gain, float eps = 1e-5f);
Variable softmax_rows(const Variable& logits);
// Softmax over a square [T, T] score matrix with a causal mask (entries
// j > i are excluded from both the forward pass and the gradient).
Variable causal_masked_softmax(const Variable& scores);

// --- lookup / routing ------------------------------------------------------
// Rows of `weight` ([V, H]) selected by token ids; backward scatter-adds.
Variable embedding(const Variable& weight, const std::vector<std::size_t>& ids);
// Gathers rows `indices` of x (MoE dispatch). indices must be non-empty.
Variable gather_rows(const Variable& x, const std::vector<std::size_t>& indices);
// Places row i of x at row indices[i] of a zero [out_rows, m] tensor,
// accumulating on collisions (MoE combine).
Variable scatter_rows(const Variable& x, const std::vector<std::size_t>& indices,
                      std::size_t out_rows);
// Multiplies row i of x by weights[i] (rank-1 weights of length rows(x)) —
// the per-token gate weighting of expert outputs.
Variable scale_rows(const Variable& x, const Variable& weights);

// --- column slicing (multi-head attention) ---------------------------------
Variable slice_cols(const Variable& x, std::size_t start, std::size_t len);
// Contiguous slice of a rank-1 vector (per-expert weight segments).
Variable slice_vec(const Variable& x, std::size_t start, std::size_t len);
Variable concat_cols(const std::vector<Variable>& parts);
// Stacks rank-2 parts with equal column counts on top of each other — the
// MoE pre-processing reshape that flattens a batch of sequences into one
// token list. Use gather_rows with a contiguous range to split back.
Variable concat_rows(const std::vector<Variable>& parts);

// --- reductions / losses ----------------------------------------------------
Variable sum(const Variable& x);                    // scalar [1]
Variable mean(const Variable& x);                   // scalar [1]
// Row-wise log Σ exp of a [n, m] tensor → rank-1 [n] (router z-loss).
Variable logsumexp_rows(const Variable& x);
// Mean token-level cross entropy of next-token logits. Scalar [1].
Variable cross_entropy(const Variable& logits,
                       const std::vector<std::size_t>& targets);

// Gradient check helper: central-difference numerical gradient of
// `loss_fn` w.r.t. `leaf`, compared against the analytic one.
// Returns max absolute elementwise deviation.
float gradcheck_max_abs_err(Variable& leaf,
                            const std::function<Variable()>& loss_fn,
                            float eps = 1e-3f);

}  // namespace vela::ag
