#include "placement/rounding.h"

#include <limits>
#include <numeric>

#include "util/check.h"

namespace vela::placement {

RelaxedSolution::RelaxedSolution(std::size_t num_workers,
                                 std::size_t num_layers,
                                 std::size_t num_experts)
    : workers_(num_workers),
      layers_(num_layers),
      experts_(num_experts),
      x_(num_workers * num_layers * num_experts, 0.0) {
  VELA_CHECK(num_workers > 0 && num_layers > 0 && num_experts > 0);
}

double RelaxedSolution::get(std::size_t worker, std::size_t layer,
                            std::size_t expert) const {
  VELA_CHECK(worker < workers_ && layer < layers_ && expert < experts_);
  return x_[(worker * layers_ + layer) * experts_ + expert];
}

void RelaxedSolution::set(std::size_t worker, std::size_t layer,
                          std::size_t expert, double value) {
  VELA_CHECK(worker < workers_ && layer < layers_ && expert < experts_);
  VELA_CHECK_MSG(value >= -1e-9 && value <= 1.0 + 1e-9,
                 "relaxed value out of [0, 1]: " << value);
  x_[(worker * layers_ + layer) * experts_ + expert] = value;
}

double RelaxedSolution::column_sum(std::size_t layer,
                                   std::size_t expert) const {
  double total = 0.0;
  for (std::size_t w = 0; w < workers_; ++w) total += get(w, layer, expert);
  return total;
}

Placement round_relaxed_solution(const RelaxedSolution& relaxed,
                                 const std::vector<std::size_t>& capacity,
                                 RoundingReport* report) {
  VELA_CHECK(capacity.size() == relaxed.num_workers());
  const std::size_t total_experts =
      relaxed.num_layers() * relaxed.num_experts();
  VELA_CHECK_MSG(std::accumulate(capacity.begin(), capacity.end(),
                                 std::size_t{0}) >= total_experts,
                 "capacities cannot host every expert");

  RoundingReport local_report;
  constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> chosen(
      relaxed.num_layers(),
      std::vector<std::size_t>(relaxed.num_experts(), kUnassigned));
  std::vector<std::size_t> load(relaxed.num_workers(), 0);

  // Step 1: threshold at 0.5 (strictly greater, per the paper's "any value
  // above 0.5 becomes 1"). At most one worker can exceed 0.5 per expert.
  for (std::size_t l = 0; l < relaxed.num_layers(); ++l) {
    for (std::size_t e = 0; e < relaxed.num_experts(); ++e) {
      for (std::size_t w = 0; w < relaxed.num_workers(); ++w) {
        if (relaxed.get(w, l, e) > 0.5) {
          chosen[l][e] = w;
          ++load[w];
          ++local_report.thresholded;
          break;
        }
      }
    }
  }

  // Step 2: capacity repair — evict lowest relaxed values from overloaded
  // workers.
  for (std::size_t w = 0; w < relaxed.num_workers(); ++w) {
    while (load[w] > capacity[w]) {
      std::size_t worst_l = 0, worst_e = 0;
      double worst = std::numeric_limits<double>::infinity();
      for (std::size_t l = 0; l < relaxed.num_layers(); ++l) {
        for (std::size_t e = 0; e < relaxed.num_experts(); ++e) {
          if (chosen[l][e] != w) continue;
          const double v = relaxed.get(w, l, e);
          if (v < worst) {
            worst = v;
            worst_l = l;
            worst_e = e;
          }
        }
      }
      chosen[worst_l][worst_e] = kUnassigned;
      --load[w];
      ++local_report.evicted;
    }
  }

  // Step 3: orphans to the highest-affinity worker with spare capacity.
  for (std::size_t l = 0; l < relaxed.num_layers(); ++l) {
    for (std::size_t e = 0; e < relaxed.num_experts(); ++e) {
      if (chosen[l][e] != kUnassigned) continue;
      std::size_t best = kUnassigned;
      double best_v = -1.0;
      for (std::size_t w = 0; w < relaxed.num_workers(); ++w) {
        if (load[w] >= capacity[w]) continue;
        const double v = relaxed.get(w, l, e);
        if (v > best_v) {
          best_v = v;
          best = w;
        }
      }
      VELA_CHECK_MSG(best != kUnassigned,
                     "no capacity left for expert (" << l << ", " << e << ")");
      chosen[l][e] = best;
      ++load[best];
      ++local_report.reassigned;
    }
  }

  Placement placement(relaxed.num_layers(), relaxed.num_experts());
  for (std::size_t l = 0; l < relaxed.num_layers(); ++l) {
    for (std::size_t e = 0; e < relaxed.num_experts(); ++e) {
      placement.assign(l, e, chosen[l][e]);
    }
  }
  if (report != nullptr) *report = local_report;
  return placement;
}

}  // namespace vela::placement
