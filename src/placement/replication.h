// Expert replication — an extension beyond the paper, inspired by the
// inference-side systems it cites (Lina allocates *more resources* to
// popular experts rather than just placing them well).
//
// A ReplicatedPlacement keeps the base single-replica assignment and adds
// extra replicas for selected (layer, expert) pairs. Token groups split
// across the replicas of their expert proportionally to the replicas'
// master-link bandwidths, which minimizes that group's transfer time.
//
// Scope note: replication is modelled at the placement/traffic level (and
// exposed through VelaTrafficModel::account_step_replicated). Using it while
// *training* LoRA adapters would require synchronizing replica gradients —
// exactly the all-reduce VELA exists to avoid — so the runtime intentionally
// does not replicate; see DESIGN.md. The ablation quantifies how much comm
// time replication could additionally save (e.g. for the frozen-expert
// forward passes of evaluation).
#pragma once

#include <cstddef>
#include <vector>

#include "placement/placement.h"

namespace vela::placement {

class ReplicatedPlacement {
 public:
  // Starts with one replica per expert, taken from `base`.
  explicit ReplicatedPlacement(Placement base);

  // Adds a replica of (layer, expert) on `worker`; the worker must not
  // already host a replica of that expert.
  void add_replica(std::size_t layer, std::size_t expert, std::size_t worker);

  const std::vector<std::size_t>& replicas(std::size_t layer,
                                           std::size_t expert) const;

  std::size_t num_layers() const { return replicas_.size(); }
  std::size_t num_experts() const {
    return replicas_.empty() ? 0 : replicas_[0].size();
  }
  // Total replica slots (== L·E for an unreplicated placement).
  std::size_t total_replicas() const;
  std::vector<std::size_t> worker_loads(std::size_t num_workers) const;
  bool feasible(const PlacementProblem& problem) const;

  // Fraction of expert (l, e)'s tokens sent to each of its replicas:
  // proportional to the replica workers' bandwidths.
  std::vector<double> split_fractions(std::size_t layer, std::size_t expert,
                                      const PlacementProblem& problem) const;

 private:
  // replicas_[l][e] = workers hosting a replica, ascending.
  std::vector<std::vector<std::vector<std::size_t>>> replicas_;
};

// Eq. (7) generalized to split dispatch.
double expected_comm_seconds_replicated(const PlacementProblem& problem,
                                        const ReplicatedPlacement& placement);
double expected_external_bytes_replicated(const PlacementProblem& problem,
                                          const ReplicatedPlacement& placement);

// Greedily spends up to `budget` extra replica slots: each round replicates
// the (layer, expert, worker) choice with the largest reduction of the
// total expected communication time, respecting worker capacities. Stops
// early when no candidate improves.
ReplicatedPlacement greedy_replication(const PlacementProblem& problem,
                                       const Placement& base,
                                       std::size_t budget);

}  // namespace vela::placement
