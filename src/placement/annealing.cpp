#include "placement/annealing.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "placement/evaluator.h"
#include "placement/greedy.h"
#include "placement/locality_aware.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela::placement {

Placement AnnealingPlacement::place(const PlacementProblem& problem) {
  problem.validate();
  accepted_ = 0;
  Rng rng(options_.seed);

  Placement current;
  if (options_.start_from_lp) {
    LocalityAwarePlacement lp;
    current = lp.place(problem);
  } else {
    GreedyLPTPlacement greedy;
    current = greedy.place(problem);
  }
  std::vector<std::size_t> loads = current.worker_loads(problem.num_workers);

  // Per-layer per-worker time; layer objective is the max over workers.
  std::vector<std::vector<double>> time(
      problem.num_layers, std::vector<double>(problem.num_workers, 0.0));
  std::vector<double> layer_max(problem.num_layers, 0.0);
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      const std::size_t w = current.worker_of(l, e);
      time[l][w] += problem.cost_coefficient(w, l, e);
    }
    layer_max[l] = *std::max_element(time[l].begin(), time[l].end());
  }
  double objective = 0.0;
  for (double t : layer_max) objective += t;

  Placement best = current;
  double best_objective = objective;
  double temperature = options_.initial_temperature * objective;

  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    temperature *= options_.cooling;
    const std::size_t l =
        static_cast<std::size_t>(rng.uniform_index(problem.num_layers));
    const std::size_t e =
        static_cast<std::size_t>(rng.uniform_index(problem.num_experts));
    const std::size_t from = current.worker_of(l, e);
    const std::size_t to =
        static_cast<std::size_t>(rng.uniform_index(problem.num_workers));
    if (to == from) continue;

    const bool is_swap = loads[to] >= problem.capacity[to];
    std::size_t swap_e = problem.num_experts;
    if (is_swap) {
      // Target full: pick one of its experts in this layer to swap back; if
      // it hosts none in this layer, skip (cross-layer swaps change loads
      // identically but the incremental update below is per-layer).
      std::vector<std::size_t> hosted;
      for (std::size_t o = 0; o < problem.num_experts; ++o) {
        if (o != e && current.worker_of(l, o) == to) hosted.push_back(o);
      }
      if (hosted.empty()) continue;
      swap_e = hosted[rng.uniform_index(hosted.size())];
    }

    // Incremental evaluation of the layer's new max.
    std::vector<double> trial = time[l];
    trial[from] -= problem.cost_coefficient(from, l, e);
    trial[to] += problem.cost_coefficient(to, l, e);
    if (is_swap) {
      trial[to] -= problem.cost_coefficient(to, l, swap_e);
      trial[from] += problem.cost_coefficient(from, l, swap_e);
    }
    const double new_layer_max =
        *std::max_element(trial.begin(), trial.end());
    const double delta = new_layer_max - layer_max[l];

    const bool accept =
        delta <= 0.0 ||
        (temperature > 0.0 && rng.uniform() < std::exp(-delta / temperature));
    if (!accept) continue;

    ++accepted_;
    current.assign(l, e, to);
    if (is_swap) {
      current.assign(l, swap_e, from);
    } else {
      --loads[from];
      ++loads[to];
    }
    time[l] = std::move(trial);
    objective += delta;
    layer_max[l] = new_layer_max;
    if (objective < best_objective) {
      best_objective = objective;
      best = current;
    }
  }
  VELA_CHECK(best.feasible(problem));
  return best;
}

}  // namespace vela::placement
