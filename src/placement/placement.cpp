#include "placement/placement.h"

#include <numeric>
#include <sstream>

#include "util/check.h"

namespace vela::placement {

void PlacementProblem::validate() const {
  VELA_CHECK(num_workers > 0 && num_layers > 0 && num_experts > 0);
  VELA_CHECK(probability.rank() == 2 && probability.rows() == num_layers &&
             probability.cols() == num_experts);
  VELA_CHECK(bandwidth.size() == num_workers);
  VELA_CHECK(capacity.size() == num_workers);
  VELA_CHECK(worker_node.size() == num_workers);
  for (double b : bandwidth) VELA_CHECK_MSG(b > 0.0, "bandwidth must be positive");
  VELA_CHECK(tokens_per_step > 0.0 && bytes_per_token > 0.0);
  const std::size_t total_capacity =
      std::accumulate(capacity.begin(), capacity.end(), std::size_t{0});
  VELA_CHECK_MSG(total_capacity >= total_experts(),
                 "total capacity " << total_capacity
                                   << " cannot host all "
                                   << total_experts() << " experts");
}

double PlacementProblem::cost_coefficient(std::size_t worker,
                                          std::size_t layer,
                                          std::size_t expert) const {
  // Eq. (6): bH/(4·B_n)·P_{l,e}·K. bytes_per_token is bH/8; the factor 2
  // accounts for dispatch + gather of equal size.
  return 2.0 * bytes_per_token / bandwidth[worker] *
         static_cast<double>(probability.at(layer, expert)) * tokens_per_step;
}

Placement::Placement(std::size_t num_layers, std::size_t num_experts)
    : assignment_(num_layers,
                  std::vector<std::size_t>(num_experts, kUnassigned)) {}

std::size_t Placement::worker_of(std::size_t layer, std::size_t expert) const {
  VELA_CHECK(layer < assignment_.size() && expert < assignment_[layer].size());
  const std::size_t w = assignment_[layer][expert];
  VELA_CHECK_MSG(w != kUnassigned, "expert (" << layer << ", " << expert
                                              << ") is unassigned");
  return w;
}

void Placement::assign(std::size_t layer, std::size_t expert,
                       std::size_t worker) {
  VELA_CHECK(layer < assignment_.size() && expert < assignment_[layer].size());
  assignment_[layer][expert] = worker;
}

std::vector<std::size_t> Placement::worker_loads(
    std::size_t num_workers) const {
  std::vector<std::size_t> loads(num_workers, 0);
  for (const auto& layer : assignment_) {
    for (std::size_t w : layer) {
      if (w == kUnassigned) continue;
      VELA_CHECK(w < num_workers);
      ++loads[w];
    }
  }
  return loads;
}

bool Placement::feasible(const PlacementProblem& problem) const {
  if (num_layers() != problem.num_layers ||
      num_experts() != problem.num_experts) {
    return false;
  }
  for (const auto& layer : assignment_) {
    for (std::size_t w : layer) {
      if (w == kUnassigned || w >= problem.num_workers) return false;
    }
  }
  const auto loads = worker_loads(problem.num_workers);
  for (std::size_t n = 0; n < problem.num_workers; ++n) {
    if (loads[n] > problem.capacity[n]) return false;
  }
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>> Placement::experts_of(
    std::size_t worker) const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t l = 0; l < assignment_.size(); ++l) {
    for (std::size_t e = 0; e < assignment_[l].size(); ++e) {
      if (assignment_[l][e] == worker) out.emplace_back(l, e);
    }
  }
  return out;
}

std::string Placement::serialize() const {
  std::ostringstream os;
  os << num_layers() << ' ' << num_experts() << '\n';
  for (const auto& layer : assignment_) {
    for (std::size_t e = 0; e < layer.size(); ++e) {
      VELA_CHECK_MSG(layer[e] != kUnassigned,
                     "cannot serialize a partial placement");
      if (e) os << ' ';
      os << layer[e];
    }
    os << '\n';
  }
  return os.str();
}

Placement Placement::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::size_t layers = 0, experts = 0;
  is >> layers >> experts;
  VELA_CHECK_MSG(is.good() && layers > 0 && experts > 0,
                 "malformed placement header");
  Placement p(layers, experts);
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t e = 0; e < experts; ++e) {
      std::size_t worker = 0;
      is >> worker;
      VELA_CHECK_MSG(!is.fail(), "placement data truncated at layer "
                                     << l << " expert " << e);
      p.assign(l, e, worker);
    }
  }
  return p;
}

std::string Placement::to_string() const {
  std::ostringstream os;
  for (std::size_t l = 0; l < assignment_.size(); ++l) {
    os << "layer " << l << ':';
    for (std::size_t w : assignment_[l]) {
      if (w == kUnassigned) {
        os << " -";
      } else {
        os << ' ' << w;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace vela::placement
