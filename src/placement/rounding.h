// The paper's LP rounding procedure (§IV-B), as a standalone testable unit:
//
//   1. threshold: X > 0.5 → assign;
//   2. capacity repair: overloaded workers evict their lowest-affinity
//      assignments;
//   3. orphans go to the highest-affinity worker with spare capacity.
//
// `RelaxedSolution` is the LP's X tensor; LocalityAwarePlacement feeds its
// simplex output through here, and the unit tests drive crafted fractional
// solutions through every branch.
#pragma once

#include <cstddef>
#include <vector>

#include "placement/placement.h"

namespace vela::placement {

// Relaxed assignment values X_{n,l,e} ∈ [0, 1].
class RelaxedSolution {
 public:
  RelaxedSolution(std::size_t num_workers, std::size_t num_layers,
                  std::size_t num_experts);

  double get(std::size_t worker, std::size_t layer, std::size_t expert) const;
  void set(std::size_t worker, std::size_t layer, std::size_t expert,
           double value);

  std::size_t num_workers() const { return workers_; }
  std::size_t num_layers() const { return layers_; }
  std::size_t num_experts() const { return experts_; }

  // Σ_n X_{n,l,e} for validation.
  double column_sum(std::size_t layer, std::size_t expert) const;

 private:
  std::size_t workers_, layers_, experts_;
  std::vector<double> x_;
};

struct RoundingReport {
  std::size_t thresholded = 0;
  std::size_t evicted = 0;
  std::size_t reassigned = 0;
};

// Rounds `relaxed` to a feasible binary placement under `capacity` (one
// entry per worker). Throws CheckError if no feasible completion exists
// (total capacity below the expert count).
Placement round_relaxed_solution(const RelaxedSolution& relaxed,
                                 const std::vector<std::size_t>& capacity,
                                 RoundingReport* report = nullptr);

}  // namespace vela::placement
