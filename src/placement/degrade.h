// Degrade-and-continue re-placement (DESIGN.md §11).
//
// When a worker exhausts its respawn budget and is declared dead, its
// experts must move to survivors so training continues at reduced capacity.
// The re-placement deliberately reuses the paper's own machinery instead of
// inventing a new heuristic: every healthy assignment is KEPT (wholesale
// re-balancing would migrate experts that never failed, paying transfer
// bytes for nothing), and only the orphaned experts are re-placed with the
// locality-aware rounding's orphan rule (locality_aware.h, step 3) — each
// orphan goes to the surviving worker with the lowest placement cost
// coefficient that still has spare capacity. MoETuner's framing (PAPERS.md):
// the placement objective doubles as the recovery criterion.
//
// Deterministic by construction: orphans are visited in ascending
// (layer, expert) order and cost ties break toward the lowest worker id, so
// a kill-then-degrade run and a fresh reduced-topology run compute the same
// placement bit for bit — the equivalence gate depends on this.
#pragma once

#include <vector>

#include "placement/placement.h"

namespace vela::placement {

// Re-places the experts currently assigned to dead workers onto survivors.
//
//   current  — the placement before the failure (healthy entries are kept).
//   dead     — dead[w] == true marks worker w as lost; size = worker count.
//   problem  — optional cost model. When present, an orphan prefers the
//              survivor with the lowest cost_coefficient (capacity
//              respected while any survivor has room; ties → lower load,
//              then lower id). When absent, orphans go to the least-loaded
//              survivor (ties → lowest id).
//
// If every survivor is at capacity the limit is relaxed (training at
// reduced capacity beats stalling) and the overflow count is reported via
// the return placement's loads. At least one survivor must exist.
[[nodiscard]] Placement degrade_placement(const Placement& current,
                                          const std::vector<bool>& dead,
                                          const PlacementProblem* problem);

}  // namespace vela::placement
