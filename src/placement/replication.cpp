#include "placement/replication.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace vela::placement {

ReplicatedPlacement::ReplicatedPlacement(Placement base) {
  VELA_CHECK(base.num_layers() > 0 && base.num_experts() > 0);
  replicas_.resize(base.num_layers());
  for (std::size_t l = 0; l < base.num_layers(); ++l) {
    replicas_[l].resize(base.num_experts());
    for (std::size_t e = 0; e < base.num_experts(); ++e) {
      replicas_[l][e].push_back(base.worker_of(l, e));
    }
  }
}

void ReplicatedPlacement::add_replica(std::size_t layer, std::size_t expert,
                                      std::size_t worker) {
  VELA_CHECK(layer < num_layers() && expert < num_experts());
  auto& reps = replicas_[layer][expert];
  VELA_CHECK_MSG(std::find(reps.begin(), reps.end(), worker) == reps.end(),
                 "worker " << worker << " already hosts expert (" << layer
                           << ", " << expert << ")");
  reps.insert(std::upper_bound(reps.begin(), reps.end(), worker), worker);
}

const std::vector<std::size_t>& ReplicatedPlacement::replicas(
    std::size_t layer, std::size_t expert) const {
  VELA_CHECK(layer < num_layers() && expert < num_experts());
  return replicas_[layer][expert];
}

std::size_t ReplicatedPlacement::total_replicas() const {
  std::size_t total = 0;
  for (const auto& layer : replicas_) {
    for (const auto& reps : layer) total += reps.size();
  }
  return total;
}

std::vector<std::size_t> ReplicatedPlacement::worker_loads(
    std::size_t num_workers) const {
  std::vector<std::size_t> loads(num_workers, 0);
  for (const auto& layer : replicas_) {
    for (const auto& reps : layer) {
      for (std::size_t w : reps) {
        VELA_CHECK(w < num_workers);
        ++loads[w];
      }
    }
  }
  return loads;
}

bool ReplicatedPlacement::feasible(const PlacementProblem& problem) const {
  if (num_layers() != problem.num_layers ||
      num_experts() != problem.num_experts) {
    return false;
  }
  const auto loads = worker_loads(problem.num_workers);
  for (std::size_t n = 0; n < problem.num_workers; ++n) {
    if (loads[n] > problem.capacity[n]) return false;
  }
  return true;
}

std::vector<double> ReplicatedPlacement::split_fractions(
    std::size_t layer, std::size_t expert,
    const PlacementProblem& problem) const {
  const auto& reps = replicas(layer, expert);
  double total_bandwidth = 0.0;
  for (std::size_t w : reps) total_bandwidth += problem.bandwidth[w];
  std::vector<double> fractions;
  fractions.reserve(reps.size());
  for (std::size_t w : reps) {
    fractions.push_back(problem.bandwidth[w] / total_bandwidth);
  }
  return fractions;
}

namespace {

double layer_time_replicated(const PlacementProblem& problem,
                             const ReplicatedPlacement& placement,
                             std::size_t l) {
  std::vector<double> worker_time(problem.num_workers, 0.0);
  for (std::size_t e = 0; e < problem.num_experts; ++e) {
    const auto& reps = placement.replicas(l, e);
    const auto fractions = placement.split_fractions(l, e, problem);
    for (std::size_t i = 0; i < reps.size(); ++i) {
      worker_time[reps[i]] +=
          problem.cost_coefficient(reps[i], l, e) * fractions[i];
    }
  }
  return *std::max_element(worker_time.begin(), worker_time.end());
}

}  // namespace

double expected_comm_seconds_replicated(const PlacementProblem& problem,
                                        const ReplicatedPlacement& placement) {
  double total = 0.0;
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    total += layer_time_replicated(problem, placement, l);
  }
  return total;
}

double expected_external_bytes_replicated(
    const PlacementProblem& problem, const ReplicatedPlacement& placement) {
  double bytes = 0.0;
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      const auto& reps = placement.replicas(l, e);
      const auto fractions = placement.split_fractions(l, e, problem);
      const double tokens = static_cast<double>(problem.probability.at(l, e)) *
                            problem.tokens_per_step;
      for (std::size_t i = 0; i < reps.size(); ++i) {
        if (problem.worker_node[reps[i]] == problem.master_node) continue;
        bytes += 4.0 * tokens * fractions[i] * problem.bytes_per_token;
      }
    }
  }
  return bytes;
}

ReplicatedPlacement greedy_replication(const PlacementProblem& problem,
                                       const Placement& base,
                                       std::size_t budget) {
  problem.validate();
  VELA_CHECK(base.feasible(problem));
  ReplicatedPlacement placement(base);
  std::vector<std::size_t> loads = placement.worker_loads(problem.num_workers);

  // Cache per-layer times: a candidate replica only changes its own layer.
  std::vector<double> layer_time(problem.num_layers);
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    layer_time[l] = layer_time_replicated(problem, placement, l);
  }

  for (std::size_t round = 0; round < budget; ++round) {
    double best_gain = 1e-15;
    std::size_t best_l = 0, best_e = 0, best_w = problem.num_workers;
    double best_new_time = 0.0;
    for (std::size_t l = 0; l < problem.num_layers; ++l) {
      for (std::size_t e = 0; e < problem.num_experts; ++e) {
        for (std::size_t w = 0; w < problem.num_workers; ++w) {
          if (loads[w] >= problem.capacity[w]) continue;
          const auto& reps = placement.replicas(l, e);
          if (std::find(reps.begin(), reps.end(), w) != reps.end()) continue;
          ReplicatedPlacement candidate = placement;
          candidate.add_replica(l, e, w);
          const double t = layer_time_replicated(problem, candidate, l);
          const double gain = layer_time[l] - t;
          if (gain > best_gain) {
            best_gain = gain;
            best_l = l;
            best_e = e;
            best_w = w;
            best_new_time = t;
          }
        }
      }
    }
    if (best_w == problem.num_workers) break;  // no improving replica left
    placement.add_replica(best_l, best_e, best_w);
    ++loads[best_w];
    layer_time[best_l] = best_new_time;
  }
  return placement;
}

}  // namespace vela::placement
