#include "placement/sequential.h"

#include "util/check.h"

namespace vela::placement {

Placement SequentialPlacement::place(const PlacementProblem& problem) {
  problem.validate();
  Placement placement(problem.num_layers, problem.num_experts);
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      placement.assign(l, e, e % problem.num_workers);
    }
  }
  VELA_CHECK_MSG(placement.feasible(problem),
                 "sequential placement exceeds a worker capacity; increase "
                 "capacity or use a capacity-aware strategy");
  return placement;
}

}  // namespace vela::placement
