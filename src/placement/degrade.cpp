#include "placement/degrade.h"

#include <limits>

#include "util/check.h"
#include "util/logging.h"

namespace vela::placement {

namespace {
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}  // namespace

Placement degrade_placement(const Placement& current,
                            const std::vector<bool>& dead,
                            const PlacementProblem* problem) {
  const std::size_t num_workers = dead.size();
  const std::size_t num_layers = current.num_layers();
  const std::size_t num_experts = current.num_experts();
  VELA_CHECK(num_workers > 0);

  std::size_t survivors = 0;
  for (std::size_t w = 0; w < num_workers; ++w) {
    if (!dead[w]) ++survivors;
  }
  VELA_CHECK_MSG(survivors > 0, "degrade_placement: no surviving workers");

  // Loads of the surviving assignment (orphans excluded — they are about to
  // be re-placed).
  std::vector<std::size_t> load(num_workers, 0);
  for (std::size_t l = 0; l < num_layers; ++l) {
    for (std::size_t e = 0; e < num_experts; ++e) {
      const std::size_t w = current.worker_of(l, e);
      VELA_CHECK(w < num_workers);
      if (!dead[w]) ++load[w];
    }
  }

  Placement next = current;
  std::size_t moved = 0;
  std::size_t overflowed = 0;
  for (std::size_t l = 0; l < num_layers; ++l) {
    for (std::size_t e = 0; e < num_experts; ++e) {
      const std::size_t from = current.worker_of(l, e);
      if (!dead[from]) continue;

      // The orphan rule (locality_aware.h rounding step 3): best affinity
      // first; relax capacity only when every survivor is full.
      std::size_t best = kNone;
      for (int respect_capacity = 1; respect_capacity >= 0; --respect_capacity) {
        double best_cost = std::numeric_limits<double>::infinity();
        std::size_t best_load = std::numeric_limits<std::size_t>::max();
        for (std::size_t w = 0; w < num_workers; ++w) {
          if (dead[w]) continue;
          if (respect_capacity != 0 && problem != nullptr &&
              w < problem->capacity.size() &&
              load[w] >= problem->capacity[w]) {
            continue;
          }
          const double cost =
              problem != nullptr ? problem->cost_coefficient(w, l, e) : 0.0;
          // Exact tie-break on purpose: identical coefficients must break
          // toward the same worker on every run (equivalence gate).
          // vela-lint: allow(float-equality)
          if (cost < best_cost ||
              (cost == best_cost && load[w] < best_load)) {
            best_cost = cost;
            best_load = load[w];
            best = w;
          }
        }
        if (best != kNone) break;
        overflowed += respect_capacity != 0 ? 1 : 0;
      }
      VELA_CHECK(best != kNone);
      next.assign(l, e, best);
      ++load[best];
      ++moved;
    }
  }
  if (overflowed > 0) {
    VELA_LOG_WARN("degrade") << overflowed << " orphan(s) placed above "
                             << "survivor capacity (reduced-capacity mode)";
  }
  VELA_LOG_INFO("degrade") << "re-placed " << moved << " orphaned expert(s) "
                           << "across " << survivors << " survivor(s)";
  return next;
}

}  // namespace vela::placement
