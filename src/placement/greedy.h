// Greedy longest-processing-time placement — the ablation comparator for the
// LP approach. Experts are sorted by expected dispatch load (descending) per
// layer and each is assigned to the worker whose layer communication time
// grows the least, subject to capacity.
#pragma once

#include "placement/placement.h"

namespace vela::placement {

class GreedyLPTPlacement : public PlacementStrategy {
 public:
  Placement place(const PlacementProblem& problem) override;
  std::string name() const override { return "greedy-lpt"; }
};

}  // namespace vela::placement
