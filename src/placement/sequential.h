// Sequential placement: expert e of every MoE block goes to worker e mod N —
// the layout conventional expert parallelism uses (§V-A baselines).
#pragma once

#include "placement/placement.h"

namespace vela::placement {

class SequentialPlacement : public PlacementStrategy {
 public:
  Placement place(const PlacementProblem& problem) override;
  std::string name() const override { return "sequential"; }
};

}  // namespace vela::placement
