#include "placement/lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.h"

namespace vela::lp {

const char* lp_status_name(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "?";
}

namespace {

// Dense tableau simplex working on the standard form
//   minimize c·x  s.t.  A x = b,  x ≥ 0,  b ≥ 0,
// with an initial basic feasible solution given by `basis`.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : m_(rows), n_(cols), a_(rows * (cols + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return a_[r * (n_ + 1) + c]; }
  double at(std::size_t r, std::size_t c) const { return a_[r * (n_ + 1) + c]; }
  double& rhs(std::size_t r) { return a_[r * (n_ + 1) + n_]; }
  double rhs(std::size_t r) const { return a_[r * (n_ + 1) + n_]; }

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  // Gauss–Jordan pivot on (pr, pc).
  void pivot(std::size_t pr, std::size_t pc) {
    const std::size_t width = n_ + 1;
    double* prow = &a_[pr * width];
    const double inv = 1.0 / prow[pc];
    for (std::size_t c = 0; c < width; ++c) prow[c] *= inv;
    prow[pc] = 1.0;  // cancel rounding
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == pr) continue;
      double* row = &a_[r * width];
      const double factor = row[pc];
      // Exact-zero rows contribute nothing to the pivot; skipping them is an
      // identity, not a tolerance. vela-lint: allow(float-equality)
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < width; ++c) row[c] -= factor * prow[c];
      row[pc] = 0.0;
    }
  }

 private:
  std::size_t m_, n_;
  std::vector<double> a_;
};

struct PhaseResult {
  LpStatus status = LpStatus::kOptimal;
  std::size_t iterations = 0;
};

// Runs the simplex on `t` with reduced costs `reduced` (length cols) and
// objective value `obj_value` maintained alongside. `allowed` masks columns
// eligible to enter (phase 2 excludes artificials).
PhaseResult run_simplex(Tableau& t, std::vector<double>& reduced,
                        double& obj_value, std::vector<std::size_t>& basis,
                        const std::vector<bool>& allowed,
                        const SimplexOptions& opt, std::size_t max_iters) {
  PhaseResult result;
  std::size_t degenerate_run = 0;
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    const bool bland = degenerate_run >= opt.degenerate_switch;
    // Pricing: most negative reduced cost (Dantzig) or first negative
    // (Bland, with smallest index, to break cycles).
    std::size_t enter = t.cols();
    double best = -opt.eps;
    for (std::size_t c = 0; c < t.cols(); ++c) {
      if (!allowed[c]) continue;
      const double rc = reduced[c];
      if (bland) {
        if (rc < -opt.eps) {
          enter = c;
          break;
        }
      } else if (rc < best) {
        best = rc;
        enter = c;
      }
    }
    if (enter == t.cols()) {
      result.status = LpStatus::kOptimal;
      result.iterations = iter;
      return result;
    }

    // Ratio test; Bland tie-break on the leaving basis variable index.
    std::size_t leave = t.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < t.rows(); ++r) {
      const double col = t.at(r, enter);
      if (col <= opt.eps) continue;
      const double ratio = t.rhs(r) / col;
      if (ratio < best_ratio - opt.eps ||
          (ratio < best_ratio + opt.eps && leave < t.rows() &&
           basis[r] < basis[leave])) {
        best_ratio = ratio;
        leave = r;
      }
    }
    if (leave == t.rows()) {
      result.status = LpStatus::kUnbounded;
      result.iterations = iter;
      return result;
    }

    degenerate_run = best_ratio <= opt.eps ? degenerate_run + 1 : 0;

    // Update reduced costs and objective before the tableau pivot (they use
    // the entering column's pre-pivot values).
    const double pivot_val = t.at(leave, enter);
    const double rc_enter = reduced[enter];
    const double theta = t.rhs(leave) / pivot_val;
    obj_value += rc_enter * theta;
    const double scale = rc_enter / pivot_val;
    for (std::size_t c = 0; c < t.cols(); ++c) {
      reduced[c] -= scale * t.at(leave, c);
    }
    reduced[enter] = 0.0;

    t.pivot(leave, enter);
    basis[leave] = enter;
  }
  result.status = LpStatus::kIterationLimit;
  result.iterations = max_iters;
  return result;
}

}  // namespace

LpSolution solve(const LinearProgram& lp, const SimplexOptions& opt) {
  VELA_CHECK(lp.objective.size() == lp.num_vars);
  const std::size_t n_orig = lp.num_vars;
  const std::size_t n_leq = lp.leq_rows.size();
  const std::size_t m = lp.equalities.size() + n_leq;
  VELA_CHECK_MSG(m > 0, "LP has no constraints");

  // Column layout: [original | slacks (one per leq) | artificials (per row
  // that needs one)]. We conservatively give every row an artificial slot
  // except leq rows with rhs >= 0, whose slack can start basic.
  std::vector<SparseRow> rows;
  rows.reserve(m);
  for (const auto& r : lp.equalities) rows.push_back(r);
  for (const auto& r : lp.leq_rows) rows.push_back(r);

  // Which rows are equalities.
  const std::size_t first_leq = lp.equalities.size();

  const std::size_t slack_base = n_orig;
  const std::size_t art_base = n_orig + n_leq;

  // Count artificials and assign columns.
  std::vector<std::size_t> art_col(m, SIZE_MAX);
  std::size_t n_art = 0;
  for (std::size_t r = 0; r < m; ++r) {
    const bool is_leq = r >= first_leq;
    const bool rhs_neg = rows[r].rhs < 0.0;
    // leq with rhs >= 0: slack is basic, no artificial needed.
    if (!(is_leq && !rhs_neg)) art_col[r] = art_base + n_art++;
  }
  const std::size_t n_total = art_base + n_art;

  Tableau t(m, n_total);
  std::vector<std::size_t> basis(m);
  for (std::size_t r = 0; r < m; ++r) {
    const bool is_leq = r >= first_leq;
    const bool rhs_neg = rows[r].rhs < 0.0;
    const double sign = rhs_neg ? -1.0 : 1.0;
    for (const auto& [idx, coef] : rows[r].coeffs) {
      VELA_CHECK_MSG(idx < n_orig, "LP coefficient index out of range");
      t.at(r, idx) += sign * coef;
    }
    t.rhs(r) = sign * rows[r].rhs;
    if (is_leq) {
      // slack: +1 normally; negating the row turns it into a surplus (−1).
      t.at(r, slack_base + (r - first_leq)) = sign * 1.0;
    }
    if (art_col[r] != SIZE_MAX) {
      t.at(r, art_col[r]) = 1.0;
      basis[r] = art_col[r];
    } else {
      basis[r] = slack_base + (r - first_leq);
    }
  }

  LpSolution solution;

  // --- Phase 1: minimize the sum of artificials. -----------------------------
  if (n_art > 0) {
    // Reduced costs of phase-1 objective (Σ artificials) with the artificial
    // basis priced out: rc_j = −Σ_{rows with artificial basic} a_rj.
    std::vector<double> reduced(n_total, 0.0);
    double obj = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      if (art_col[r] == SIZE_MAX) continue;
      for (std::size_t c = 0; c < n_total; ++c) reduced[c] -= t.at(r, c);
      obj -= t.rhs(r);  // phase-1 objective value is Σ rhs of art rows
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (art_col[r] != SIZE_MAX) reduced[art_col[r]] = 0.0;
    }
    std::vector<bool> allowed(n_total, true);

    PhaseResult p1 =
        run_simplex(t, reduced, obj, basis, allowed, opt, opt.max_iterations);
    solution.iterations += p1.iterations;
    if (p1.status == LpStatus::kIterationLimit) {
      solution.status = LpStatus::kIterationLimit;
      return solution;
    }
    // obj tracks −(phase-1 objective); recompute the artificial sum directly
    // from the basis for robustness.
    double art_sum = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] >= art_base) art_sum += t.rhs(r);
    }
    if (art_sum > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive any residual artificials out of the basis (degenerate rows).
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] < art_base) continue;
      std::size_t pivot_col = n_total;
      for (std::size_t c = 0; c < art_base; ++c) {
        if (std::abs(t.at(r, c)) > opt.eps) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col == n_total) continue;  // redundant row; keep artificial at 0
      t.pivot(r, pivot_col);
      basis[r] = pivot_col;
    }
  }

  // --- Phase 2: the real objective. -----------------------------------------
  std::vector<double> reduced(n_total, 0.0);
  for (std::size_t c = 0; c < n_orig; ++c) reduced[c] = lp.objective[c];
  // Price out the basis: for each basic column with nonzero cost, subtract
  // its cost times the row from the reduced costs.
  double obj = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = basis[r];
    const double cb = b < n_orig ? lp.objective[b] : 0.0;
    // Zero-cost basics price out to nothing — exact skip is an identity.
    // vela-lint: allow(float-equality)
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c < n_total; ++c) reduced[c] -= cb * t.at(r, c);
    obj += cb * t.rhs(r);
  }
  for (std::size_t r = 0; r < m; ++r) reduced[basis[r]] = 0.0;

  std::vector<bool> allowed(n_total, true);
  for (std::size_t c = art_base; c < n_total; ++c) allowed[c] = false;

  double neg_obj = -obj;  // run_simplex tracks Δ via reduced costs
  PhaseResult p2 =
      run_simplex(t, reduced, neg_obj, basis, allowed, opt,
                  opt.max_iterations - solution.iterations);
  solution.iterations += p2.iterations;
  if (p2.status != LpStatus::kOptimal) {
    solution.status = p2.status;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(n_orig, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n_orig) solution.x[basis[r]] = t.rhs(r);
  }
  double value = 0.0;
  for (std::size_t c = 0; c < n_orig; ++c)
    value += lp.objective[c] * solution.x[c];
  solution.objective = value;
  return solution;
}

}  // namespace vela::lp
