// A from-scratch dense two-phase primal simplex solver.
//
// This is the "off-the-shelf LP solver" the paper plugs its relaxed
// placement problem into — built here from first principles so the
// repository has no external dependencies. Scope: minimize c·x subject to
// equality rows, ≤ rows and non-negative variables. That is exactly the
// shape of the relaxed placement LP (§IV-B): the X ≤ 1 bounds are implied by
// the assignment equalities Σₙ Xₙₗₑ = 1, so general variable bounds are not
// needed.
//
// Anti-cycling: Dantzig pricing normally, switching to Bland's rule after a
// run of degenerate pivots (guaranteeing termination).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vela::lp {

struct SparseRow {
  // (variable index, coefficient) pairs; duplicate indices are summed.
  std::vector<std::pair<std::size_t, double>> coeffs;
  double rhs = 0.0;
};

// minimize objective·x  s.t.  equalities (·x = rhs), leq_rows (·x ≤ rhs),
// x ≥ 0 componentwise.
struct LinearProgram {
  std::size_t num_vars = 0;
  std::vector<double> objective;
  std::vector<SparseRow> equalities;
  std::vector<SparseRow> leq_rows;

  void add_equality(SparseRow row) { equalities.push_back(std::move(row)); }
  void add_leq(SparseRow row) { leq_rows.push_back(std::move(row)); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* lp_status_name(LpStatus s);

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;
  double objective = 0.0;
  std::size_t iterations = 0;
};

struct SimplexOptions {
  std::size_t max_iterations = 200000;
  double eps = 1e-9;  // pivot / feasibility tolerance
  // After this many consecutive degenerate pivots, fall back to Bland.
  std::size_t degenerate_switch = 40;
};

LpSolution solve(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace vela::lp
