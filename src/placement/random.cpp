#include "placement/random.h"

#include "util/check.h"
#include "util/rng.h"

namespace vela::placement {

Placement RandomPlacement::place(const PlacementProblem& problem) {
  problem.validate();
  Rng rng(seed_);

  // Shuffle every (layer, expert) pair, then deal them to workers that still
  // have capacity, visiting workers in random order per expert.
  std::vector<std::pair<std::size_t, std::size_t>> experts;
  experts.reserve(problem.total_experts());
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      experts.emplace_back(l, e);
    }
  }
  rng.shuffle(experts);

  std::vector<std::size_t> remaining = problem.capacity;
  Placement placement(problem.num_layers, problem.num_experts);
  for (const auto& [l, e] : experts) {
    // Draw a worker uniformly among those with spare capacity.
    std::vector<double> weights(problem.num_workers, 0.0);
    for (std::size_t n = 0; n < problem.num_workers; ++n) {
      weights[n] = remaining[n] > 0 ? 1.0 : 0.0;
    }
    const std::size_t n = rng.categorical(weights);
    placement.assign(l, e, n);
    --remaining[n];
  }
  VELA_CHECK(placement.feasible(problem));
  return placement;
}

}  // namespace vela::placement
