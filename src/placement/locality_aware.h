// VELA's locality-aware expert placement (§IV-B).
//
// Builds the relaxed linear program of the paper —
//
//   min Σ_l λ_l
//   s.t. 0 ≤ X_{n,l,e} ≤ 1                      (relaxed binaries)
//        Σ_n X_{n,l,e} = 1                       (each expert on one worker)
//        Σ_{l,e} X_{n,l,e} ≤ C_n                 (worker capacity)
//        bH/(4 B_n) Σ_e X_{n,l,e} P_{l,e} K ≤ λ_l (linearized max)
//
// — solves it with the in-repo simplex, then rounds back to a feasible
// binary placement with the paper's three-step procedure: threshold at 0.5,
// evict lowest-affinity assignments from overloaded workers, and place any
// orphaned expert on the highest-affinity worker with spare capacity.
//
// (The X ≤ 1 bounds need no explicit rows: they are implied by the
// assignment equalities plus X ≥ 0.)
#pragma once

#include "placement/lp/simplex.h"
#include "placement/placement.h"

namespace vela::placement {

struct LocalityAwareReport {
  lp::LpStatus lp_status = lp::LpStatus::kIterationLimit;
  std::size_t lp_iterations = 0;
  double lp_objective = 0.0;        // relaxed optimum (lower bounds rounded)
  std::size_t thresholded = 0;      // assignments produced by the 0.5 rule
  std::size_t evicted = 0;          // removed during capacity repair
  std::size_t reassigned = 0;       // orphans placed by the affinity rule
  bool used_fallback = false;       // LP failed; greedy fallback used
};

class LocalityAwarePlacement : public PlacementStrategy {
 public:
  explicit LocalityAwarePlacement(lp::SimplexOptions options = {})
      : options_(options) {}

  Placement place(const PlacementProblem& problem) override;
  std::string name() const override { return "locality-aware"; }

  // Diagnostics of the most recent place() call.
  const LocalityAwareReport& report() const { return report_; }

  // Exposed for tests: the raw LP built for `problem`.
  static lp::LinearProgram build_lp(const PlacementProblem& problem);

 private:
  lp::SimplexOptions options_;
  LocalityAwareReport report_;
};

}  // namespace vela::placement
