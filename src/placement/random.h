// Random placement: all L·E experts shuffled and dealt to workers subject to
// capacity (§V-A's second baseline).
#pragma once

#include <cstdint>

#include "placement/placement.h"

namespace vela::placement {

class RandomPlacement : public PlacementStrategy {
 public:
  explicit RandomPlacement(std::uint64_t seed) : seed_(seed) {}

  Placement place(const PlacementProblem& problem) override;
  std::string name() const override { return "random"; }

 private:
  std::uint64_t seed_;
};

}  // namespace vela::placement
