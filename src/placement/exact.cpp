#include "placement/exact.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "placement/evaluator.h"
#include "placement/locality_aware.h"
#include "util/check.h"

namespace vela::placement {
namespace {

constexpr std::size_t kFree = static_cast<std::size_t>(-1);

struct Node {
  // fixed[l*E + e] = worker, or kFree.
  std::vector<std::size_t> fixed;
};

struct RelaxationResult {
  bool feasible = false;
  double bound = 0.0;
  // x[(n * free_count) + i] for free expert i — relaxed assignment.
  std::vector<double> x;
  std::vector<std::size_t> free_experts;  // flat (l*E + e) ids
};

class Solver {
 public:
  Solver(const PlacementProblem& problem, const ExactOptions& options)
      : p_(problem), opt_(options) {}

  RelaxationResult relax(const Node& node) const {
    RelaxationResult result;
    const std::size_t n_workers = p_.num_workers;

    // Fixed loads and per-(worker, layer) fixed time contributions.
    std::vector<std::size_t> fixed_load(n_workers, 0);
    std::vector<std::vector<double>> fixed_cost(
        n_workers, std::vector<double>(p_.num_layers, 0.0));
    for (std::size_t flat = 0; flat < node.fixed.size(); ++flat) {
      const std::size_t w = node.fixed[flat];
      if (w == kFree) {
        result.free_experts.push_back(flat);
        continue;
      }
      const std::size_t l = flat / p_.num_experts;
      const std::size_t e = flat % p_.num_experts;
      ++fixed_load[w];
      fixed_cost[w][l] += p_.cost_coefficient(w, l, e);
    }
    for (std::size_t w = 0; w < n_workers; ++w) {
      if (fixed_load[w] > p_.capacity[w]) return result;  // infeasible node
    }

    const std::size_t free_count = result.free_experts.size();
    lp::LinearProgram prog;
    prog.num_vars = n_workers * free_count + p_.num_layers;
    prog.objective.assign(prog.num_vars, 0.0);
    const auto xidx = [&](std::size_t w, std::size_t i) {
      return w * free_count + i;
    };
    const auto lidx = [&](std::size_t l) {
      return n_workers * free_count + l;
    };
    for (std::size_t l = 0; l < p_.num_layers; ++l) {
      prog.objective[lidx(l)] = 1.0;
    }
    // Assignment equalities for free experts.
    for (std::size_t i = 0; i < free_count; ++i) {
      lp::SparseRow row;
      row.rhs = 1.0;
      for (std::size_t w = 0; w < n_workers; ++w) {
        row.coeffs.emplace_back(xidx(w, i), 1.0);
      }
      prog.add_equality(std::move(row));
    }
    // Residual capacities.
    for (std::size_t w = 0; w < n_workers; ++w) {
      lp::SparseRow row;
      row.rhs = static_cast<double>(p_.capacity[w] - fixed_load[w]);
      for (std::size_t i = 0; i < free_count; ++i) {
        row.coeffs.emplace_back(xidx(w, i), 1.0);
      }
      prog.add_leq(std::move(row));
    }
    // λ rows with fixed-cost constants folded into the rhs.
    for (std::size_t w = 0; w < n_workers; ++w) {
      for (std::size_t l = 0; l < p_.num_layers; ++l) {
        lp::SparseRow row;
        row.rhs = -fixed_cost[w][l];
        for (std::size_t i = 0; i < free_count; ++i) {
          const std::size_t flat = result.free_experts[i];
          if (flat / p_.num_experts != l) continue;
          row.coeffs.emplace_back(
              xidx(w, i), p_.cost_coefficient(w, l, flat % p_.num_experts));
        }
        row.coeffs.emplace_back(lidx(l), -1.0);
        prog.add_leq(std::move(row));
      }
    }
    const lp::LpSolution sol = lp::solve(prog);
    if (sol.status != lp::LpStatus::kOptimal) return result;
    result.feasible = true;
    result.bound = sol.objective;
    result.x.assign(sol.x.begin(),
                    sol.x.begin() + static_cast<long>(n_workers * free_count));
    return result;
  }

  const PlacementProblem& p_;
  const ExactOptions& opt_;
};

}  // namespace

Placement ExactPlacement::place(const PlacementProblem& problem) {
  problem.validate();
  report_ = ExactReport{};
  Solver solver(problem, options_);
  const std::size_t total = problem.total_experts();

  // Incumbent: the paper's LP-rounding placement.
  LocalityAwarePlacement rounding;
  Placement incumbent = rounding.place(problem);
  double incumbent_value = expected_comm_seconds(problem, incumbent);

  std::vector<Node> stack;
  stack.push_back(Node{std::vector<std::size_t>(total, kFree)});
  bool budget_exhausted = false;

  while (!stack.empty()) {
    if (report_.nodes_explored >= options_.max_nodes) {
      budget_exhausted = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++report_.nodes_explored;

    const RelaxationResult relax = solver.relax(node);
    if (report_.nodes_explored == 1) report_.root_lp_bound = relax.bound;
    if (!relax.feasible ||
        relax.bound >= incumbent_value - options_.tolerance) {
      ++report_.nodes_pruned;
      continue;
    }

    const std::size_t free_count = relax.free_experts.size();
    // Find the most fractional free expert (max over workers of X closest
    // to 1/2); integral solutions complete the assignment.
    std::size_t branch_i = free_count;
    double best_frac = options_.tolerance;
    for (std::size_t i = 0; i < free_count; ++i) {
      for (std::size_t w = 0; w < problem.num_workers; ++w) {
        const double v = relax.x[w * free_count + i];
        const double frac = std::min(v, 1.0 - v);
        if (frac > best_frac) {
          best_frac = frac;
          branch_i = i;
        }
      }
    }

    if (branch_i == free_count) {
      // Integral relaxation: materialize and accept as new incumbent.
      Placement candidate(problem.num_layers, problem.num_experts);
      for (std::size_t flat = 0; flat < total; ++flat) {
        if (node.fixed[flat] != kFree) {
          candidate.assign(flat / problem.num_experts,
                           flat % problem.num_experts, node.fixed[flat]);
        }
      }
      for (std::size_t i = 0; i < free_count; ++i) {
        const std::size_t flat = relax.free_experts[i];
        std::size_t best_w = 0;
        double best_v = -1.0;
        for (std::size_t w = 0; w < problem.num_workers; ++w) {
          if (relax.x[w * free_count + i] > best_v) {
            best_v = relax.x[w * free_count + i];
            best_w = w;
          }
        }
        candidate.assign(flat / problem.num_experts,
                         flat % problem.num_experts, best_w);
      }
      if (candidate.feasible(problem)) {
        const double value = expected_comm_seconds(problem, candidate);
        if (value < incumbent_value - options_.tolerance) {
          incumbent = candidate;
          incumbent_value = value;
        }
      }
      continue;
    }

    // Branch: children in ascending relaxed affinity so the highest-affinity
    // child is explored first (LIFO stack).
    const std::size_t flat = relax.free_experts[branch_i];
    std::vector<std::size_t> workers(problem.num_workers);
    std::iota(workers.begin(), workers.end(), 0);
    std::sort(workers.begin(), workers.end(),
              [&](std::size_t a, std::size_t b) {
                return relax.x[a * free_count + branch_i] <
                       relax.x[b * free_count + branch_i];
              });
    for (std::size_t w : workers) {
      Node child = node;
      child.fixed[flat] = w;
      stack.push_back(std::move(child));
    }
  }

  report_.proven_optimal = !budget_exhausted;
  report_.best_objective = incumbent_value;
  VELA_CHECK(incumbent.feasible(problem));
  return incumbent;
}

}  // namespace vela::placement
