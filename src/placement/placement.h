// Expert placement: problem statement, placement representation, and the
// strategy interface (§IV-B).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace vela::placement {

// All the data Eq. (8)–(11) needs. Bandwidths are bytes/second (B_n);
// probability is the profiled matrix P ∈ R^{L×E}; tokens_per_step is K;
// bytes_per_token is bH/8 (one token, one direction).
struct PlacementProblem {
  std::size_t num_workers = 0;  // N
  std::size_t num_layers = 0;   // L
  std::size_t num_experts = 0;  // E per layer
  Tensor probability;           // [L, E]
  std::vector<double> bandwidth;       // [N] master↔worker bytes/s
  std::vector<std::size_t> capacity;   // [N] C_n, max experts per worker
  std::vector<std::size_t> worker_node;  // [N] node hosting each worker
  std::size_t master_node = 0;
  double tokens_per_step = 0.0;  // K
  double bytes_per_token = 0.0;  // bH/8

  // Validates shapes and that Σ C_n can host all L·E experts.
  void validate() const;
  std::size_t total_experts() const { return num_layers * num_experts; }

  // The per-(worker, layer, expert) cost coefficient of Eq. (6):
  // bH/(4·B_n) · P_{l,e} · K — expected seconds contributed to worker n's
  // communication time when expert (l, e) is placed on it.
  double cost_coefficient(std::size_t worker, std::size_t layer,
                          std::size_t expert) const;
};

// A complete assignment of every (layer, expert) to a worker.
class Placement {
 public:
  Placement() = default;
  Placement(std::size_t num_layers, std::size_t num_experts);

  std::size_t worker_of(std::size_t layer, std::size_t expert) const;
  void assign(std::size_t layer, std::size_t expert, std::size_t worker);

  std::size_t num_layers() const { return assignment_.size(); }
  std::size_t num_experts() const {
    return assignment_.empty() ? 0 : assignment_[0].size();
  }

  // Experts hosted per worker.
  std::vector<std::size_t> worker_loads(std::size_t num_workers) const;
  // True iff every expert is assigned a worker < num_workers and no
  // capacity is exceeded.
  bool feasible(const PlacementProblem& problem) const;

  // The experts (layer, expert) assigned to `worker`.
  std::vector<std::pair<std::size_t, std::size_t>> experts_of(
      std::size_t worker) const;

  std::string to_string() const;

  // Compact text round-trip ("L E\nw w w ...\n" rows): placements computed
  // offline (e.g. from a recorded routing trace) can be shipped into a
  // training job as plain files.
  std::string serialize() const;
  static Placement deserialize(const std::string& text);

 private:
  static constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> assignment_;  // [L][E] -> worker
};

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;
  virtual Placement place(const PlacementProblem& problem) = 0;
  virtual std::string name() const = 0;
};

}  // namespace vela::placement
