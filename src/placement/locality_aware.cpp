#include "placement/locality_aware.h"

#include <algorithm>
#include <limits>

#include "placement/greedy.h"
#include "placement/rounding.h"
#include "util/check.h"
#include "util/logging.h"

namespace vela::placement {

namespace {

// Variable layout: X_{n,l,e} at ((n·L)+l)·E+e, then λ_l at N·L·E + l.
std::size_t x_index(const PlacementProblem& p, std::size_t n, std::size_t l,
                    std::size_t e) {
  return (n * p.num_layers + l) * p.num_experts + e;
}

std::size_t lambda_index(const PlacementProblem& p, std::size_t l) {
  return p.num_workers * p.num_layers * p.num_experts + l;
}

}  // namespace

lp::LinearProgram LocalityAwarePlacement::build_lp(
    const PlacementProblem& p) {
  lp::LinearProgram prog;
  prog.num_vars = p.num_workers * p.num_layers * p.num_experts + p.num_layers;
  prog.objective.assign(prog.num_vars, 0.0);
  for (std::size_t l = 0; l < p.num_layers; ++l) {
    prog.objective[lambda_index(p, l)] = 1.0;
  }

  // Σ_n X_{n,l,e} = 1.
  for (std::size_t l = 0; l < p.num_layers; ++l) {
    for (std::size_t e = 0; e < p.num_experts; ++e) {
      lp::SparseRow row;
      row.rhs = 1.0;
      for (std::size_t n = 0; n < p.num_workers; ++n) {
        row.coeffs.emplace_back(x_index(p, n, l, e), 1.0);
      }
      prog.add_equality(std::move(row));
    }
  }

  // Σ_{l,e} X_{n,l,e} ≤ C_n.
  for (std::size_t n = 0; n < p.num_workers; ++n) {
    lp::SparseRow row;
    row.rhs = static_cast<double>(p.capacity[n]);
    for (std::size_t l = 0; l < p.num_layers; ++l) {
      for (std::size_t e = 0; e < p.num_experts; ++e) {
        row.coeffs.emplace_back(x_index(p, n, l, e), 1.0);
      }
    }
    prog.add_leq(std::move(row));
  }

  // Per (n, l): Σ_e cost(n,l,e)·X − λ_l ≤ 0.
  for (std::size_t n = 0; n < p.num_workers; ++n) {
    for (std::size_t l = 0; l < p.num_layers; ++l) {
      lp::SparseRow row;
      row.rhs = 0.0;
      for (std::size_t e = 0; e < p.num_experts; ++e) {
        row.coeffs.emplace_back(x_index(p, n, l, e),
                                p.cost_coefficient(n, l, e));
      }
      row.coeffs.emplace_back(lambda_index(p, l), -1.0);
      prog.add_leq(std::move(row));
    }
  }
  return prog;
}

Placement LocalityAwarePlacement::place(const PlacementProblem& problem) {
  problem.validate();
  report_ = LocalityAwareReport{};

  const lp::LinearProgram prog = build_lp(problem);
  const lp::LpSolution sol = lp::solve(prog, options_);
  report_.lp_status = sol.status;
  report_.lp_iterations = sol.iterations;
  report_.lp_objective = sol.objective;

  if (sol.status != lp::LpStatus::kOptimal) {
    VELA_LOG_WARN("placement") << "LP solve returned "
                               << lp::lp_status_name(sol.status)
                               << "; falling back to greedy placement";
    report_.used_fallback = true;
    GreedyLPTPlacement fallback;
    return fallback.place(problem);
  }

  // Rounding (§IV-B, steps 1–3) lives in placement/rounding.h so the
  // procedure is unit-testable on crafted fractional solutions.
  RelaxedSolution relaxed(problem.num_workers, problem.num_layers,
                          problem.num_experts);
  for (std::size_t n = 0; n < problem.num_workers; ++n) {
    for (std::size_t l = 0; l < problem.num_layers; ++l) {
      for (std::size_t e = 0; e < problem.num_experts; ++e) {
        // Clamp simplex round-off into [0, 1].
        relaxed.set(n, l, e,
                    std::min(1.0, std::max(0.0, sol.x[x_index(problem, n, l, e)])));
      }
    }
  }
  RoundingReport rounding;
  Placement placement =
      round_relaxed_solution(relaxed, problem.capacity, &rounding);
  report_.thresholded = rounding.thresholded;
  report_.evicted = rounding.evicted;
  report_.reassigned = rounding.reassigned;
  VELA_CHECK(placement.feasible(problem));
  return placement;
}

}  // namespace vela::placement
