// Simulated-annealing expert placement — a metaheuristic baseline for the
// placement ablation. Starts from the greedy-LPT solution and explores
// single-expert moves and cross-worker swaps under a geometric cooling
// schedule, evaluating the Eq. (7) objective incrementally (a move touches
// only its own layer's max).
#pragma once

#include <cstdint>

#include "placement/placement.h"

namespace vela::placement {

struct AnnealingOptions {
  std::size_t iterations = 20000;
  double initial_temperature = 0.2;  // relative to the starting objective
  double cooling = 0.9995;           // geometric factor per iteration
  std::uint64_t seed = 1;
  // Start from the paper's LP+rounding placement instead of greedy-LPT:
  // annealing then acts as a local-search refinement of the rounding,
  // closing most of the rounding gap (see the A1 ablation).
  bool start_from_lp = false;
};

class AnnealingPlacement : public PlacementStrategy {
 public:
  explicit AnnealingPlacement(AnnealingOptions options = {})
      : options_(options) {}

  Placement place(const PlacementProblem& problem) override;
  std::string name() const override { return "annealing"; }

  // Accepted-move count of the most recent place() call.
  std::size_t moves_accepted() const { return accepted_; }

 private:
  AnnealingOptions options_;
  std::size_t accepted_ = 0;
};

}  // namespace vela::placement
