// Placement quality metrics: the optimization objective (Eq. (7)) and the
// expected cross-node traffic a placement induces.
#pragma once

#include "placement/placement.h"

namespace vela::placement {

// Expected per-step communication time Σ_l max_n E(T_{n,l}) — the exact
// objective of Eq. (8). Units: seconds.
double expected_comm_seconds(const PlacementProblem& problem,
                             const Placement& placement);

// Expected communication time of MoE block `layer` alone (the inner max).
double expected_layer_comm_seconds(const PlacementProblem& problem,
                                   const Placement& placement,
                                   std::size_t layer);

// Expected cross-node bytes per step: every token dispatched to an expert on
// a different node than the master crosses the network 4× (feature out/back
// in the forward pass, gradient out/back in the backward pass).
double expected_external_bytes(const PlacementProblem& problem,
                               const Placement& placement);

// Lower bound on Σ_l max_n E(T_{n,l}): for each layer, total dispatch work
// spread perfectly across the aggregate bandwidth. Useful to judge how close
// a strategy gets to the ideal.
double comm_time_lower_bound(const PlacementProblem& problem);

}  // namespace vela::placement
