#include "placement/evaluator.h"

#include <algorithm>

#include "util/check.h"

namespace vela::placement {

double expected_layer_comm_seconds(const PlacementProblem& problem,
                                   const Placement& placement,
                                   std::size_t layer) {
  VELA_CHECK(layer < problem.num_layers);
  std::vector<double> worker_time(problem.num_workers, 0.0);
  for (std::size_t e = 0; e < problem.num_experts; ++e) {
    const std::size_t n = placement.worker_of(layer, e);
    worker_time[n] += problem.cost_coefficient(n, layer, e);
  }
  return *std::max_element(worker_time.begin(), worker_time.end());
}

double expected_comm_seconds(const PlacementProblem& problem,
                             const Placement& placement) {
  double total = 0.0;
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    total += expected_layer_comm_seconds(problem, placement, l);
  }
  return total;
}

double expected_external_bytes(const PlacementProblem& problem,
                               const Placement& placement) {
  double bytes = 0.0;
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      const std::size_t n = placement.worker_of(l, e);
      if (problem.worker_node[n] == problem.master_node) continue;
      const double tokens = static_cast<double>(problem.probability.at(l, e)) *
                            problem.tokens_per_step;
      bytes += 4.0 * tokens * problem.bytes_per_token;
    }
  }
  return bytes;
}

double comm_time_lower_bound(const PlacementProblem& problem) {
  double aggregate_bandwidth = 0.0;
  for (double b : problem.bandwidth) aggregate_bandwidth += b;
  double total = 0.0;
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    double layer_bytes = 0.0;
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      layer_bytes += 2.0 * problem.bytes_per_token *
                     static_cast<double>(problem.probability.at(l, e)) *
                     problem.tokens_per_step;
    }
    total += layer_bytes / aggregate_bandwidth;
  }
  return total;
}

}  // namespace vela::placement
