// Exact expert placement via branch-and-bound over the LP relaxation.
//
// The paper rounds the relaxed LP; this module answers "how good is that?"
// with *provably optimal* placements for small-to-medium instances:
//
//   * each B&B node fixes a partial assignment (some experts pinned to
//     workers); the LP relaxation of the remaining free experts — with
//     capacities reduced and per-(worker, layer) constant loads folded into
//     the λ constraints — gives a lower bound;
//   * nodes whose bound cannot beat the incumbent are pruned;
//   * branching picks the expert whose relaxed assignment is most
//     fractional, exploring workers in decreasing relaxed-affinity order;
//   * the incumbent starts from the paper's LP-rounding placement.
//
// Complexity is exponential in L·E; use for test oracles and the A1
// ablation, not for production placements (the LP rounding is the
// production path, as in the paper).
#pragma once

#include <cstddef>

#include "placement/lp/simplex.h"
#include "placement/placement.h"

namespace vela::placement {

struct ExactOptions {
  std::size_t max_nodes = 200000;  // B&B node budget
  double tolerance = 1e-9;         // bound comparison slack
};

struct ExactReport {
  bool proven_optimal = false;  // false iff the node budget ran out
  std::size_t nodes_explored = 0;
  std::size_t nodes_pruned = 0;
  double best_objective = 0.0;
  double root_lp_bound = 0.0;
};

class ExactPlacement : public PlacementStrategy {
 public:
  explicit ExactPlacement(ExactOptions options = {}) : options_(options) {}

  Placement place(const PlacementProblem& problem) override;
  std::string name() const override { return "exact-bnb"; }

  const ExactReport& report() const { return report_; }

 private:
  ExactOptions options_;
  ExactReport report_;
};

}  // namespace vela::placement
