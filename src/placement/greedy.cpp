#include "placement/greedy.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace vela::placement {

Placement GreedyLPTPlacement::place(const PlacementProblem& problem) {
  problem.validate();
  Placement placement(problem.num_layers, problem.num_experts);
  std::vector<std::size_t> remaining = problem.capacity;

  // Process layers in order; within a layer, heaviest experts first (LPT).
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    std::vector<std::size_t> order(problem.num_experts);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return problem.probability.at(l, a) > problem.probability.at(l, b);
    });
    std::vector<double> layer_time(problem.num_workers, 0.0);
    for (std::size_t e : order) {
      std::size_t best = problem.num_workers;
      double best_time = std::numeric_limits<double>::infinity();
      for (std::size_t n = 0; n < problem.num_workers; ++n) {
        if (remaining[n] == 0) continue;
        const double t = layer_time[n] + problem.cost_coefficient(n, l, e);
        if (t < best_time) {
          best_time = t;
          best = n;
        }
      }
      VELA_CHECK_MSG(best < problem.num_workers,
                     "greedy placement ran out of capacity");
      placement.assign(l, e, best);
      layer_time[best] = best_time;
      --remaining[best];
    }
  }
  VELA_CHECK(placement.feasible(problem));
  return placement;
}

}  // namespace vela::placement
