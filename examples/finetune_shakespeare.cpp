// Fine-tune on REAL text: the embedded Tiny-Shakespeare sample, char-level —
// the closest runnable analogue of the paper's §III measurement study.
// Reports perplexity before/after and samples a continuation.
//
// Usage: finetune_shakespeare [--steps N] [--batch B] [--seq L] [--lr X]
#include <cstdio>

#include "core/vela_system.h"
#include "data/batch.h"
#include "data/text_corpus.h"
#include "model/evaluate.h"
#include "model/generate.h"
#include "util/argparse.h"

using namespace vela;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::size_t steps = args.get_size("steps", 60);
  const std::size_t batch_size = args.get_size("batch", 8);
  const std::size_t seq_len = args.get_size("seq", 32);
  const float lr = static_cast<float>(args.get_double("lr", 1e-3));

  data::TextCorpus text(data::TextCorpus::tiny_shakespeare_sample(), seq_len,
                        seq_len / 2);
  std::printf("corpus: %zu sequences of %zu chars, vocab %zu\n",
              text.num_sequences(), seq_len, text.vocab_size());

  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_mistral();
  cfg.model.vocab = text.vocab_size();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 3;
  cfg.adamw.lr = lr;
  // Planting still needs a domain structure; real text gets one from the
  // char-id partition (uninformative but harmless — locality emerges milder).
  data::SyntheticCorpus plant_corpus(
      data::CorpusConfig::shakespeare_like(cfg.model.vocab, 6), 9);
  core::VelaSystem vela(cfg, &plant_corpus);

  const auto& dataset = text.sequences();
  auto before = model::evaluate_perplexity(vela.model(), dataset, batch_size);
  std::printf("before: loss %.4f, perplexity %.2f over %zu tokens\n",
              before.mean_loss, before.perplexity, before.tokens);

  vela.profile(dataset, batch_size);
  vela.optimize_placement(double(batch_size) * double(seq_len - 1));

  data::BatchIterator batches(dataset, batch_size, 11);
  for (std::size_t step = 0; step < steps; ++step) {
    auto report = vela.train_step(batches.next());
    if (step % 10 == 0) {
      std::printf("step %3zu: loss %.4f (traffic %.3f MB/node)\n", step,
                  report.loss, report.external_mb_per_node);
    }
  }

  auto after = model::evaluate_perplexity(vela.model(), dataset, batch_size);
  std::printf("after : loss %.4f, perplexity %.2f (%.1f%% better)\n",
              after.mean_loss, after.perplexity,
              100.0 * (1.0 - after.perplexity / before.perplexity));

  const std::string prompt = "Now is the ";
  Rng gen_rng(5);
  model::GenerateOptions gen;
  gen.max_new_tokens = 60;
  gen.temperature = 0.7f;
  gen.top_k = 8;
  auto sample =
      model::generate(vela.model(), text.tokenizer().encode(prompt), gen,
                      gen_rng);
  std::printf("\nsample:\n%s\n", text.decode(sample).c_str());
  return 0;
}
