// Quickstart: the full VELA workflow in ~60 lines.
//
//   1. describe a cluster and an MoE model;
//   2. spawn the distributed system (master + one expert worker per GPU);
//   3. profile expert access on the fine-tuning dataset;
//   4. solve the locality-aware placement LP and migrate experts;
//   5. fine-tune with LoRA and watch the per-step communication drop.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/vela_system.h"
#include "data/batch.h"

using namespace vela;

int main() {
  // 1. A TinyMistral-like MoE model (12 blocks × 6 experts, top-2) on the
  //    paper's testbed: 3 nodes × 2 GPUs, 18.3 GB/s intra, 1.17 GB/s cross.
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_mistral();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 42;

  // A synthetic Shakespeare-like fine-tuning corpus with planted domain
  // structure (stand-in for Tiny-Shakespeare).
  data::SyntheticCorpus corpus(
      data::CorpusConfig::shakespeare_like(cfg.model.vocab, 6), 7);

  // 2. Spawn the system. Pre-trained expert locality is planted for the
  //    corpus, so the router behaves like a fully trained MoE model.
  core::VelaSystem vela(cfg, &corpus);
  std::printf("model: %s\n", cfg.model.to_string().c_str());
  std::printf("cluster: %s\n", vela.topology().to_string().c_str());

  const auto dataset = corpus.make_dataset(/*num_sequences=*/48, /*len=*/16);
  data::BatchIterator batches(dataset, /*batch_size=*/8, /*seed=*/1);

  // Warm-up steps under the default sequential placement, to have a
  // baseline to compare against.
  std::printf("\n-- sequential placement (baseline) --\n");
  double baseline_mb = 0.0;
  for (int step = 0; step < 5; ++step) {
    auto report = vela.train_step(batches.next());
    baseline_mb += report.external_mb_per_node;
    std::printf("step %d: loss %.4f, cross-node traffic %.3f MB/node\n",
                step, report.loss, report.external_mb_per_node);
  }

  // 3.+4. Profile → LP placement → expert migration.
  std::printf("\n-- profiling & locality-aware placement --\n");
  vela.profile(dataset, /*batch_size=*/8);
  vela.optimize_placement(/*tokens_per_step=*/8.0 * 15.0);
  std::printf("LP solved in %zu simplex iterations (status: %s)\n",
              vela.placement_report().lp_iterations,
              lp::lp_status_name(vela.placement_report().lp_status));

  // 5. Fine-tune under the optimized placement.
  std::printf("\n-- locality-aware placement (VELA) --\n");
  double vela_mb = 0.0;
  for (int step = 0; step < 5; ++step) {
    auto report = vela.train_step(batches.next());
    vela_mb += report.external_mb_per_node;
    std::printf("step %zu: loss %.4f, cross-node traffic %.3f MB/node\n",
                report.step, report.loss, report.external_mb_per_node);
  }

  std::printf("\ncross-node traffic: %.3f -> %.3f MB/node per step "
              "(%.1f%% reduction)\n",
              baseline_mb / 5.0, vela_mb / 5.0,
              100.0 * (1.0 - vela_mb / baseline_mb));
  return 0;
}
