// Full-featured fine-tuning run: LR schedule, gradient accumulation,
// dynamic re-placement, checkpointing, and generation — everything a
// downstream user of the library would combine in one training script.
#include <cstdio>

#include "core/vela_system.h"
#include "data/batch.h"
#include "model/generate.h"
#include "nn/schedule.h"

using namespace vela;

int main() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_mistral();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 2024;
  cfg.adamw.lr = 3e-4f;

  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 99);
  core::VelaSystem vela(cfg, &corpus);
  std::printf("model: %s\n", cfg.model.to_string().c_str());

  // The paper's workflow first...
  const auto dataset = corpus.make_dataset(64, 16);
  vela.profile(dataset, 8);
  vela.optimize_placement(/*tokens_per_step=*/8.0 * 15.0);
  std::printf("initial placement optimized (LP status: %s)\n",
              lp::lp_status_name(vela.placement_report().lp_status));

  // ...plus the extensions: cosine schedule and online re-placement.
  nn::WarmupCosineLr schedule(3e-4f, 5, 60, 1e-5f);
  vela.set_lr_schedule(&schedule);
  core::ReplanConfig replan;
  replan.interval = 20;
  replan.window = 15;
  replan.min_improvement = 0.10;
  vela.enable_dynamic_replacement(replan, 8.0 * 15.0);

  data::BatchIterator batches(dataset, 4, 7);
  const int kSteps = 30;
  for (int step = 0; step < kSteps; ++step) {
    // Two micro-batches per optimizer step (gradient accumulation).
    auto report = vela.train_step_accumulated({batches.next(), batches.next()});
    if (step % 5 == 0) {
      std::printf("step %2zu: loss %.4f | lr %.2e | traffic %.3f MB/node | "
                  "modelled step %.3f s\n",
                  report.step, report.loss, schedule.lr(report.step),
                  report.external_mb_per_node, report.step_seconds);
    }
  }
  std::printf("replanner: %zu evaluations, %zu migrations adopted\n",
              vela.replanner()->replans_evaluated(),
              vela.replanner()->replans_proposed());

  // Persist the adapters, then sample from the fine-tuned model through the
  // distributed broker.
  vela.save_checkpoint("dynamic_finetune.ckpt");
  std::printf("checkpoint written: dynamic_finetune.ckpt\n");

  Rng gen_rng(1);
  model::GenerateOptions gen;
  gen.max_new_tokens = 24;
  gen.temperature = 0.8f;
  gen.top_k = 12;
  auto sample = model::generate(vela.model(), {3, 1, 4, 1, 5}, gen, gen_rng);
  std::printf("sampled token ids:");
  for (std::size_t id : sample) std::printf(" %zu", id);
  std::printf("\n");
  return 0;
}
