// Placement explorer: a small CLI for studying the expert-placement problem
// on a custom cluster without running any model — feed it a cluster shape
// and a locality level, and it prints what each strategy would cost.
//
// Usage: placement_explorer [nodes] [gpus_per_node] [zipf] [cross_gbps]
#include <cstdio>
#include <cstdlib>

#include "cluster/topology.h"
#include "model/router_planting.h"
#include "moe/synthetic_router.h"
#include "placement/evaluator.h"
#include "placement/annealing.h"
#include "placement/greedy.h"
#include "placement/locality_aware.h"
#include "placement/random.h"
#include "placement/sequential.h"

using namespace vela;

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const std::size_t gpus = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const double zipf = argc > 3 ? std::strtod(argv[3], nullptr) : 1.15;
  const double cross = argc > 4 ? std::strtod(argv[4], nullptr) : 1.17;

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = nodes;
  ccfg.gpus_per_node = gpus;
  ccfg.cross_node_gbps = cross;
  cluster::ClusterTopology topology(ccfg);
  std::printf("cluster: %s\n", topology.to_string().c_str());

  // A Mixtral-shaped routing profile with the requested concentration.
  auto shape = model::ModelConfig::mixtral_8x7b_shape();
  auto routing = model::PlantedRouting::generate(
      shape.num_layers, shape.num_experts, 16, zipf, 17);
  moe::SyntheticRouterConfig rcfg;
  rcfg.domain_dist.assign(16, 1.0);
  for (std::size_t d = 0; d < 16; ++d) {
    rcfg.domain_dist[d] = 1.0 / double(d + 1);  // zipfian domain usage
  }
  rcfg.routing_noise = 0.05;
  rcfg.seed = 23;
  moe::SyntheticRouter router(&routing, rcfg);

  placement::PlacementProblem problem;
  problem.num_workers = topology.num_workers();
  problem.num_layers = shape.num_layers;
  problem.num_experts = shape.num_experts;
  problem.probability = router.estimate_probability(50000);
  problem.tokens_per_step = 2048;
  problem.bytes_per_token = double(shape.bytes_per_token());
  problem.master_node = topology.master_node();
  for (std::size_t w = 0; w < problem.num_workers; ++w) {
    problem.bandwidth.push_back(topology.worker_bandwidth(w));
    problem.worker_node.push_back(topology.worker_node(w));
  }
  problem.capacity = topology.uniform_capacities(
      shape.num_layers * shape.num_experts, 1.34);
  for (std::size_t w = 0; w < problem.num_workers; ++w) {
    std::size_t experts_on_w = 0;
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      if (e % problem.num_workers == w) ++experts_on_w;
    }
    problem.capacity[w] =
        std::max(problem.capacity[w], experts_on_w * problem.num_layers);
  }
  problem.validate();

  std::printf("\nexpected per-step communication (Eq. 7) and cross-node "
              "traffic for each strategy:\n");
  std::printf("%-16s %14s %16s %12s\n", "strategy", "comm time (s)",
              "external (MB)", "vs lower bd");
  const double lb = placement::comm_time_lower_bound(problem);

  const auto report = [&](const std::string& name,
                          const placement::Placement& p) {
    const double t = placement::expected_comm_seconds(problem, p);
    const double mb =
        placement::expected_external_bytes(problem, p) / 1e6;
    std::printf("%-16s %14.4f %16.1f %11.2fx\n", name.c_str(), t, mb, t / lb);
  };

  placement::SequentialPlacement seq;
  placement::RandomPlacement rnd(5);
  placement::GreedyLPTPlacement greedy;
  placement::AnnealingPlacement annealing;
  placement::LocalityAwarePlacement vela;
  report("sequential", seq.place(problem));
  report("random", rnd.place(problem));
  report("greedy-lpt", greedy.place(problem));
  report("annealing", annealing.place(problem));
  report("vela (LP)", vela.place(problem));
  std::printf("\n(lower bound: %.4f s — perfect load balance over the "
              "aggregate bandwidth)\n", lb);
  std::printf("LP: %zu iterations, status %s\n",
              vela.report().lp_iterations,
              lp::lp_status_name(vela.report().lp_status));
  return 0;
}
