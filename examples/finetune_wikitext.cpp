// Language-modeling fine-tuning scenario (the paper's WikiText task):
// fine-tunes the TinyMistral-like model on a concentrated wikitext-like
// corpus, comparing all four systems' communication on the SAME routing by
// replaying each step's routing decisions through the traffic models.
#include <cstdio>

#include "core/step_simulator.h"
#include "core/vela_system.h"
#include "data/batch.h"
#include "ep/expert_parallel.h"
#include "placement/sequential.h"
#include "util/stats.h"

using namespace vela;

int main() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_mistral();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 11;
  cfg.adamw.lr = 1e-4f;

  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 21);
  core::VelaSystem vela(cfg, &corpus);
  std::printf("fine-tuning %s on %s\n", cfg.model.to_string().c_str(),
              corpus.config().name.c_str());

  const auto dataset = corpus.make_dataset(64, 20);
  data::BatchIterator batches(dataset, 8, 3);

  // The paper's workflow: profile first, then place, then fine-tune.
  vela.profile(dataset, 8);
  vela.optimize_placement(8.0 * 19.0);

  // Companion accountants replay the live routing through the baselines.
  core::VelaTrafficModelConfig tm;
  tm.bytes_per_token = cfg.model.model_dim * cfg.wire_bits / 8;
  core::VelaTrafficModel traffic(&vela.topology(), tm);
  placement::PlacementProblem problem = core::build_placement_problem(
      vela.profiled_stats()->probability_matrix(), cfg.model, vela.topology(),
      8.0 * 19.0, cfg.capacity_slack);
  placement::SequentialPlacement seq_strategy;
  placement::Placement seq = seq_strategy.place(problem);
  ep::EpConfig ep_cfg;
  ep_cfg.bytes_per_token = tm.bytes_per_token;
  ep::ExpertParallelModel ep_model(&vela.topology(), ep_cfg);

  RunningStat loss_stat, vela_mb, seq_mb, ep_mb;
  const int kSteps = 40;
  for (int step = 0; step < kSteps; ++step) {
    auto report = vela.train_step(batches.next());
    loss_stat.add(report.loss);
    vela_mb.add(report.external_mb_per_node);
    const auto plans = vela.model().last_plans();
    seq_mb.add(double(traffic.external_bytes(traffic.account_step(plans, seq))) /
               1e6 / 3.0);
    ep_mb.add(double(ep_model.external_bytes(ep_model.account_step(plans))) /
              1e6 / 3.0);
    if (step % 10 == 0) {
      std::printf("step %2d: loss %.4f | traffic MB/node: vela %.3f, "
                  "sequential %.3f, EP %.3f\n",
                  step, report.loss, report.external_mb_per_node,
                  seq_mb.max(), ep_mb.max());
    }
  }
  std::printf("\nafter %d steps:\n", kSteps);
  std::printf("  loss: %.4f -> %.4f\n", loss_stat.max(), loss_stat.min());
  std::printf("  mean cross-node traffic (MB/node/step): vela %.3f | "
              "sequential %.3f | EP %.3f\n",
              vela_mb.mean(), seq_mb.mean(), ep_mb.mean());
  std::printf("  vela vs sequential: %.1f%% less traffic\n",
              100.0 * (1.0 - vela_mb.mean() / seq_mb.mean()));
  return 0;
}
