// Instruction-tuning scenario (the paper's Alpaca task): flatter domain
// usage, so less expert locality to exploit. Demonstrates that VELA degrades
// gracefully — it still beats sequential placement, by a smaller margin than
// on the wikitext-like corpus, and never does worse.
#include <cstdio>

#include "core/vela_system.h"
#include "data/batch.h"
#include "util/stats.h"

using namespace vela;

namespace {

// Runs profile → place → fine-tune on one corpus and returns
// (mean traffic under sequential, mean traffic under VELA placement).
std::pair<double, double> run(const data::CorpusConfig& corpus_cfg,
                              std::uint64_t seed) {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_mistral();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = seed;

  data::SyntheticCorpus corpus(corpus_cfg, seed + 1);
  core::VelaSystem vela(cfg, &corpus);
  const auto dataset = corpus.make_dataset(48, 16);
  data::BatchIterator batches(dataset, 8, seed + 2);

  const int kSteps = 12;
  RunningStat seq_mb;
  for (int step = 0; step < kSteps; ++step) {
    seq_mb.add(vela.train_step(batches.next()).external_mb_per_node);
  }
  vela.profile(dataset, 8);
  vela.optimize_placement(8.0 * 15.0);
  RunningStat vela_mb;
  for (int step = 0; step < kSteps; ++step) {
    vela_mb.add(vela.train_step(batches.next()).external_mb_per_node);
  }
  return {seq_mb.mean(), vela_mb.mean()};
}

}  // namespace

int main() {
  auto model_cfg = model::ModelConfig::tiny_mistral();
  std::printf("instruction-tuning scenario: %s\n",
              model_cfg.to_string().c_str());

  const auto [alpaca_seq, alpaca_vela] =
      run(data::CorpusConfig::alpaca_like(model_cfg.vocab, 6), 31);
  const auto [wiki_seq, wiki_vela] =
      run(data::CorpusConfig::wikitext_like(model_cfg.vocab, 6), 31);

  const double alpaca_gain = 100.0 * (1.0 - alpaca_vela / alpaca_seq);
  const double wiki_gain = 100.0 * (1.0 - wiki_vela / wiki_seq);
  std::printf("\ncross-node traffic, sequential -> VELA (MB/node/step):\n");
  std::printf("  alpaca-like  : %.3f -> %.3f  (%.1f%% reduction)\n",
              alpaca_seq, alpaca_vela, alpaca_gain);
  std::printf("  wikitext-like: %.3f -> %.3f  (%.1f%% reduction)\n", wiki_seq,
              wiki_vela, wiki_gain);
  std::printf("\n=> both tasks benefit; the concentrated wikitext-like corpus"
              "\n   benefits more — the Fig. 5(a) vs 5(b) contrast.\n");
  return 0;
}
