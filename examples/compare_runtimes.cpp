// Live head-to-head: the VELA system vs the executable expert-parallelism
// baseline, both really fine-tuning the same TinyMistral-like model on the
// same data, with measured (not modelled) cross-node traffic.
//
// This is the paper's core comparison at laptop scale: identical models,
// identical batches, identical convergence — different communication.
#include <cstdio>

#include "core/vela_system.h"
#include "data/batch.h"
#include "ep/runtime.h"
#include "util/stats.h"

using namespace vela;

int main() {
  const auto model_cfg = model::ModelConfig::tiny_mistral();
  const auto cluster_cfg = cluster::ClusterConfig::paper_testbed();
  const std::uint64_t seed = 7;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(model_cfg.vocab, 6), 19);
  const auto dataset = corpus.make_dataset(60, 16);
  const int kSteps = 20;

  std::printf("model: %s\n", model_cfg.to_string().c_str());
  std::printf("cluster: 3 nodes x 2 GPUs (paper testbed)\n\n");

  // --- VELA: master + 5 workers, profile → LP placement → fine-tune -------
  core::VelaSystemConfig vcfg;
  vcfg.model = model_cfg;
  vcfg.cluster = cluster_cfg;
  vcfg.seed = seed;
  core::VelaSystem vela(vcfg, &corpus);
  vela.profile(dataset, 6);
  vela.optimize_placement(6.0 * 15.0);

  data::BatchIterator vela_batches(dataset, 6, 3, /*shuffle=*/false);
  RunningStat vela_mb;
  float vela_loss = 0.0f;
  for (int step = 0; step < kSteps; ++step) {
    auto r = vela.train_step(vela_batches.next());
    vela_mb.add(r.external_mb_per_node);
    vela_loss = r.loss;
  }

  // --- EP: 6 replicated shards, all-to-all + gradient ring ---------------
  ep::EpRuntimeConfig ecfg;
  ecfg.model = model_cfg;
  ecfg.cluster = cluster_cfg;
  ecfg.seed = seed;
  ep::EpRuntime ep(ecfg, &corpus);

  data::BatchIterator ep_batches(dataset, 6, 3, /*shuffle=*/false);
  RunningStat ep_mb;
  float ep_loss = 0.0f;
  for (int step = 0; step < kSteps; ++step) {
    auto r = ep.train_step(ep_batches.next());
    ep_mb.add(r.external_mb_per_node);
    ep_loss = r.loss;
  }

  std::printf("after %d identical fine-tuning steps (batch 6 x seq 16):\n",
              kSteps);
  std::printf("  %-22s %12s %22s\n", "system", "final loss",
              "traffic (MB/node/step)");
  std::printf("  %-22s %12.4f %22.3f\n", "expert parallelism", ep_loss,
              ep_mb.mean());
  std::printf("  %-22s %12.4f %22.3f\n", "VELA (LP placement)", vela_loss,
              vela_mb.mean());
  std::printf("\n=> same convergence (the paper's equivalence claim), %.1f%%\n"
              "   less measured cross-node traffic for VELA.\n",
              100.0 * (1.0 - vela_mb.mean() / ep_mb.mean()));
  return 0;
}
