// Live head-to-head: the VELA system vs the executable expert-parallelism
// baseline, both really fine-tuning the same TinyMistral-like model on the
// same data, with measured (not modelled) cross-node traffic.
//
// This is the paper's core comparison at laptop scale: identical models,
// identical batches, identical convergence — different communication.
#include <chrono>
#include <cstdio>

#include "comm/fault_injector.h"
#include "comm/transport.h"
#include "core/vela_system.h"
#include "data/batch.h"
#include "ep/runtime.h"
#include "util/argparse.h"
#include "util/stats.h"

using namespace vela;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  // --transport inproc|socket|default selects the comm-fabric backend for
  // BOTH runtimes ("default" follows VELA_TRANSPORT). Losses and byte
  // ledgers are bit-exact across backends; only wall-clock may differ.
  const comm::TransportKind transport =
      comm::transport_kind_from_name(args.get_string("transport", "inproc"));
  const auto model_cfg = model::ModelConfig::tiny_mistral();
  const auto cluster_cfg = cluster::ClusterConfig::paper_testbed();
  const std::uint64_t seed = 7;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(model_cfg.vocab, 6), 19);
  const auto dataset = corpus.make_dataset(60, 16);
  const int kSteps = 20;

  std::printf("model: %s\n", model_cfg.to_string().c_str());
  std::printf("cluster: 3 nodes x 2 GPUs (paper testbed)\n");
  std::printf("transport: %s\n\n", comm::transport_kind_name(transport));

  // --- VELA: master + 5 workers, profile → LP placement → fine-tune -------
  core::VelaSystemConfig vcfg;
  vcfg.model = model_cfg;
  vcfg.cluster = cluster_cfg;
  vcfg.seed = seed;
  vcfg.transport = transport;
  core::VelaSystem vela(vcfg, &corpus);
  vela.profile(dataset, 6);
  vela.optimize_placement(6.0 * 15.0);

  data::BatchIterator vela_batches(dataset, 6, 3, /*shuffle=*/false);
  RunningStat vela_mb;
  float vela_loss = 0.0f;
  for (int step = 0; step < kSteps; ++step) {
    auto r = vela.train_step(vela_batches.next());
    vela_mb.add(r.external_mb_per_node);
    vela_loss = r.loss;
  }

  // --- EP: 6 replicated shards, all-to-all + gradient ring ---------------
  ep::EpRuntimeConfig ecfg;
  ecfg.model = model_cfg;
  ecfg.cluster = cluster_cfg;
  ecfg.seed = seed;
  ecfg.transport = transport;
  ep::EpRuntime ep(ecfg, &corpus);

  data::BatchIterator ep_batches(dataset, 6, 3, /*shuffle=*/false);
  RunningStat ep_mb;
  float ep_loss = 0.0f;
  for (int step = 0; step < kSteps; ++step) {
    auto r = ep.train_step(ep_batches.next());
    ep_mb.add(r.external_mb_per_node);
    ep_loss = r.loss;
  }

  // --- VELA again, over a hostile network: a scripted worker crash plus a
  // handful of dropped/corrupted messages. With fault tolerance enabled the
  // run detects each fault, retransmits or respawns, and lands on the same
  // loss as the clean VELA run above.
  comm::FaultPlan plan;
  plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 5, comm::FaultKind::kCrashWorker, 0.0});
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 9, comm::FaultKind::kDrop, 0.0});
  plan.rules.push_back(
      {2, comm::LinkDir::kToMaster, 7, comm::FaultKind::kCorrupt, 0.0});
  plan.rules.push_back(
      {3, comm::LinkDir::kToWorker, 33, comm::FaultKind::kCorrupt, 0.0});
  plan.rules.push_back(
      {4, comm::LinkDir::kToWorker, 50, comm::FaultKind::kDrop, 0.0});
  comm::FaultInjector injector(plan);  // must outlive the system it attaches to

  core::VelaSystem vela_ft(vcfg, &corpus);
  vela_ft.profile(dataset, 6);
  vela_ft.optimize_placement(6.0 * 15.0);
  core::FaultToleranceConfig ft;
  ft.retry.timeout = std::chrono::milliseconds(50);
  vela_ft.enable_fault_tolerance(ft);
  vela_ft.attach_fault_injector(&injector);  // faults start with fine-tuning

  data::BatchIterator ft_batches(dataset, 6, 3, /*shuffle=*/false);
  RunningStat ft_mb;
  float ft_loss = 0.0f;
  std::size_t faults = 0, retries = 0, respawns = 0;
  double recovery_mb = 0.0;
  for (int step = 0; step < kSteps; ++step) {
    auto r = vela_ft.train_step(ft_batches.next());
    ft_mb.add(r.external_mb_per_node);
    ft_loss = r.loss;
    faults += r.faults_injected;
    retries += r.retries;
    respawns += r.workers_recovered;
    recovery_mb += r.recovery_mb;
  }

  std::printf("after %d identical fine-tuning steps (batch 6 x seq 16):\n",
              kSteps);
  std::printf("  %-22s %12s %22s\n", "system", "final loss",
              "traffic (MB/node/step)");
  std::printf("  %-22s %12.4f %22.3f\n", "expert parallelism", ep_loss,
              ep_mb.mean());
  std::printf("  %-22s %12.4f %22.3f\n", "VELA (LP placement)", vela_loss,
              vela_mb.mean());
  std::printf("  %-22s %12.4f %22.3f\n", "VELA + injected faults", ft_loss,
              ft_mb.mean());
  std::printf("\n=> same convergence (the paper's equivalence claim), %.1f%%\n"
              "   less measured cross-node traffic for VELA.\n",
              100.0 * (1.0 - vela_mb.mean() / ep_mb.mean()));
  std::printf("=> faulted run: %zu faults injected, %zu step retries, "
              "%zu worker respawn(s),\n   %.3f MB of metered recovery traffic "
              "— and the same final loss.\n",
              faults, retries, respawns, recovery_mb);
  return 0;
}
