// Ablation A4: static vs dynamic expert placement under routing drift.
//
// Fig. 5(a) shows VELA's traffic creeping upward because the placement is
// computed once while the routing distribution drifts. This bench runs the
// same drifting workload against (a) the static step-0 placement and (b) a
// Replanner that re-solves the LP every `interval` steps, charging migration
// traffic to the triggering step.
#include <cstdio>

#include "bench_common.h"
#include "core/replanner.h"
#include "core/step_simulator.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace vela;
using namespace vela::bench;

namespace {

// LoRA-adapter bytes shipped when one expert migrates (Mixtral-shape expert:
// three projections, rank-8 adapters, fp32).
std::uint64_t migration_bytes_per_expert(const model::ModelConfig& m) {
  const std::uint64_t rank = m.lora.rank == 0 ? 8 : m.lora.rank;
  const std::uint64_t w1 = rank * m.model_dim + m.hidden_dim * rank;
  const std::uint64_t w3 = w1;
  const std::uint64_t w2 = rank * m.hidden_dim + m.model_dim * rank;
  return (w1 + w2 + w3) * sizeof(float);
}

std::size_t count_moves(const placement::Placement& a,
                        const placement::Placement& b) {
  std::size_t moves = 0;
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    for (std::size_t e = 0; e < a.num_experts(); ++e) {
      if (a.worker_of(l, e) != b.worker_of(l, e)) ++moves;
    }
  }
  return moves;
}

}  // namespace

int main() {
  std::printf("=== Ablation A4: static vs dynamic placement under drift ===\n");
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());

  Setting setting = paper_settings()[0];  // mixtral + wikitext-like
  setting.drift_sigma = 0.06;             // pronounced drift
  SettingRuntime runtime(setting);

  const auto problem = make_problem(setting, topology, runtime.probability);
  placement::LocalityAwarePlacement la;
  placement::Placement static_placement = la.place(problem);
  placement::Placement dynamic_placement = static_placement;

  core::ReplanConfig rp_cfg;
  rp_cfg.interval = 50;
  rp_cfg.window = 40;
  rp_cfg.min_improvement = 0.05;
  core::Replanner replanner(rp_cfg, setting.model, &topology,
                            double(kTokensPerStep));

  core::VelaTrafficModelConfig vt_cfg;
  vt_cfg.bytes_per_token = setting.model.bytes_per_token();
  core::VelaTrafficModel traffic(&topology, vt_cfg);

  const double nodes = double(topology.num_nodes());
  const std::uint64_t per_expert_bytes =
      migration_bytes_per_expert(setting.model);

  RunningStat static_mb, dynamic_mb;
  RunningStat static_tail, dynamic_tail;
  std::uint64_t migrations = 0;
  CsvWriter csv("ablation_dynamic.csv",
                {"step", "static_mb", "dynamic_mb"});
  std::printf("\n%-6s %14s %14s  (MB/node)\n", "step", "static", "dynamic");
  for (std::size_t step = 0; step < kFineTuneSteps; ++step) {
    const auto plans = runtime.router.sample_step(kTokensPerStep);
    const double s_mb =
        double(traffic.external_bytes(
            traffic.account_step(plans, static_placement))) /
        1e6 / nodes;
    double d_mb = double(traffic.external_bytes(
                      traffic.account_step(plans, dynamic_placement))) /
                  1e6 / nodes;

    replanner.observe(plans);
    if (auto next = replanner.maybe_replan(dynamic_placement)) {
      const std::size_t moved = count_moves(dynamic_placement, *next);
      migrations += moved;
      // Charge adapter transfer: fetch (cross or intra) + install; count
      // the cross-node share conservatively as all-external.
      d_mb += double(moved) * 2.0 * double(per_expert_bytes) / 1e6 / nodes;
      dynamic_placement = *next;
    }
    static_mb.add(s_mb);
    dynamic_mb.add(d_mb);
    if (step + 100 >= kFineTuneSteps) {
      static_tail.add(s_mb);
      dynamic_tail.add(d_mb);
    }
    csv.row({double(step), s_mb, d_mb});
    if (step % 100 == 0 || step == kFineTuneSteps - 1) {
      std::printf("%-6zu %14.1f %14.1f\n", step, s_mb, d_mb);
    }
  }
  std::printf("\nmean MB/node/step: static %.1f, dynamic %.1f (%.1f%% better)\n",
              static_mb.mean(), dynamic_mb.mean(),
              100.0 * (1.0 - dynamic_mb.mean() / static_mb.mean()));
  std::printf("last-100-step mean: static %.1f, dynamic %.1f (%.1f%% better)\n",
              static_tail.mean(), dynamic_tail.mean(),
              100.0 * (1.0 - dynamic_tail.mean() / static_tail.mean()));
  std::printf("experts migrated over the run: %llu "
              "(replans evaluated: %zu, adopted: %zu)\n",
              static_cast<unsigned long long>(migrations),
              replanner.replans_evaluated(), replanner.replans_proposed());
  std::printf("\n=> under drift, periodic re-placement recovers the traffic\n"
              "   the static placement loses, at a small migration cost —\n"
              "   the natural 'online VELA' extension of the paper.\n");
  std::printf("CSV written: ablation_dynamic.csv\n");
  return 0;
}
