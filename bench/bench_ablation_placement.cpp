// Ablation A1: the LP-based locality-aware placement vs greedy-LPT vs the
// exhaustive optimum (on instances small enough to brute-force), plus LP
// solve cost at the real problem scale.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "placement/annealing.h"
#include "placement/exact.h"
#include "placement/greedy.h"
#include "util/stats.h"

using namespace vela;
using namespace vela::bench;

namespace {

placement::PlacementProblem random_problem(std::size_t workers,
                                           std::size_t layers,
                                           std::size_t experts, double zipf,
                                           std::uint64_t seed) {
  placement::PlacementProblem p;
  p.num_workers = workers;
  p.num_layers = layers;
  p.num_experts = experts;
  p.probability = Tensor({layers, experts});
  Rng rng(seed);
  ZipfSampler sampler(experts, zipf);
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<std::size_t> perm(experts);
    for (std::size_t e = 0; e < experts; ++e) perm[e] = e;
    rng.shuffle(perm);
    for (std::size_t e = 0; e < experts; ++e) {
      // Jitter breaks the permutation symmetry so different seeds give
      // genuinely different instances, then renormalize the row to top-2.
      p.probability.at(l, perm[e]) = static_cast<float>(
          2.0 * sampler.pmf(e) * rng.uniform(0.6, 1.4));
    }
    float row = 0.0f;
    for (std::size_t e = 0; e < experts; ++e) row += p.probability.at(l, e);
    for (std::size_t e = 0; e < experts; ++e) {
      p.probability.at(l, e) *= 2.0f / row;
    }
  }
  for (std::size_t w = 0; w < workers; ++w) {
    p.bandwidth.push_back(w < workers / 3 ? 18.3e9 : 1.17e9);
    p.worker_node.push_back(w * 3 / workers);
  }
  p.master_node = 0;
  p.capacity.assign(workers, (layers * experts + workers - 1) / workers + 1);
  p.tokens_per_step = 2048.0;
  p.bytes_per_token = 8192.0;
  p.validate();
  return p;
}

double brute_force_optimum(const placement::PlacementProblem& p) {
  // Enumerate worker^ (layers*experts) assignments — only for tiny instances.
  const std::size_t total = p.num_layers * p.num_experts;
  const std::size_t combos =
      static_cast<std::size_t>(std::pow(double(p.num_workers), double(total)));
  double best = 1e100;
  for (std::size_t mask = 0; mask < combos; ++mask) {
    std::size_t m = mask;
    placement::Placement placement(p.num_layers, p.num_experts);
    std::vector<std::size_t> load(p.num_workers, 0);
    bool ok = true;
    for (std::size_t l = 0; l < p.num_layers && ok; ++l) {
      for (std::size_t e = 0; e < p.num_experts && ok; ++e) {
        const std::size_t w = m % p.num_workers;
        m /= p.num_workers;
        placement.assign(l, e, w);
        ok = ++load[w] <= p.capacity[w];
      }
    }
    if (!ok) continue;
    best = std::min(best, placement::expected_comm_seconds(p, placement));
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== Ablation A1: LP placement vs greedy vs exhaustive ===\n");
  std::printf("\n[small instances: optimality gap]\n");
  std::printf("%-28s %12s %12s %12s %12s %9s %9s\n", "instance", "exhaustive",
              "B&B exact", "LP+round", "greedy", "LP gap", "grd gap");
  RunningStat lp_gap, greedy_gap;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto problem = random_problem(3, 2, 4, 1.2, seed);
    const double opt = brute_force_optimum(problem);
    placement::ExactPlacement exact;
    placement::LocalityAwarePlacement la;
    placement::GreedyLPTPlacement greedy;
    const double t_bnb =
        placement::expected_comm_seconds(problem, exact.place(problem));
    const double t_lp =
        placement::expected_comm_seconds(problem, la.place(problem));
    const double t_gr =
        placement::expected_comm_seconds(problem, greedy.place(problem));
    std::printf(
        "N=3 L=2 E=4 seed=%-12llu %12.5f %12.5f %12.5f %12.5f %8.2f%% %8.2f%%\n",
        static_cast<unsigned long long>(seed), opt, t_bnb, t_lp, t_gr,
        100.0 * (t_lp / opt - 1.0), 100.0 * (t_gr / opt - 1.0));
    lp_gap.add(t_lp / opt - 1.0);
    greedy_gap.add(t_gr / opt - 1.0);
  }
  std::printf("mean optimality gap: LP+rounding %.2f%%, greedy %.2f%% "
              "(B&B proves the enumeration optimum)\n",
              100.0 * lp_gap.mean(), 100.0 * greedy_gap.mean());

  std::printf("\n[paper-scale instances: objective + solve time]\n");
  std::printf("%-24s %14s %14s %14s %14s %12s %12s\n", "instance",
              "LP+round (s)", "greedy (s)", "annealing (s)", "LP+anneal (s)",
              "LP iters", "solve ms");
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    auto problem = random_problem(6, 32, 8, 1.15, seed);
    placement::LocalityAwarePlacement la;
    placement::GreedyLPTPlacement greedy;
    placement::AnnealingPlacement annealing(
        placement::AnnealingOptions{40000, 0.2, 0.9998, seed, false});
    placement::AnnealingPlacement refine(
        placement::AnnealingOptions{40000, 0.05, 0.9998, seed, true});
    const auto start = std::chrono::steady_clock::now();
    auto p_lp = la.place(problem);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    auto p_gr = greedy.place(problem);
    auto p_an = annealing.place(problem);
    auto p_ref = refine.place(problem);
    std::printf(
        "N=6 L=32 E=8 seed=%-6llu %14.5f %14.5f %14.5f %14.5f %12zu %12.1f\n",
        static_cast<unsigned long long>(seed),
        placement::expected_comm_seconds(problem, p_lp),
        placement::expected_comm_seconds(problem, p_gr),
        placement::expected_comm_seconds(problem, p_an),
        placement::expected_comm_seconds(problem, p_ref),
        la.report().lp_iterations, ms);
  }
  std::printf("\n=> the relaxed LP rounds to near-optimal placements and\n"
              "   solves the Mixtral-scale instance in well under a second,\n"
              "   validating the paper's 'efficiently solved by off-the-shelf\n"
              "   LP solvers' claim with a from-scratch simplex.\n");
  return 0;
}
