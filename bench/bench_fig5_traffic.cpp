// Reproduces Fig. 5: average cross-node traffic per node (MB) per fine-tuning
// step, for {expert parallelism, sequential, random, VELA} on four settings
// (Mixtral / GritLM × WikiText-like / Alpaca-like).
//
// The routing decisions of every step are sampled ONCE and fed to all four
// systems, so differences come purely from placement and communication
// pattern — the same control the paper's testbed gives.
// --processes N instead runs the MEASURED variant: a live multi-process
// deployment (one vela_node OS process per worker, socket fabric) emitting
// the per-(step, worker) lane-level byte split to fig5_traffic_proc.csv.
#include <cstdio>
#include <cstdlib>

#include "comm/transport.h"
#include "fig_csv.h"
#include "proc_csv.h"
#include "util/argparse.h"

using namespace vela;
using namespace vela::bench;

namespace {

int run_processes_mode(const std::string& argv0, std::size_t workers) {
  core::Scenario sc;
  sc.workers = workers;
  core::MultiProcOptions opts;
  opts.node_binary = find_node_binary(argv0);
  opts.log_dir = "/tmp/vela-fig5-proc";
  std::printf("=== Fig. 5 (--processes): measured lane bytes, %zu vela_node "
              "worker process(es) ===\n", workers);
  if (std::system(("mkdir -p '" + opts.log_dir + "'").c_str()) != 0) return 1;
  core::MultiProcCluster cluster(sc, opts);
  {
    CsvWriter csv("fig5_traffic_proc.csv", fig5_proc_columns());
    emit_proc_figs(cluster, &csv, nullptr);
  }
  const int rc = cluster.shutdown_and_wait();
  std::printf("CSV written: fig5_traffic_proc.csv (fleet exit code %d)\n", rc);
  return rc;
}

void run_setting(const Setting& setting, CsvWriter& csv) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  std::printf("\n--- %s ---\n", setting.name.c_str());
  std::printf("%-6s %12s %12s %12s %12s %12s   (MB/node)\n", "step",
              "Sequential", "Random", "Vela", "EP", "Vela+q8");
  const Fig5SettingStats stats =
      emit_fig5_setting(setting, topology, csv, kFineTuneSteps, kTokensPerStep,
                        /*print_progress=*/true);
  std::printf("  mean: %10.1f %12.1f %12.1f %12.1f %12.1f\n", stats.seq.mean(),
              stats.rnd.mean(), stats.vela.mean(), stats.ep.mean(),
              stats.vela_q8.mean());
  std::printf("  Vela reduction vs EP:        %5.1f%%  (paper: 17.3%%-25.3%%)\n",
              100.0 * (1.0 - stats.vela.mean() / stats.ep.mean()));
  std::printf("  Vela reduction vs Sequential: %5.1f%%\n",
              100.0 * (1.0 - stats.vela.mean() / stats.seq.mean()));
  std::printf("  Vela reduction vs Random:     %5.1f%%\n",
              100.0 * (1.0 - stats.vela.mean() / stats.rnd.mean()));
  std::printf("  Vela drift (first vs last 100 steps): %.1f -> %.1f MB/node "
              "(placement computed at step 0 decays slightly; Fig. 5(a))\n",
              stats.vela_head.mean(), stats.vela_tail.mean());
  std::printf("  Wire tiers (vela placement): fp16 %8.1f MB/node, int8 %8.1f "
              "MB/node (%.2fx cut vs fp16)\n",
              stats.vela_f16.mean(), stats.vela_q8.mean(),
              stats.vela_f16.mean() / stats.vela_q8.mean());
}

}  // namespace

int main(int argc, char** argv) {
  vela::ArgParser args(argc, argv);
  if (args.has("processes")) {
    return run_processes_mode(argv[0], args.get_size("processes", 6));
  }
  // The figures are simulator-driven (no live channels), so --transport only
  // names the active comm-fabric backend in the header; the byte ledger —
  // and therefore the CSV — is backend-invariant by construction.
  const comm::TransportKind transport =
      comm::transport_kind_from_name(args.get_string("transport", "inproc"));
  std::printf("=== Fig. 5: cross-node traffic per node per step ===\n");
  std::printf("comm fabric: %s (simulated figures are backend-invariant)\n",
              comm::transport_kind_name(transport));
  std::printf("Testbed: %s\n",
              cluster::ClusterTopology(cluster::ClusterConfig::paper_testbed())
                  .to_string()
                  .c_str());
  std::printf("Workload: K = %zu tokens/step (batch 8 x seq 256), %zu steps\n",
              kTokensPerStep, kFineTuneSteps);
  CsvWriter csv("fig5_traffic.csv", fig5_columns());
  for (const auto& setting : paper_settings()) {
    run_setting(setting, csv);
  }
  std::printf("\nCSV written: fig5_traffic.csv\n");
  return 0;
}
