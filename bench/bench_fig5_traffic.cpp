// Reproduces Fig. 5: average cross-node traffic per node (MB) per fine-tuning
// step, for {expert parallelism, sequential, random, VELA} on four settings
// (Mixtral / GritLM × WikiText-like / Alpaca-like).
//
// The routing decisions of every step are sampled ONCE and fed to all four
// systems, so differences come purely from placement and communication
// pattern — the same control the paper's testbed gives.
#include <cstdio>

#include "bench_common.h"
#include "core/step_simulator.h"
#include "ep/expert_parallel.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace vela;
using namespace vela::bench;

namespace {

struct SeriesStats {
  RunningStat seq, rnd, vela, ep;
  RunningStat vela_head, vela_tail;  // first/last 100 steps (drift check)
};

void run_setting(const Setting& setting, CsvWriter& csv) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  SettingRuntime runtime(setting);

  // Placement phase: VELA profiles P before fine-tuning (§IV-B) and solves
  // the LP; baselines need no profile.
  const auto problem = make_problem(setting, topology, runtime.probability);
  StrategySet placements = make_placements(problem, setting.seed + 99);

  core::VelaTrafficModelConfig vt_cfg;
  vt_cfg.bytes_per_token = setting.model.bytes_per_token();
  core::VelaTrafficModel vela_model(&topology, vt_cfg);

  ep::EpConfig ep_cfg;
  ep_cfg.bytes_per_token = setting.model.bytes_per_token();
  ep_cfg.backbone_grad_bytes = backbone_lora_grad_bytes(setting.model);
  ep::ExpertParallelModel ep_model(&topology, ep_cfg);

  const double nodes = static_cast<double>(topology.num_nodes());
  SeriesStats stats;
  std::printf("\n--- %s ---\n", setting.name.c_str());
  std::printf("%-6s %12s %12s %12s %12s   (MB/node)\n", "step", "Sequential",
              "Random", "Vela", "EP");
  for (std::size_t step = 0; step < kFineTuneSteps; ++step) {
    const auto plans = runtime.router.sample_step(kTokensPerStep);
    const double seq_mb =
        double(vela_model.external_bytes(
            vela_model.account_step(plans, placements.sequential))) /
        1e6 / nodes;
    const double rnd_mb =
        double(vela_model.external_bytes(
            vela_model.account_step(plans, placements.random))) /
        1e6 / nodes;
    const double vela_mb =
        double(vela_model.external_bytes(
            vela_model.account_step(plans, placements.vela))) /
        1e6 / nodes;
    const double ep_mb =
        double(ep_model.external_bytes(ep_model.account_step(plans))) / 1e6 /
        nodes;
    stats.seq.add(seq_mb);
    stats.rnd.add(rnd_mb);
    stats.vela.add(vela_mb);
    stats.ep.add(ep_mb);
    if (step < 100) stats.vela_head.add(vela_mb);
    if (step + 100 >= kFineTuneSteps) stats.vela_tail.add(vela_mb);
    csv.row({setting.name, std::to_string(step), std::to_string(seq_mb),
             std::to_string(rnd_mb), std::to_string(vela_mb),
             std::to_string(ep_mb)});
    if (step % 100 == 0 || step == kFineTuneSteps - 1) {
      std::printf("%-6zu %12.1f %12.1f %12.1f %12.1f\n", step, seq_mb, rnd_mb,
                  vela_mb, ep_mb);
    }
  }
  std::printf("  mean: %10.1f %12.1f %12.1f %12.1f\n", stats.seq.mean(),
              stats.rnd.mean(), stats.vela.mean(), stats.ep.mean());
  std::printf("  Vela reduction vs EP:        %5.1f%%  (paper: 17.3%%-25.3%%)\n",
              100.0 * (1.0 - stats.vela.mean() / stats.ep.mean()));
  std::printf("  Vela reduction vs Sequential: %5.1f%%\n",
              100.0 * (1.0 - stats.vela.mean() / stats.seq.mean()));
  std::printf("  Vela reduction vs Random:     %5.1f%%\n",
              100.0 * (1.0 - stats.vela.mean() / stats.rnd.mean()));
  std::printf("  Vela drift (first vs last 100 steps): %.1f -> %.1f MB/node "
              "(placement computed at step 0 decays slightly; Fig. 5(a))\n",
              stats.vela_head.mean(), stats.vela_tail.mean());
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: cross-node traffic per node per step ===\n");
  std::printf("Testbed: %s\n",
              cluster::ClusterTopology(cluster::ClusterConfig::paper_testbed())
                  .to_string()
                  .c_str());
  std::printf("Workload: K = %zu tokens/step (batch 8 x seq 256), %zu steps\n",
              kTokensPerStep, kFineTuneSteps);
  CsvWriter csv("fig5_traffic.csv",
                {"setting", "step", "sequential_mb", "random_mb", "vela_mb",
                 "ep_mb"});
  for (const auto& setting : paper_settings()) {
    run_setting(setting, csv);
  }
  std::printf("\nCSV written: fig5_traffic.csv\n");
  return 0;
}
