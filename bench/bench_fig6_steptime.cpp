// Reproduces Fig. 6: average time to complete one fine-tuning step for
// {EP, Sequential, Random, Vela} on the four evaluation settings, plus the
// vela+overlap series (the same measured bytes under the micro-chunked
// dispatch pipeline's clock, DESIGN.md §8).
//
// Byte counts are measured per step (same sampled routing for all systems);
// the CommClock converts them to time with the paper's measured bandwidths.
// Compute time per step is charged identically to every system — the paper's
// systems run the same FLOPs and differ only in communication pattern.
//
// --processes N instead runs the MEASURED variant: a live multi-process
// deployment (one vela_node OS process per worker, socket fabric) emitting
// per-step loss/traffic/step-time rows to fig6_steptime_proc.csv.
#include <cstdio>
#include <cstdlib>

#include "comm/transport.h"
#include "fig_csv.h"
#include "proc_csv.h"
#include "util/argparse.h"

using namespace vela;
using namespace vela::bench;

namespace {

int run_processes_mode(const std::string& argv0, std::size_t workers) {
  core::Scenario sc;
  sc.workers = workers;
  core::MultiProcOptions opts;
  opts.node_binary = find_node_binary(argv0);
  opts.log_dir = "/tmp/vela-fig6-proc";
  std::printf("=== Fig. 6 (--processes): measured steps, %zu vela_node "
              "worker process(es) ===\n", workers);
  if (std::system(("mkdir -p '" + opts.log_dir + "'").c_str()) != 0) return 1;
  core::MultiProcCluster cluster(sc, opts);
  {
    CsvWriter csv("fig6_steptime_proc.csv", fig6_proc_columns());
    emit_proc_figs(cluster, nullptr, &csv);
  }
  const int rc = cluster.shutdown_and_wait();
  std::printf("CSV written: fig6_steptime_proc.csv (fleet exit code %d)\n",
              rc);
  return rc;
}

// Per-step forward+backward compute of a LoRA fine-tuning step of
// Mixtral-8x7B on K=2048 tokens, calibrated to a V100-class device
// (~14 TFLOP/s effective on fp16 GEMMs):
//   active params/token ≈ 13B → FLOPs/step ≈ 6 · 13e9 · 2048 ≈ 1.6e14,
//   spread over 6 GPUs ≈ 2.66e13 each → ≈ 1.9 s.
constexpr double kComputeSeconds = 1.9;

// Pipeline depth of the vela+overlap series (VELA_OVERLAP=8): deep enough to
// hide most of each phase's transfer under its compute slice, shallow enough
// that per-chunk latency terms stay irrelevant (byte counts don't change).
constexpr std::size_t kOverlapChunks = 8;

void run_setting(const Setting& setting, CsvWriter& csv) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  const Fig6SettingStats t =
      emit_fig6_setting(setting, topology, csv, kFineTuneSteps, kTokensPerStep,
                        kComputeSeconds, kOverlapChunks);

  std::printf("\n--- %s ---\n", setting.name.c_str());
  std::printf("  %-16s %10s %10s\n", "system", "mean (s)", "stddev");
  std::printf("  %-16s %10.3f %10.4f\n", "EP", t.ep.mean(), t.ep.stddev());
  std::printf("  %-16s %10.3f %10.4f\n", "Sequential", t.seq.mean(),
              t.seq.stddev());
  std::printf("  %-16s %10.3f %10.4f\n", "Random", t.rnd.mean(),
              t.rnd.stddev());
  std::printf("  %-16s %10.3f %10.4f\n", "Vela", t.vela.mean(),
              t.vela.stddev());
  std::printf("  %-16s %10.3f %10.4f\n", "Vela+overlap", t.vela_overlap.mean(),
              t.vela_overlap.stddev());
  std::printf("  %-16s %10.3f %10.4f\n", "Vela+f16 wire", t.vela_f16.mean(),
              t.vela_f16.stddev());
  std::printf("  %-16s %10.3f %10.4f\n", "Vela+q8 wire", t.vela_q8.mean(),
              t.vela_q8.stddev());
  std::printf("  Vela speedup vs EP:         %5.1f%%  (paper: 20.6%%-28.2%%)\n",
              100.0 * (1.0 - t.vela.mean() / t.ep.mean()));
  std::printf("  Vela speedup vs Sequential: %5.1f%%\n",
              100.0 * (1.0 - t.vela.mean() / t.seq.mean()));
  std::printf("  Vela speedup vs Random:     %5.1f%%\n",
              100.0 * (1.0 - t.vela.mean() / t.rnd.mean()));
  std::printf("  Overlap (K=%zu) speedup vs Vela: %5.1f%%  (same bytes)\n",
              kOverlapChunks,
              100.0 * (1.0 - t.vela_overlap.mean() / t.vela.mean()));
}

}  // namespace

int main(int argc, char** argv) {
  vela::ArgParser args(argc, argv);
  if (args.has("processes")) {
    return run_processes_mode(argv[0], args.get_size("processes", 6));
  }
  // Simulator-driven figure: --transport names the backend in the header
  // only; the modelled step times and the CSV are backend-invariant.
  const comm::TransportKind transport =
      comm::transport_kind_from_name(args.get_string("transport", "inproc"));
  std::printf("=== Fig. 6: average time per fine-tuning step ===\n");
  std::printf("comm fabric: %s (simulated figures are backend-invariant)\n",
              comm::transport_kind_name(transport));
  std::printf("compute charged per step (all systems): %.2f s\n",
              kComputeSeconds);
  CsvWriter csv("fig6_steptime.csv", fig6_columns());
  for (const auto& setting : paper_settings()) {
    run_setting(setting, csv);
  }
  std::printf("\nCSV written: fig6_steptime.csv\n");
  return 0;
}
