// Reproduces Fig. 6: average time to complete one fine-tuning step for
// {EP, Sequential, Random, Vela} on the four evaluation settings.
//
// Byte counts are measured per step (same sampled routing for all systems);
// the CommClock converts them to time with the paper's measured bandwidths.
// Compute time per step is charged identically to every system — the paper's
// systems run the same FLOPs and differ only in communication pattern.
#include <cstdio>

#include "bench_common.h"
#include "core/step_simulator.h"
#include "ep/expert_parallel.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace vela;
using namespace vela::bench;

namespace {

// Per-step forward+backward compute of a LoRA fine-tuning step of
// Mixtral-8x7B on K=2048 tokens, calibrated to a V100-class device
// (~14 TFLOP/s effective on fp16 GEMMs):
//   active params/token ≈ 13B → FLOPs/step ≈ 6 · 13e9 · 2048 ≈ 1.6e14,
//   spread over 6 GPUs ≈ 2.66e13 each → ≈ 1.9 s.
constexpr double kComputeSeconds = 1.9;

void run_setting(const Setting& setting, CsvWriter& csv) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  SettingRuntime runtime(setting);

  const auto problem = make_problem(setting, topology, runtime.probability);
  StrategySet placements = make_placements(problem, setting.seed + 99);

  core::VelaTrafficModelConfig vt_cfg;
  vt_cfg.bytes_per_token = setting.model.bytes_per_token();
  core::VelaTrafficModel vela_model(&topology, vt_cfg);

  ep::EpConfig ep_cfg;
  ep_cfg.bytes_per_token = setting.model.bytes_per_token();
  ep_cfg.backbone_grad_bytes = backbone_lora_grad_bytes(setting.model);
  ep::ExpertParallelModel ep_model(&topology, ep_cfg);

  comm::CommClockConfig clock_cfg;
  clock_cfg.compute_seconds = kComputeSeconds;
  comm::CommClock clock(&topology, clock_cfg);

  RunningStat t_seq, t_rnd, t_vela, t_ep;
  for (std::size_t step = 0; step < kFineTuneSteps; ++step) {
    const auto plans = runtime.router.sample_step(kTokensPerStep);
    t_seq.add(clock.vela_step_seconds(
        vela_model.account_step(plans, placements.sequential)));
    t_rnd.add(clock.vela_step_seconds(
        vela_model.account_step(plans, placements.random)));
    t_vela.add(clock.vela_step_seconds(
        vela_model.account_step(plans, placements.vela)));
    t_ep.add(clock.ep_step_seconds(ep_model.account_step(plans)));
  }

  std::printf("\n--- %s ---\n", setting.name.c_str());
  std::printf("  %-12s %10s %10s\n", "system", "mean (s)", "stddev");
  std::printf("  %-12s %10.3f %10.4f\n", "EP", t_ep.mean(), t_ep.stddev());
  std::printf("  %-12s %10.3f %10.4f\n", "Sequential", t_seq.mean(),
              t_seq.stddev());
  std::printf("  %-12s %10.3f %10.4f\n", "Random", t_rnd.mean(),
              t_rnd.stddev());
  std::printf("  %-12s %10.3f %10.4f\n", "Vela", t_vela.mean(),
              t_vela.stddev());
  std::printf("  Vela speedup vs EP:         %5.1f%%  (paper: 20.6%%-28.2%%)\n",
              100.0 * (1.0 - t_vela.mean() / t_ep.mean()));
  std::printf("  Vela speedup vs Sequential: %5.1f%%\n",
              100.0 * (1.0 - t_vela.mean() / t_seq.mean()));
  std::printf("  Vela speedup vs Random:     %5.1f%%\n",
              100.0 * (1.0 - t_vela.mean() / t_rnd.mean()));
  csv.row({setting.name, std::to_string(t_ep.mean()),
           std::to_string(t_seq.mean()), std::to_string(t_rnd.mean()),
           std::to_string(t_vela.mean())});
}

}  // namespace

int main() {
  std::printf("=== Fig. 6: average time per fine-tuning step ===\n");
  std::printf("compute charged per step (all systems): %.2f s\n",
              kComputeSeconds);
  CsvWriter csv("fig6_steptime.csv",
                {"setting", "ep_s", "sequential_s", "random_s", "vela_s"});
  for (const auto& setting : paper_settings()) {
    run_setting(setting, csv);
  }
  std::printf("\nCSV written: fig6_steptime.csv\n");
  return 0;
}
