// Shared emitter for the degrade-and-continue recovery CSV.
//
// Both bench_fault_tolerance (paper-scale) and the golden-file regression
// test (tests/test_degrade_golden.cpp) run the kill-then-degrade scenario
// through this emitter, so the schema, row order and cell formatting cannot
// drift from what tests/golden/degrade_tiny.csv pins. Every cell is
// deterministic: losses are bit-exact run-to-run, traffic and recovery
// bytes come from the conservation-audited meter, and step time is the
// modelled clock (no wall-clock cells). The scripted kill fires at a fixed
// message index, so the CSV is identical on both VELA_TRANSPORT backends.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/fault_injector.h"
#include "core/vela_system.h"
#include "csv_cells.h"
#include "data/corpus.h"
#include "util/csv.h"

namespace vela::bench {

inline const std::vector<std::string>& degrade_columns() {
  static const std::vector<std::string> cols = {
      "setting",     "step",        "loss",
      "workers_lost", "live_workers", "retries",
      "recovery_mb", "traffic_mb_per_node", "step_seconds"};
  return cols;
}

struct DegradeRunStats {
  std::size_t workers_lost = 0;
  std::size_t live_workers = 0;
  double recovery_mb = 0.0;
  float final_loss = 0.0f;
};

// One kill-then-degrade fine-tune, one CSV row per step: worker
// `kill_worker` is crashed at message index `kill_message` (counted from
// injector attach) with a zero respawn budget, so the kill step pays the
// recovery migration and every later step runs on the reduced fleet.
inline DegradeRunStats emit_degrade_recovery(const std::string& setting_name,
                                             CsvWriter& csv, int steps,
                                             std::size_t kill_worker,
                                             std::uint64_t kill_message) {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 3;
  cfg.wire_bits = 32;
  cfg.clock.compute_seconds = 0.5;

  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  comm::FaultPlan plan;
  plan.rules.push_back({kill_worker, comm::LinkDir::kToWorker, kill_message,
                        comm::FaultKind::kCrashWorker, 0.0});
  comm::FaultInjector injector(plan);  // must outlive the system
  core::VelaSystem vela(cfg, &corpus);

  core::FaultToleranceConfig ft;
  ft.retry.timeout = std::chrono::milliseconds(60);
  ft.retry.max_retries = 4;
  ft.snapshot_interval = 5;
  ft.respawn_budget = 0;  // no respawns: the kill shrinks the fleet
  vela.enable_fault_tolerance(ft);
  vela.attach_fault_injector(&injector);

  const auto batch = corpus.make_dataset(2, 6);
  DegradeRunStats out;
  for (int i = 0; i < steps; ++i) {
    const core::StepReport r = vela.train_step(batch);
    out.workers_lost += r.workers_lost;
    out.recovery_mb += r.recovery_mb;
    out.final_loss = r.loss;
    // r.loss is float — cell(float) keeps std::to_string(float)'s exact
    // formatting, so the golden CSV bytes are unchanged by the cells() move.
    csv.row(cells(setting_name, i, r.loss, r.workers_lost,
                  vela.master().num_live_workers(), r.retries, r.recovery_mb,
                  r.external_mb_per_node, r.step_seconds));
  }
  out.live_workers = vela.master().num_live_workers();
  return out;
}

}  // namespace vela::bench
