// Ablation A5: expert replication on top of locality-aware placement.
//
// Inference-side systems (Lina et al.) give popular experts more resources;
// this bench quantifies how much expected communication time replicating hot
// experts saves beyond placement alone, as a function of the replica budget.
// (Replication is an accounting-level extension — see placement/replication.h
// for why the training runtime does not replicate.)
#include <cstdio>

#include "bench_common.h"
#include "placement/replication.h"
#include "util/csv.h"

using namespace vela;
using namespace vela::bench;

int main() {
  std::printf("=== Ablation A5: expert replication budget sweep ===\n");
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  CsvWriter csv("ablation_replication.csv",
                {"setting", "budget", "comm_seconds", "external_mb",
                 "gain_vs_placement_pct"});

  for (const auto& base_setting :
       {paper_settings()[0], paper_settings()[1]}) {
    Setting setting = base_setting;
    SettingRuntime runtime(setting);
    // Extra capacity slack so there is room for replicas at all.
    const auto problem =
        make_problem(setting, topology, runtime.probability, 1.6);

    placement::LocalityAwarePlacement la;
    placement::Placement base = la.place(problem);
    const double base_time = placement::expected_comm_seconds(problem, base);
    const double base_mb =
        placement::expected_external_bytes(problem, base) / 1e6;

    std::printf("\n--- %s (placement-only: %.4f s, %.1f MB external) ---\n",
                setting.name.c_str(), base_time, base_mb);
    std::printf("%-10s %16s %16s %12s\n", "budget", "comm time (s)",
                "external (MB)", "gain");
    for (std::size_t budget : {0ul, 4ul, 8ul, 16ul, 32ul, 64ul}) {
      auto rp = placement::greedy_replication(problem, base, budget);
      const double t =
          placement::expected_comm_seconds_replicated(problem, rp);
      const double mb =
          placement::expected_external_bytes_replicated(problem, rp) / 1e6;
      const double gain = 100.0 * (1.0 - t / base_time);
      std::printf("%-10zu %16.4f %16.1f %11.1f%%\n", budget, t, mb, gain);
      csv.row({setting.name, std::to_string(budget), std::to_string(t),
               std::to_string(mb), std::to_string(gain)});
    }
  }
  std::printf("\n=> replication keeps shaving the per-layer max beyond what\n"
              "   single-copy placement can achieve, with diminishing\n"
              "   returns once hot experts are split across the fast links.\n");
  std::printf("CSV written: ablation_replication.csv\n");
  return 0;
}
