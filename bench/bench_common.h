// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "data/corpus.h"
#include "model/config.h"
#include "model/router_planting.h"
#include "moe/synthetic_router.h"
#include "placement/evaluator.h"
#include "placement/locality_aware.h"
#include "placement/placement.h"
#include "placement/random.h"
#include "placement/sequential.h"

namespace vela::bench {

// One evaluation setting of §V: a model shape + a dataset character.
struct Setting {
  std::string name;
  model::ModelConfig model;
  data::CorpusConfig corpus;
  std::size_t num_domains = 64;
  double popularity_zipf = 1.1;   // per-layer expert popularity skew
  double routing_noise = 0.06;
  double drift_sigma = 0.03;      // slow per-step drift (Fig. 5 dynamics)
  std::uint64_t seed = 1;
};

inline std::vector<Setting> paper_settings() {
  std::vector<Setting> settings;
  {
    Setting s;
    s.name = "mixtral-wikitext";
    s.model = model::ModelConfig::mixtral_8x7b_shape();
    s.corpus = data::CorpusConfig::wikitext_like(32000, 64);
    // At Mixtral scale the corpus covers many more topics than the tiny
    // presets; temper the head of the topic law accordingly.
    s.corpus.domain_zipf = 0.8;
    s.popularity_zipf = 0.7;
    s.routing_noise = 0.09;
    s.seed = 101;
    settings.push_back(s);
  }
  {
    Setting s;
    s.name = "mixtral-alpaca";
    s.model = model::ModelConfig::mixtral_8x7b_shape();
    s.corpus = data::CorpusConfig::alpaca_like(32000, 64);
    s.popularity_zipf = 0.62;
    s.routing_noise = 0.13;
    s.seed = 102;
    settings.push_back(s);
  }
  {
    Setting s;
    s.name = "gritlm-wikitext";
    s.model = model::ModelConfig::gritlm_8x7b_shape();
    s.corpus = data::CorpusConfig::wikitext_like(32000, 64);
    // GritLM is Mixtral fine-tuned further: slightly sharper routing.
    s.corpus.domain_zipf = 0.85;
    s.popularity_zipf = 0.75;
    s.routing_noise = 0.08;
    s.seed = 103;
    settings.push_back(s);
  }
  {
    Setting s;
    s.name = "gritlm-alpaca";
    s.model = model::ModelConfig::gritlm_8x7b_shape();
    s.corpus = data::CorpusConfig::alpaca_like(32000, 64);
    s.popularity_zipf = 0.65;
    s.routing_noise = 0.12;
    s.seed = 104;
    settings.push_back(s);
  }
  return settings;
}

// The paper's fine-tune workload: batch 8, sequence 256 → K = 2048 tokens.
inline constexpr std::size_t kTokensPerStep = 2048;
inline constexpr std::size_t kFineTuneSteps = 500;

struct SettingRuntime {
  model::PlantedRouting routing;
  std::vector<double> domain_dist;
  moe::SyntheticRouter router;
  Tensor probability;  // profiled P (pre-fine-tuning pass)

  explicit SettingRuntime(const Setting& s)
      : routing(model::PlantedRouting::generate(
            s.model.num_layers, s.model.num_experts, s.num_domains,
            s.popularity_zipf, s.seed)),
        domain_dist(
            data::SyntheticCorpus(s.corpus, s.seed + 7).domain_distribution()),
        router(&routing, make_router_config(s)),
        probability(router.estimate_probability(50000)) {}

 private:
  moe::SyntheticRouterConfig make_router_config(const Setting& s) const {
    moe::SyntheticRouterConfig cfg;
    cfg.domain_dist = domain_dist;
    cfg.routing_noise = s.routing_noise;
    cfg.drift_sigma = s.drift_sigma;
    cfg.seed = s.seed + 13;
    return cfg;
  }
};

inline placement::PlacementProblem make_problem(
    const Setting& s, const cluster::ClusterTopology& topology,
    const Tensor& probability, double capacity_slack = 1.34) {
  placement::PlacementProblem p;
  p.num_workers = topology.num_workers();
  p.num_layers = s.model.num_layers;
  p.num_experts = s.model.num_experts;
  p.probability = probability;
  p.tokens_per_step = static_cast<double>(kTokensPerStep);
  p.bytes_per_token = static_cast<double>(s.model.bytes_per_token());
  p.master_node = topology.master_node();
  for (std::size_t w = 0; w < p.num_workers; ++w) {
    p.bandwidth.push_back(topology.worker_bandwidth(w));
    p.worker_node.push_back(topology.worker_node(w));
  }
  p.capacity = topology.uniform_capacities(
      s.model.num_layers * s.model.num_experts, capacity_slack);
  // The conventional EP layout (expert e on worker e mod N) is unbalanced
  // when E is not a multiple of N; the testbed must be able to host it
  // (the paper's GPUs do), so raise capacities to that layout's worst load.
  for (std::size_t w = 0; w < p.num_workers; ++w) {
    std::size_t experts_on_w = 0;
    for (std::size_t e = 0; e < p.num_experts; ++e) {
      if (e % p.num_workers == w) ++experts_on_w;
    }
    p.capacity[w] = std::max(p.capacity[w], experts_on_w * p.num_layers);
  }
  p.validate();
  return p;
}

struct StrategySet {
  placement::Placement sequential;
  placement::Placement random;
  placement::Placement vela;
};

inline StrategySet make_placements(const placement::PlacementProblem& problem,
                                   std::uint64_t seed) {
  StrategySet set;
  placement::SequentialPlacement seq;
  placement::RandomPlacement rnd(seed);
  placement::LocalityAwarePlacement la;
  set.sequential = seq.place(problem);
  set.random = rnd.place(problem);
  set.vela = la.place(problem);
  return set;
}

// Backbone LoRA gradient volume for the EP all-reduce: 4 attention
// projections (r=8 adapters, fp32 gradients) per layer + lm-head adapters.
inline std::uint64_t backbone_lora_grad_bytes(const model::ModelConfig& m) {
  const std::uint64_t rank = m.lora.rank == 0 ? 8 : m.lora.rank;
  const std::uint64_t per_proj = 2ULL * m.model_dim * rank;  // A + B
  const std::uint64_t attn = 4ULL * per_proj * m.num_layers;
  const std::uint64_t head = (m.model_dim + m.vocab) * rank;
  return (attn + head) * sizeof(float);
}

}  // namespace vela::bench
