// Shared emitters for the --processes (multi-process deployment) CSV series.
//
// Unlike fig_csv.h these are NOT simulator-driven: every row is measured off
// a live MultiProcCluster — real vela_node worker processes, real sockets,
// real TrafficMeter bytes. The bench binaries' --processes mode and the
// golden/schema tests in tests/test_multiproc_golden.cpp run through the
// same functions, so the proc CSV schema cannot drift from what the golden
// files pin.
//
// fig5 proc schema: one row per (step, worker) with the lane-level byte
// split. Row invariant (asserted here, not just in tests): the scenario
// places the master alone on node 0 and worker w alone on node w+1, so
// every link is cross-node and the per-step rows partition the meter's
// external-byte ledger exactly —
//
//   Σ_w row_total_bytes(step, w) == step_external_bytes(step).
//
// fig6 proc schema: one row per step with the measured loss/traffic and the
// modelled comm/step seconds for the deployed placement.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "core/node_runtime.h"
#include "csv_cells.h"
#include "data/batch.h"
#include "util/check.h"
#include "util/csv.h"

namespace vela::bench {

inline const std::vector<std::string>& fig5_proc_columns() {
  static const std::vector<std::string> cols = {
      "workers",          "step",
      "worker",           "node",
      "to_worker_bytes",  "to_master_bytes",
      "row_total_bytes",  "step_external_bytes"};
  return cols;
}

inline const std::vector<std::string>& fig6_proc_columns() {
  static const std::vector<std::string> cols = {
      "workers", "step", "loss", "external_mb_per_node", "comm_s", "step_s"};
  return cols;
}

// Runs the cluster's scenario fine-tune and emits the measured series.
// Either writer may be null (the schema tests emit one figure at a time).
inline void emit_proc_figs(core::MultiProcCluster& cluster, CsvWriter* fig5,
                           CsvWriter* fig6) {
  core::VelaSystem& vela = cluster.system();
  const core::Scenario& sc = cluster.scenario();
  core::MasterProcess& master = vela.master();
  const std::size_t num_workers = master.num_workers();

  data::BatchIterator batches(
      cluster.corpus().make_dataset(sc.dataset_sequences, sc.sequence_length),
      sc.batch_size, sc.batch_seed, /*shuffle=*/false);

  // Lane counters are lifetime totals; per-step rows are deltas between
  // consecutive reads, so fleet-assembly traffic (none today) and recovery
  // bytes stay attributed to the step they happened in.
  std::vector<std::uint64_t> prev_to_worker(num_workers, 0);
  std::vector<std::uint64_t> prev_to_master(num_workers, 0);
  for (std::size_t w = 0; w < num_workers; ++w) {
    prev_to_worker[w] = master.link(w).to_worker.bytes_sent();
    prev_to_master[w] = master.link(w).to_master.bytes_received();
  }

  for (std::size_t step = 0; step < sc.steps; ++step) {
    const core::StepReport report = vela.train_step(batches.next());
    const std::size_t i = master.meter().num_steps() - 1;
    const std::uint64_t step_external = master.meter().step_external_bytes(i);

    std::uint64_t row_sum = 0;
    for (std::size_t w = 0; w < num_workers; ++w) {
      const std::uint64_t to_worker = master.link(w).to_worker.bytes_sent();
      const std::uint64_t to_master =
          master.link(w).to_master.bytes_received();
      const std::uint64_t d_tw = to_worker - prev_to_worker[w];
      const std::uint64_t d_tm = to_master - prev_to_master[w];
      prev_to_worker[w] = to_worker;
      prev_to_master[w] = to_master;
      const std::uint64_t row_total = d_tw + d_tm;
      row_sum += row_total;
      if (fig5 != nullptr) {
        fig5->row(cells(num_workers, step, w, vela.topology().worker_node(w),
                        d_tw, d_tm, row_total, step_external));
      }
    }
    VELA_CHECK_MSG(row_sum == step_external,
                   "per-row byte conservation violated at step "
                       << step << ": rows sum to " << row_sum
                       << " B but the meter charged " << step_external
                       << " B external");

    if (fig6 != nullptr) {
      fig6->row(cells(num_workers, step, static_cast<double>(report.loss),
                      report.external_mb_per_node, report.comm_seconds,
                      report.step_seconds));
    }
  }
}

// Locates the vela_node binary for a bench/test process: $VELA_NODE_BIN when
// set (the test binaries get it from CMake), else next to this binary's
// build tree (build/bench/… → build/tools/vela_node).
inline std::string find_node_binary(const std::string& argv0) {
  if (const char* env = std::getenv("VELA_NODE_BIN")) return env;
  const std::size_t slash = argv0.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : argv0.substr(0, slash);
  return dir + "/../tools/vela_node";
}

}  // namespace vela::bench
