// Shared per-setting emitters for the Fig. 5 / Fig. 6 CSV series.
//
// Both the paper-scale bench binaries and the golden-file regression test
// (tests/test_bench_golden.cpp) run settings through these emitters, so the
// CSV schema, series order and cell formatting cannot drift from what the
// golden files pin. Cells are formatted with std::to_string (fixed, six
// decimals) — deterministic across runs and thread counts.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/comm_clock.h"
#include "core/step_simulator.h"
#include "ep/expert_parallel.h"
#include "util/csv.h"
#include "util/stats.h"

namespace vela::bench {

inline const std::vector<std::string>& fig5_columns() {
  static const std::vector<std::string> cols = {
      "setting", "step", "sequential_mb", "random_mb", "vela_mb", "ep_mb"};
  return cols;
}

inline const std::vector<std::string>& fig6_columns() {
  static const std::vector<std::string> cols = {"setting",  "ep_s",
                                                "sequential_s", "random_s",
                                                "vela_s",   "vela_overlap_s"};
  return cols;
}

struct Fig5SettingStats {
  RunningStat seq, rnd, vela, ep;
  RunningStat vela_head, vela_tail;  // first/last window (drift check)
};

// One Fig. 5 setting: per-step cross-node MB/node for the four systems, one
// CSV row per step. The routing decisions of every step are sampled once and
// fed to all systems, so series differ purely by placement.
inline Fig5SettingStats emit_fig5_setting(
    const Setting& setting, const cluster::ClusterTopology& topology,
    CsvWriter& csv, std::size_t steps, std::size_t tokens_per_step,
    bool print_progress = false) {
  SettingRuntime runtime(setting);
  const auto problem = make_problem(setting, topology, runtime.probability);
  StrategySet placements = make_placements(problem, setting.seed + 99);

  core::VelaTrafficModelConfig vt_cfg;
  vt_cfg.bytes_per_token = setting.model.bytes_per_token();
  core::VelaTrafficModel vela_model(&topology, vt_cfg);

  ep::EpConfig ep_cfg;
  ep_cfg.bytes_per_token = setting.model.bytes_per_token();
  ep_cfg.backbone_grad_bytes = backbone_lora_grad_bytes(setting.model);
  ep::ExpertParallelModel ep_model(&topology, ep_cfg);

  const double nodes = static_cast<double>(topology.num_nodes());
  const std::size_t window = std::min<std::size_t>(100, steps);
  Fig5SettingStats stats;
  for (std::size_t step = 0; step < steps; ++step) {
    const auto plans = runtime.router.sample_step(tokens_per_step);
    const double seq_mb =
        double(vela_model.external_bytes(
            vela_model.account_step(plans, placements.sequential))) /
        1e6 / nodes;
    const double rnd_mb =
        double(vela_model.external_bytes(
            vela_model.account_step(plans, placements.random))) /
        1e6 / nodes;
    const double vela_mb =
        double(vela_model.external_bytes(
            vela_model.account_step(plans, placements.vela))) /
        1e6 / nodes;
    const double ep_mb =
        double(ep_model.external_bytes(ep_model.account_step(plans))) / 1e6 /
        nodes;
    stats.seq.add(seq_mb);
    stats.rnd.add(rnd_mb);
    stats.vela.add(vela_mb);
    stats.ep.add(ep_mb);
    if (step < window) stats.vela_head.add(vela_mb);
    if (step + window >= steps) stats.vela_tail.add(vela_mb);
    csv.row({setting.name, std::to_string(step), std::to_string(seq_mb),
             std::to_string(rnd_mb), std::to_string(vela_mb),
             std::to_string(ep_mb)});
    if (print_progress && (step % 100 == 0 || step == steps - 1)) {
      std::printf("%-6zu %12.1f %12.1f %12.1f %12.1f\n", step, seq_mb, rnd_mb,
                  vela_mb, ep_mb);
    }
  }
  return stats;
}

struct Fig6SettingStats {
  RunningStat ep, seq, rnd, vela, vela_overlap;
};

// One Fig. 6 setting: mean modeled step time of the four systems plus the
// vela+overlap series — the SAME vela byte record pushed through the
// overlap-pipelined clock at depth `overlap_chunks` (byte counts are
// invariant in the pipeline depth; only the step-time model changes).
inline Fig6SettingStats emit_fig6_setting(
    const Setting& setting, const cluster::ClusterTopology& topology,
    CsvWriter& csv, std::size_t steps, std::size_t tokens_per_step,
    double compute_seconds, std::size_t overlap_chunks) {
  SettingRuntime runtime(setting);
  const auto problem = make_problem(setting, topology, runtime.probability);
  StrategySet placements = make_placements(problem, setting.seed + 99);

  core::VelaTrafficModelConfig vt_cfg;
  vt_cfg.bytes_per_token = setting.model.bytes_per_token();
  core::VelaTrafficModel vela_model(&topology, vt_cfg);

  ep::EpConfig ep_cfg;
  ep_cfg.bytes_per_token = setting.model.bytes_per_token();
  ep_cfg.backbone_grad_bytes = backbone_lora_grad_bytes(setting.model);
  ep::ExpertParallelModel ep_model(&topology, ep_cfg);

  comm::CommClockConfig clock_cfg;
  clock_cfg.compute_seconds = compute_seconds;
  comm::CommClock clock(&topology, clock_cfg);

  Fig6SettingStats stats;
  for (std::size_t step = 0; step < steps; ++step) {
    const auto plans = runtime.router.sample_step(tokens_per_step);
    stats.seq.add(clock.vela_step_seconds(
        vela_model.account_step(plans, placements.sequential)));
    stats.rnd.add(clock.vela_step_seconds(
        vela_model.account_step(plans, placements.random)));
    const comm::VelaStepRecord vela_record =
        vela_model.account_step(plans, placements.vela);
    const core::ModeledStepTimes times =
        core::modeled_step_times(clock, vela_record, overlap_chunks);
    stats.vela.add(times.sequential_s);
    stats.vela_overlap.add(times.overlap_s);
    stats.ep.add(clock.ep_step_seconds(ep_model.account_step(plans)));
  }
  csv.row({setting.name, std::to_string(stats.ep.mean()),
           std::to_string(stats.seq.mean()), std::to_string(stats.rnd.mean()),
           std::to_string(stats.vela.mean()),
           std::to_string(stats.vela_overlap.mean())});
  return stats;
}

}  // namespace vela::bench
