// Shared per-setting emitters for the Fig. 5 / Fig. 6 CSV series.
//
// Both the paper-scale bench binaries and the golden-file regression test
// (tests/test_bench_golden.cpp) run settings through these emitters, so the
// CSV schema, series order and cell formatting cannot drift from what the
// golden files pin. Cells are formatted through bench/csv_cells.h (fixed,
// six decimals) — deterministic across runs and thread counts.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/comm_clock.h"
#include "core/step_simulator.h"
#include "csv_cells.h"
#include "ep/expert_parallel.h"
#include "tensor/qblock.h"
#include "util/csv.h"
#include "util/stats.h"

namespace vela::bench {

// Wire-tier byte models (DESIGN.md §13). The vela_f16 / vela_q8 series rerun
// the SAME vela placement accounting with the per-token payload size of the
// fp16 and block-quantized int8 wire dtypes; routing, placement and hop
// counts are identical, so the series isolate the wire-format effect. For a
// setting whose model already models wire_bits = 16, vela_f16_mb == vela_mb
// cell-for-cell — pinned by tests/test_bench_golden.cpp as a sanity check.
inline std::size_t f16_bytes_per_token(const model::ModelConfig& m) {
  return m.model_dim * 2;
}
// int8 codes (1 B/element) plus one fp32 scale per block of the default
// length — the exact Message::wire_size() charge for a 1×model_dim payload.
inline std::size_t q8_bytes_per_token(const model::ModelConfig& m) {
  return qblock::wire_payload_bytes(/*rows=*/1, m.model_dim,
                                    qblock::kDefaultBlock);
}

inline const std::vector<std::string>& fig5_columns() {
  static const std::vector<std::string> cols = {
      "setting",     "step",  "sequential_mb", "random_mb",
      "vela_mb",     "ep_mb", "vela_f16_mb",   "vela_q8_mb"};
  return cols;
}

inline const std::vector<std::string>& fig6_columns() {
  static const std::vector<std::string> cols = {
      "setting", "ep_s",           "sequential_s", "random_s",
      "vela_s",  "vela_overlap_s", "vela_f16_s",   "vela_q8_s"};
  return cols;
}

struct Fig5SettingStats {
  RunningStat seq, rnd, vela, ep;
  RunningStat vela_f16, vela_q8;     // quantized wire tiers, vela placement
  RunningStat vela_head, vela_tail;  // first/last window (drift check)
};

// One Fig. 5 setting: per-step cross-node MB/node for the four systems plus
// the two wire tiers, one CSV row per step. The routing decisions of every
// step are sampled once and fed to all systems, so series differ purely by
// placement (and, for the tier columns, bytes/token).
inline Fig5SettingStats emit_fig5_setting(
    const Setting& setting, const cluster::ClusterTopology& topology,
    CsvWriter& csv, std::size_t steps, std::size_t tokens_per_step,
    bool print_progress = false) {
  SettingRuntime runtime(setting);
  const auto problem = make_problem(setting, topology, runtime.probability);
  StrategySet placements = make_placements(problem, setting.seed + 99);

  core::VelaTrafficModelConfig vt_cfg;
  vt_cfg.bytes_per_token = setting.model.bytes_per_token();
  core::VelaTrafficModel vela_model(&topology, vt_cfg);

  core::VelaTrafficModelConfig f16_cfg = vt_cfg;
  f16_cfg.bytes_per_token = f16_bytes_per_token(setting.model);
  core::VelaTrafficModel f16_model(&topology, f16_cfg);
  core::VelaTrafficModelConfig q8_cfg = vt_cfg;
  q8_cfg.bytes_per_token = q8_bytes_per_token(setting.model);
  core::VelaTrafficModel q8_model(&topology, q8_cfg);

  ep::EpConfig ep_cfg;
  ep_cfg.bytes_per_token = setting.model.bytes_per_token();
  ep_cfg.backbone_grad_bytes = backbone_lora_grad_bytes(setting.model);
  ep::ExpertParallelModel ep_model(&topology, ep_cfg);

  const double nodes = static_cast<double>(topology.num_nodes());
  const std::size_t window = std::min<std::size_t>(100, steps);
  Fig5SettingStats stats;
  for (std::size_t step = 0; step < steps; ++step) {
    const auto plans = runtime.router.sample_step(tokens_per_step);
    const double seq_mb =
        double(vela_model.external_bytes(
            vela_model.account_step(plans, placements.sequential))) /
        1e6 / nodes;
    const double rnd_mb =
        double(vela_model.external_bytes(
            vela_model.account_step(plans, placements.random))) /
        1e6 / nodes;
    const double vela_mb =
        double(vela_model.external_bytes(
            vela_model.account_step(plans, placements.vela))) /
        1e6 / nodes;
    const double ep_mb =
        double(ep_model.external_bytes(ep_model.account_step(plans))) / 1e6 /
        nodes;
    const double f16_mb =
        double(f16_model.external_bytes(
            f16_model.account_step(plans, placements.vela))) /
        1e6 / nodes;
    const double q8_mb =
        double(q8_model.external_bytes(
            q8_model.account_step(plans, placements.vela))) /
        1e6 / nodes;
    stats.seq.add(seq_mb);
    stats.rnd.add(rnd_mb);
    stats.vela.add(vela_mb);
    stats.ep.add(ep_mb);
    stats.vela_f16.add(f16_mb);
    stats.vela_q8.add(q8_mb);
    if (step < window) stats.vela_head.add(vela_mb);
    if (step + window >= steps) stats.vela_tail.add(vela_mb);
    csv.row(cells(setting.name, step, seq_mb, rnd_mb, vela_mb, ep_mb, f16_mb,
                  q8_mb));
    if (print_progress && (step % 100 == 0 || step == steps - 1)) {
      std::printf("%-6zu %12.1f %12.1f %12.1f %12.1f %12.1f\n", step, seq_mb,
                  rnd_mb, vela_mb, ep_mb, q8_mb);
    }
  }
  return stats;
}

struct Fig6SettingStats {
  RunningStat ep, seq, rnd, vela, vela_overlap;
  RunningStat vela_f16, vela_q8;  // quantized wire tiers, vela placement
};

// One Fig. 6 setting: mean modeled step time of the four systems plus the
// vela+overlap series — the SAME vela byte record pushed through the
// overlap-pipelined clock at depth `overlap_chunks` (byte counts are
// invariant in the pipeline depth; only the step-time model changes) — and
// the two wire-tier series (vela placement, fp16/int8 bytes, no overlap).
inline Fig6SettingStats emit_fig6_setting(
    const Setting& setting, const cluster::ClusterTopology& topology,
    CsvWriter& csv, std::size_t steps, std::size_t tokens_per_step,
    double compute_seconds, std::size_t overlap_chunks) {
  SettingRuntime runtime(setting);
  const auto problem = make_problem(setting, topology, runtime.probability);
  StrategySet placements = make_placements(problem, setting.seed + 99);

  core::VelaTrafficModelConfig vt_cfg;
  vt_cfg.bytes_per_token = setting.model.bytes_per_token();
  core::VelaTrafficModel vela_model(&topology, vt_cfg);

  core::VelaTrafficModelConfig f16_cfg = vt_cfg;
  f16_cfg.bytes_per_token = f16_bytes_per_token(setting.model);
  core::VelaTrafficModel f16_model(&topology, f16_cfg);
  core::VelaTrafficModelConfig q8_cfg = vt_cfg;
  q8_cfg.bytes_per_token = q8_bytes_per_token(setting.model);
  core::VelaTrafficModel q8_model(&topology, q8_cfg);

  ep::EpConfig ep_cfg;
  ep_cfg.bytes_per_token = setting.model.bytes_per_token();
  ep_cfg.backbone_grad_bytes = backbone_lora_grad_bytes(setting.model);
  ep::ExpertParallelModel ep_model(&topology, ep_cfg);

  comm::CommClockConfig clock_cfg;
  clock_cfg.compute_seconds = compute_seconds;
  comm::CommClock clock(&topology, clock_cfg);

  Fig6SettingStats stats;
  for (std::size_t step = 0; step < steps; ++step) {
    const auto plans = runtime.router.sample_step(tokens_per_step);
    stats.seq.add(clock.vela_step_seconds(
        vela_model.account_step(plans, placements.sequential)));
    stats.rnd.add(clock.vela_step_seconds(
        vela_model.account_step(plans, placements.random)));
    const comm::VelaStepRecord vela_record =
        vela_model.account_step(plans, placements.vela);
    const core::ModeledStepTimes times =
        core::modeled_step_times(clock, vela_record, overlap_chunks);
    stats.vela.add(times.sequential_s);
    stats.vela_overlap.add(times.overlap_s);
    stats.ep.add(clock.ep_step_seconds(ep_model.account_step(plans)));
    stats.vela_f16.add(clock.vela_step_seconds(
        f16_model.account_step(plans, placements.vela)));
    stats.vela_q8.add(clock.vela_step_seconds(
        q8_model.account_step(plans, placements.vela)));
  }
  csv.row(cells(setting.name, stats.ep.mean(), stats.seq.mean(),
                stats.rnd.mean(), stats.vela.mean(), stats.vela_overlap.mean(),
                stats.vela_f16.mean(), stats.vela_q8.mean()));
  return stats;
}

}  // namespace vela::bench
