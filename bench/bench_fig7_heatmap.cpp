// Reproduces Fig. 7: the 32-layer × 8-expert access-frequency heat map of
// Mixtral on the WikiText-like vs Alpaca-like corpora.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace vela;
using namespace vela::bench;

namespace {

char shade(double v, double vmax) {
  static const char kRamp[] = " .:-=+*#%@";
  const int idx = std::min<int>(9, static_cast<int>(10.0 * v / vmax));
  return kRamp[std::max(idx, 0)];
}

void run_setting(const Setting& setting, CsvWriter& csv) {
  SettingRuntime runtime(setting);
  const Tensor& p = runtime.probability;

  float vmax = 0.0f;
  for (std::size_t i = 0; i < p.size(); ++i) vmax = std::max(vmax, p[i]);

  std::printf("\n--- %s (brighter = hotter, max=%.2f) ---\n",
              setting.name.c_str(), vmax);
  std::printf("expert\\layer 1..%zu\n", p.rows());
  for (std::size_t e = 0; e < p.cols(); ++e) {
    std::printf("  e%zu |", e + 1);
    for (std::size_t l = 0; l < p.rows(); ++l) {
      std::printf("%c", shade(p.at(l, e), vmax));
      csv.row({setting.name, std::to_string(l + 1), std::to_string(e + 1),
               std::to_string(p.at(l, e))});
    }
    std::printf("|\n");
  }

  // Concentration metrics: the quantity that decides how much VELA gains.
  double mean_entropy = 0.0;
  RunningStat hottest;
  for (std::size_t l = 0; l < p.rows(); ++l) {
    std::vector<double> dist;
    double mx = 0.0;
    for (std::size_t e = 0; e < p.cols(); ++e) {
      dist.push_back(p.at(l, e) / 2.0);  // normalize top-2 rows to 1
      mx = std::max(mx, double(p.at(l, e)));
    }
    mean_entropy += entropy(dist);
    hottest.add(mx);
  }
  mean_entropy /= double(p.rows());
  std::printf("  mean per-layer routing entropy: %.3f nats "
              "(uniform would be %.3f)\n",
              mean_entropy, std::log(double(p.cols())));
  std::printf("  mean hottest-expert frequency:  %.3f\n", hottest.mean());
}

}  // namespace

int main() {
  std::printf("=== Fig. 7: expert access frequency heat maps (Mixtral) ===\n");
  CsvWriter csv("fig7_heatmap.csv", {"setting", "layer", "expert", "frequency"});
  auto settings = paper_settings();
  // Fig. 7 shows Mixtral only; keep the two Mixtral settings.
  run_setting(settings[0], csv);  // wikitext-like
  run_setting(settings[1], csv);  // alpaca-like

  SettingRuntime wiki(settings[0]);
  SettingRuntime alpaca(settings[1]);
  double wiki_entropy = 0.0, alpaca_entropy = 0.0;
  for (std::size_t l = 0; l < wiki.probability.rows(); ++l) {
    std::vector<double> wd, ad;
    for (std::size_t e = 0; e < wiki.probability.cols(); ++e) {
      wd.push_back(wiki.probability.at(l, e) / 2.0);
      ad.push_back(alpaca.probability.at(l, e) / 2.0);
    }
    wiki_entropy += entropy(wd);
    alpaca_entropy += entropy(ad);
  }
  std::printf("\n=> WikiText-like routing entropy %.3f < Alpaca-like %.3f:\n"
              "   WikiText concentrates access on hot experts (large bright\n"
              "   areas), Alpaca spreads it — matching Fig. 7's contrast and\n"
              "   explaining why VELA gains more on WikiText (§V-B).\n",
              wiki_entropy / double(wiki.probability.rows()),
              alpaca_entropy / double(alpaca.probability.rows()));
  std::printf("\nCSV written: fig7_heatmap.csv\n");
  return 0;
}
