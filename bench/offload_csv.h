// Shared emitter for the bounded-memory expert-store sweep (DESIGN.md §15).
//
// Both bench_micro (which also folds the same points into
// bench_offload.json) and the golden-file regression test
// (tests/test_offload_golden.cpp) run the thrash-vs-replicate scenario
// through this emitter, so the schema, row order and cell formatting cannot
// drift from what tests/golden/offload_tiny.csv pins.
//
// The scenario: one worker hosts kOffloadExperts experts but only `budget`
// resident slots, and the step loop touches experts along a Zipf-distributed
// trace (hot experts dominate, exactly the skew the locality placement
// exploits). Every (policy, budget) cell answers the capacity-planning
// question the store poses: keep the budget and pay the paging thrash every
// step, or replicate the over-budget experts onto a sibling worker and pay
// their images' one-time shipping cost. Every cell is deterministic — the
// trace comes from the seeded Rng, paging bytes from the store's own
// counters, and no wall-clock value is emitted.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "csv_cells.h"
#include "nn/expert.h"
#include "nn/optimizer.h"
#include "store/paged_store.h"
#include "util/csv.h"
#include "util/rng.h"

namespace vela::bench {

// Fixed sweep geometry, shared by the CSV golden and bench_offload.json.
constexpr std::uint32_t kOffloadExperts = 8;
constexpr int kOffloadTouches = 256;
constexpr double kOffloadZipfS = 1.2;
constexpr std::uint64_t kOffloadTraceSeed = 17;

inline const std::vector<std::string>& offload_columns() {
  static const std::vector<std::string> cols = {
      "setting",       "policy",       "budget",
      "hit_rate",      "page_out_mb",  "page_in_mb",
      "thrash_mb",     "replicate_once_mb"};
  return cols;
}

inline const std::vector<std::pair<std::string, store::EvictionPolicy>>&
offload_policies() {
  static const std::vector<std::pair<std::string, store::EvictionPolicy>>
      policies = {{"locality", store::EvictionPolicy::kLocality},
                  {"lru", store::EvictionPolicy::kLru},
                  {"fifo", store::EvictionPolicy::kFifo}};
  return policies;
}

// The expert shape under test: small enough that a full sweep is
// seconds-scale, real enough (LoRA adapters + AdamW moments) that paged
// images carry every section the production store spills.
inline store::SlotFactory offload_factory() {
  return [](const store::ExpertKey& key) {
    Rng rng(nn::expert_seed(3, key.layer, key.expert));
    store::ExpertSlot slot;
    slot.expert = std::make_unique<nn::SwiGLUExpert>(
        "layer" + std::to_string(key.layer) + ".expert" +
            std::to_string(key.expert),
        8, 16, nn::LoRAConfig{2, 4.0f, true}, rng);
    slot.optimizer = std::make_unique<nn::AdamW>(
        slot.expert->trainable_parameters(), nn::AdamWConfig{});
    return slot;
  };
}

// The Zipf access trace: expert e is touched with weight 1/(e+1)^s, the
// same skew the locality priorities encode — so "locality" gets the true
// long-run frequencies, exactly what the placement layer derives from its
// routing statistics.
inline std::vector<std::uint32_t> offload_trace() {
  Rng rng(kOffloadTraceSeed);
  std::vector<std::uint32_t> trace;
  trace.reserve(kOffloadTouches);
  for (int i = 0; i < kOffloadTouches; ++i) {
    trace.push_back(
        static_cast<std::uint32_t>(rng.zipf(kOffloadExperts, kOffloadZipfS)));
  }
  return trace;
}

struct OffloadPoint {
  std::string policy;
  long long budget = 0;
  double hit_rate = 0.0;
  double page_out_mb = 0.0;
  double page_in_mb = 0.0;
  double thrash_mb = 0.0;          // page_out + page_in over the whole trace
  double replicate_once_mb = 0.0;  // ship the over-budget images once instead
};

// Replays the trace against a PagedStore at one (policy, budget) cell.
inline OffloadPoint run_offload_replay(const std::string& policy_name,
                                       store::EvictionPolicy policy,
                                       long long budget,
                                       const std::string& dir) {
  store::StoreConfig cfg;
  cfg.budget = budget;
  cfg.dir = dir;
  cfg.dtype = store::StoreDtype::kFp32;
  cfg.policy = policy;
  store::PagedStore s(cfg, offload_factory());
  std::vector<std::pair<store::ExpertKey, float>> prios;
  for (std::uint32_t e = 0; e < kOffloadExperts; ++e) {
    prios.emplace_back(
        store::ExpertKey{0, e},
        static_cast<float>(1.0 / std::pow(double(e) + 1.0, kOffloadZipfS)));
  }
  s.set_priorities(prios);
  for (std::uint32_t e = 0; e < kOffloadExperts; ++e) s.emplace({0, e});
  for (const std::uint32_t e : offload_trace()) {
    s.pin({0, e});
    s.unpin({0, e});
  }
  const store::StoreStats st = s.stats();
  constexpr double kMb = 1024.0 * 1024.0;
  OffloadPoint p;
  p.policy = policy_name;
  p.budget = budget;
  const std::uint64_t pins = st.hits + st.misses;
  p.hit_rate = pins == 0 ? 0.0 : double(st.hits) / double(pins);
  p.page_out_mb = double(st.page_out_bytes) / kMb;
  p.page_in_mb = double(st.page_in_bytes) / kMb;
  p.thrash_mb = p.page_out_mb + p.page_in_mb;
  // One paged image's size, measured from the store's own spill counters
  // (images are uniform here: same shape, no accumulated gradients).
  const double image_mb = st.evictions == 0
                              ? 0.0
                              : double(st.page_out_bytes) /
                                    double(st.evictions) / kMb;
  const long long over = static_cast<long long>(kOffloadExperts) - budget;
  p.replicate_once_mb = over > 0 ? double(over) * image_mb : 0.0;
  return p;
}

// The full sweep in deterministic row order: policy-major, budget-minor.
inline std::vector<OffloadPoint> run_offload_sweep(const std::string& dir) {
  std::vector<OffloadPoint> points;
  for (const auto& [name, policy] : offload_policies()) {
    for (const long long budget : {1LL, 2LL, 3LL, 4LL, 6LL}) {
      points.push_back(run_offload_replay(name, policy, budget, dir));
    }
  }
  return points;
}

inline std::vector<OffloadPoint> emit_offload_sweep(
    const std::string& setting_name, CsvWriter& csv, const std::string& dir) {
  const std::vector<OffloadPoint> points = run_offload_sweep(dir);
  for (const OffloadPoint& p : points) {
    csv.row(cells(setting_name, p.policy, p.budget, p.hit_rate, p.page_out_mb,
                  p.page_in_mb, p.thrash_mb, p.replicate_once_mb));
  }
  return points;
}

}  // namespace vela::bench
