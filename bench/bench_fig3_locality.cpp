// Reproduces Fig. 3 (§III): expert locality in a TinyMistral-like model on a
// Tiny-Shakespeare-like corpus.
//
//   (a) per-(layer, expert) access frequency of the pre-trained model;
//   (b) CDF of the summed softmax scores of the selected experts (block 1);
//   (c) per-expert access frequency of block 1 over 300 fine-tuning steps.
#include <cstdio>
#include <memory>

#include "core/profiler.h"
#include "data/batch.h"
#include "model/router_planting.h"
#include "moe/moe_block.h"
#include "nn/optimizer.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace vela;

int main() {
  model::ModelConfig cfg = model::ModelConfig::tiny_mistral();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::shakespeare_like(cfg.vocab, 6), 2024);
  moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                  cfg.model_dim, cfg.hidden_dim, cfg.lora, 11);
  Rng rng(7);
  model::MoETransformer model(cfg, &backend, rng);
  model::plant_locality(model, corpus, model::PlantingConfig{});

  std::printf("=== Fig. 3: expert locality in fine-tuning (%s) ===\n",
              cfg.to_string().c_str());

  // ---- (a) pre-fine-tuning access frequency --------------------------------
  const auto dataset = corpus.make_dataset(64, 24);
  auto stats = core::profile_expert_access(model, dataset, 8);
  std::printf("\n[Fig 3a] expert access frequency per MoE block "
              "(rows sum to top-k = %zu)\n", cfg.top_k);
  std::printf("%-6s", "layer");
  for (std::size_t e = 0; e < cfg.num_experts; ++e) {
    std::printf("  exp%zu ", e + 1);
  }
  std::printf("\n");
  CsvWriter csv_a("fig3a_access_frequency.csv",
                  {"layer", "expert", "frequency"});
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    std::printf("%-6zu", l + 1);
    for (std::size_t e = 0; e < cfg.num_experts; ++e) {
      const double f = stats.frequency(l, e);
      std::printf(" %5.3f ", f);
      csv_a.row({double(l + 1), double(e + 1), f});
    }
    std::printf("\n");
  }

  // ---- (b) CDF of selected softmax score sums (block 1) --------------------
  const auto& sums = stats.score_sums(0);
  std::vector<double> values(sums.begin(), sums.end());
  std::printf("\n[Fig 3b] CDF of softmax score sums of selected experts "
              "(block 1, %zu tokens)\n", values.size());
  CsvWriter csv_b("fig3b_score_cdf.csv", {"score", "cdf"});
  std::size_t above_half = 0, above_07 = 0;
  for (double v : values) {
    if (v > 0.5) ++above_half;
    if (v > 0.7) ++above_07;
  }
  for (double x = 0.30; x <= 1.001; x += 0.05) {
    const double cdf = empirical_cdf(values, {x})[0];
    std::printf("  score <= %.2f : %5.1f%%\n", x, 100.0 * cdf);
    csv_b.row({x, cdf});
  }
  std::printf("  fraction of tokens with score sum > 0.5: %.1f%% "
              "(paper: ~100%%)\n",
              100.0 * double(above_half) / double(values.size()));
  std::printf("  fraction of tokens with score sum > 0.7: %.1f%% "
              "(paper: >60%%)\n",
              100.0 * double(above_07) / double(values.size()));

  // ---- (c) access frequency of block 1 during fine-tuning ------------------
  const int kSteps = 300;
  std::printf("\n[Fig 3c] block-1 expert access frequency over %d "
              "fine-tuning steps (every 30th shown)\n", kSteps);
  std::vector<nn::Parameter> params = model.trainable_parameters();
  for (const auto& p : backend.trainable_parameters()) params.push_back(p);
  nn::AdamW adam(params, nn::AdamWConfig{});
  data::BatchIterator batches(dataset, 8, 5);
  moe::FrequencyTimeline timeline(cfg.num_experts);

  CsvWriter csv_c("fig3c_frequency_timeline.csv",
                  {"step", "expert", "frequency"});
  for (int step = 0; step < kSteps; ++step) {
    adam.zero_grad();
    ag::Variable loss = model.loss_batch(batches.next());
    timeline.record_step(model.block(0).last_plan());
    ag::backward(loss);
    adam.step();
    const auto& freq = timeline.step(timeline.num_steps() - 1);
    for (std::size_t e = 0; e < cfg.num_experts; ++e) {
      csv_c.row({double(step), double(e + 1), freq[e]});
    }
    if (step % 30 == 0) {
      std::printf("  step %3d :", step);
      for (double f : freq) std::printf(" %5.3f", f);
      std::printf("  (loss %.4f)\n", loss.value()[0]);
    }
  }
  // Drift verdict: compare each expert's mean frequency over the first and
  // last 50 steps (windowing cancels per-batch sampling noise; single-step
  // max-drift would mostly measure the batch size).
  const std::size_t kWindow = 50;
  std::printf("\n  per-expert frequency shift, first-%zu vs last-%zu steps:\n  ",
              kWindow, kWindow);
  double max_shift = 0.0;
  for (std::size_t e = 0; e < cfg.num_experts; ++e) {
    double head = 0.0, tail = 0.0;
    for (std::size_t s = 0; s < kWindow; ++s) {
      head += timeline.step(s)[e];
      tail += timeline.step(timeline.num_steps() - 1 - s)[e];
    }
    const double shift = (tail - head) / double(kWindow);
    std::printf("%+.3f ", shift);
    max_shift = std::max(max_shift, std::abs(shift));
  }
  std::printf("\n  => locality %s over fine-tuning (paper: stable, popular "
              "experts drift slightly up)\n",
              max_shift < 0.1 ? "STABLE" : "UNSTABLE");
  std::printf("\nCSV written: fig3a_access_frequency.csv, "
              "fig3b_score_cdf.csv, fig3c_frequency_timeline.csv\n");
  return 0;
}
