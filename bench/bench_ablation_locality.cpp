// Ablation A3: how much locality VELA needs. Sweeps the concentration of the
// expert-access distribution (Zipf exponent of expert popularity and routing
// noise) and reports the communication gain over sequential placement —
// quantifying §V-B's observation that VELA gains more on concentrated
// WikiText than on flat Alpaca.
#include <cstdio>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace vela;
using namespace vela::bench;

int main() {
  std::printf("=== Ablation A3: gain as a function of expert locality ===\n");
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  CsvWriter csv("ablation_locality.csv",
                {"zipf", "noise", "entropy", "gain_vs_seq_pct"});

  std::printf("\n%-8s %-8s %14s %22s\n", "zipf", "noise", "route entropy",
              "Vela vs Seq comm gain");
  for (double zipf : {0.0, 0.3, 0.6, 0.9, 1.2, 1.5, 2.0}) {
    for (double noise : {0.02, 0.10, 0.25}) {
      Setting s = paper_settings()[0];
      s.popularity_zipf = zipf;
      s.routing_noise = noise;
      s.seed = 500 + static_cast<std::uint64_t>(zipf * 10 + noise * 100);
      SettingRuntime runtime(s);
      auto problem = make_problem(s, topology, runtime.probability);

      double mean_entropy = 0.0;
      for (std::size_t l = 0; l < problem.num_layers; ++l) {
        std::vector<double> dist;
        for (std::size_t e = 0; e < problem.num_experts; ++e) {
          dist.push_back(runtime.probability.at(l, e) / 2.0);
        }
        mean_entropy += entropy(dist);
      }
      mean_entropy /= double(problem.num_layers);

      placement::SequentialPlacement seq;
      placement::LocalityAwarePlacement la;
      const double t_seq =
          placement::expected_comm_seconds(problem, seq.place(problem));
      const double t_vela =
          placement::expected_comm_seconds(problem, la.place(problem));
      const double gain = 100.0 * (1.0 - t_vela / t_seq);
      std::printf("%-8.1f %-8.2f %14.3f %21.1f%%\n", zipf, noise, mean_entropy,
                  gain);
      csv.row({zipf, noise, mean_entropy, gain});
    }
  }
  std::printf("\n=> gains grow monotonically with routing concentration\n"
              "   (lower entropy); with uniform routing (zipf 0, high noise)\n"
              "   locality-aware placement converges to the baselines —\n"
              "   exactly the WikiText-vs-Alpaca contrast of Fig. 5/7.\n");
  std::printf("CSV written: ablation_locality.csv\n");
  return 0;
}
