// Ablation A2: sensitivity of VELA's gain to (a) the cross-node bandwidth
// ratio and (b) the worker capacity slack — the two environmental knobs the
// paper's testbed fixes.
#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"

using namespace vela;
using namespace vela::bench;

namespace {

double gain_vs_sequential(const Setting& setting,
                          const cluster::ClusterTopology& topology,
                          double capacity_slack) {
  SettingRuntime runtime(setting);
  auto problem =
      make_problem(setting, topology, runtime.probability, capacity_slack);
  placement::SequentialPlacement seq;
  placement::LocalityAwarePlacement la;
  const double t_seq =
      placement::expected_comm_seconds(problem, seq.place(problem));
  const double t_vela =
      placement::expected_comm_seconds(problem, la.place(problem));
  return 100.0 * (1.0 - t_vela / t_seq);
}

}  // namespace

int main() {
  std::printf("=== Ablation A2: environment sensitivity ===\n");
  Setting setting = paper_settings()[0];  // mixtral + wikitext-like

  std::printf("\n[a] cross-node bandwidth sweep (intra fixed at 18.3 GB/s, "
              "slack 1.34)\n");
  std::printf("%-16s %20s\n", "cross (GB/s)", "Vela vs Seq comm gain");
  for (double cross : {0.2, 0.5, 1.17, 3.0, 9.0, 18.3}) {
    cluster::ClusterConfig cfg = cluster::ClusterConfig::paper_testbed();
    cfg.cross_node_gbps = cross;
    cluster::ClusterTopology topology(cfg);
    std::printf("%-16.2f %19.1f%%\n", cross,
                gain_vs_sequential(setting, topology, 1.34));
  }
  std::printf("=> the heterogeneity between links is what VELA exploits; as\n"
              "   the network approaches uniformity the gain shrinks.\n");

  std::printf("\n[b] capacity slack sweep (paper testbed bandwidths)\n");
  std::printf("%-16s %20s\n", "slack factor", "Vela vs Seq comm gain");
  cluster::ClusterTopology paper(cluster::ClusterConfig::paper_testbed());
  for (double slack : {1.0, 1.1, 1.25, 1.5, 2.0, 3.0}) {
    std::printf("%-16.2f %19.1f%%\n", slack,
                gain_vs_sequential(setting, paper, slack));
  }
  std::printf("=> more spare GPU memory lets the LP pack hot experts onto\n"
              "   fast workers; at slack 1.0 every worker is full and the\n"
              "   placement can only permute, not concentrate.\n");

  std::printf("\n[c] number of nodes sweep (2 GPUs each, slack 1.34)\n");
  std::printf("%-16s %20s\n", "nodes", "Vela vs Seq comm gain");
  for (std::size_t nodes : {2ul, 3ul, 4ul, 6ul}) {
    cluster::ClusterConfig cfg = cluster::ClusterConfig::paper_testbed();
    cfg.num_nodes = nodes;
    cluster::ClusterTopology topology(cfg);
    std::printf("%-16zu %19.1f%%\n", nodes,
                gain_vs_sequential(setting, topology, 1.34));
  }
  return 0;
}
