// Micro-benchmarks (google-benchmark) of the substrates: tensor kernels,
// autograd, the gate, the simplex solver, endpoints, and the end-to-end
// distributed tiny-model training step.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "bench_common.h"
#include "offload_csv.h"
#include "comm/comm_clock.h"
#include "comm/endpoint.h"
#include "core/step_simulator.h"
#include "core/vela_system.h"
#include "data/corpus.h"
#include "moe/gate.h"
#include "moe/moe_block.h"
#include "nn/expert.h"
#include "placement/locality_aware.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace vela;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = ops::randn({n, n}, rng);
  Tensor b = ops::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  Tensor logits = ops::randn({512, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::softmax_rows(logits));
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_AutogradBackwardChain(benchmark::State& state) {
  for (auto _ : state) {
    ag::Variable x = ag::Variable::leaf(Tensor::ones({64}), true);
    ag::Variable y = x;
    for (int i = 0; i < 64; ++i) y = ag::scale(y, 1.0f);
    ag::backward(ag::sum(y));
    benchmark::DoNotOptimize(x.grad());
  }
}
BENCHMARK(BM_AutogradBackwardChain);

void BM_GateRouting(benchmark::State& state) {
  Rng rng(3);
  moe::TopKGate gate("g", 64, 8, 2, rng);
  Rng xr(4);
  Tensor x = ops::randn({1024, 64}, xr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gate.forward(ag::Variable::constant(x)));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1024);
}
BENCHMARK(BM_GateRouting);

void BM_EndpointRoundTrip(benchmark::State& state) {
  const auto kind = state.range(0) == 0 ? comm::TransportKind::kInProc
                                        : comm::TransportKind::kSocket;
  // vela-lint: allow(direct-transport) -- benchmarks pin the backend by hand
  comm::Endpoint ch(kind, 0, 0, nullptr);
  Tensor payload({64, 64});
  for (auto _ : state) {
    comm::Message msg;
    msg.payload = payload;
    ch.send(std::move(msg));
    benchmark::DoNotOptimize(ch.receive());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * 64 * 64 * 4);
}
BENCHMARK(BM_EndpointRoundTrip)->Arg(0)->Arg(1);

void BM_SimplexPlacementLp(benchmark::State& state) {
  const auto layers = static_cast<std::size_t>(state.range(0));
  placement::PlacementProblem p;
  p.num_workers = 6;
  p.num_layers = layers;
  p.num_experts = 8;
  Rng rng(5);
  p.probability = ops::rand_uniform({layers, 8}, rng, 0.01f, 1.0f);
  for (std::size_t w = 0; w < 6; ++w) {
    p.bandwidth.push_back(w < 2 ? 18.3e9 : 1.17e9);
    p.worker_node.push_back(w / 2);
  }
  p.capacity.assign(6, (layers * 8) / 6 + 3);
  p.tokens_per_step = 2048;
  p.bytes_per_token = 8192;
  for (auto _ : state) {
    placement::LocalityAwarePlacement la;
    benchmark::DoNotOptimize(la.place(p));
  }
}
BENCHMARK(BM_SimplexPlacementLp)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_DistributedTrainStep(benchmark::State& state) {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 7;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 9);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(4, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vela.train_step(batch));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 4 * 7);
}
BENCHMARK(BM_DistributedTrainStep)->Unit(benchmark::kMillisecond);

void BM_DenseMoEBlockForward(benchmark::State& state) {
  Rng rng(8);
  moe::LocalExpertBackend backend(1, 8, 64, 128, nn::LoRAConfig{8, 16.0f, true},
                                  3);
  moe::MoEBlock block("b", 0, 64, 8, 2, rng, &backend);
  Rng xr(9);
  Tensor x = ops::randn({256, 64}, xr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.forward(ag::Variable::constant(x)));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 256);
}
BENCHMARK(BM_DenseMoEBlockForward);

// --- threads-vs-throughput sweep --------------------------------------------
// The same kernels at pool sizes 1/2/4/8 (results are bit-identical across
// sizes; only wall-clock may change). Registered as google-benchmark cases
// and, in main(), re-run as a manual timed sweep that emits
// bench_parallel.json for the scaling record.

void BM_MatmulThreads(benchmark::State& state) {
  util::ThreadPool::set_global_threads(
      static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 256;
  Rng rng(1);
  Tensor a = ops::randn({n, n}, rng);
  Tensor b = ops::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * n * n * n);
  util::ThreadPool::set_global_threads(0);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ExpertForwardThreads(benchmark::State& state) {
  util::ThreadPool::set_global_threads(
      static_cast<std::size_t>(state.range(0)));
  Rng rng(6);
  nn::SwiGLUExpert expert("bench.expert", 64, 128, nn::LoRAConfig{}, rng);
  Rng xr(7);
  Tensor x = ops::randn({256, 64}, xr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expert.forward(ag::Variable::constant(x)));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 256);
  util::ThreadPool::set_global_threads(0);
}
BENCHMARK(BM_ExpertForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Times `iters` calls of `fn` and returns seconds elapsed.
template <typename Fn>
double time_calls(int iters, const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

void write_bench_parallel_json() {
  const std::size_t kMat = 256;
  Rng rng(1);
  const Tensor a = ops::randn({kMat, kMat}, rng);
  const Tensor b = ops::randn({kMat, kMat}, rng);
  Rng er(6);
  const nn::SwiGLUExpert expert("sweep.expert", 64, 128, nn::LoRAConfig{}, er);
  Rng xr(7);
  const Tensor x = ops::randn({256, 64}, xr);

  struct Point {
    std::size_t threads;
    double matmul_gflops;
    double expert_tokens_per_s;
  };
  std::vector<Point> points;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    // Warm the pool and the caches before timing.
    ops::matmul(a, b);
    expert.forward(ag::Variable::constant(x));
    const int mat_iters = 20;
    const double mat_s = time_calls(mat_iters, [&] {
      benchmark::DoNotOptimize(ops::matmul(a, b));
    });
    const int fwd_iters = 50;
    const double fwd_s = time_calls(fwd_iters, [&] {
      benchmark::DoNotOptimize(expert.forward(ag::Variable::constant(x)));
    });
    points.push_back(
        {threads,
         2.0 * kMat * kMat * kMat * mat_iters / mat_s / 1e9,
         256.0 * fwd_iters / fwd_s});
  }
  util::ThreadPool::set_global_threads(0);

  std::FILE* f = std::fopen("bench_parallel.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open bench_parallel.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"matmul_n\": %zu,\n  \"sweep\": [\n", kMat);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"matmul_gflops\": %.3f, "
                 "\"matmul_speedup_vs_1\": %.3f, "
                 "\"expert_fwd_tokens_per_s\": %.1f, "
                 "\"expert_fwd_speedup_vs_1\": %.3f}%s\n",
                 p.threads, p.matmul_gflops,
                 p.matmul_gflops / points[0].matmul_gflops,
                 p.expert_tokens_per_s,
                 p.expert_tokens_per_s / points[0].expert_tokens_per_s,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote bench_parallel.json\n");
}

// Modeled step time of the overlap dispatch pipeline (DESIGN.md §8) versus
// pipeline depth K, on one sampled Mixtral-scale step's byte ledger. The
// modeled clock — not wall-clock — is the meaningful quantity here: on a
// CPU dev box (often a single core) the pipeline cannot show real speedup,
// but the byte ledger is measured and the clock is calibrated, exactly as
// for Fig. 6.
void write_bench_overlap_json() {
  using namespace vela::bench;
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  const Setting setting = paper_settings()[0];  // mixtral-wikitext
  SettingRuntime runtime(setting);
  const auto problem = make_problem(setting, topology, runtime.probability);
  StrategySet placements = make_placements(problem, setting.seed + 99);
  core::VelaTrafficModelConfig vt_cfg;
  vt_cfg.bytes_per_token = setting.model.bytes_per_token();
  core::VelaTrafficModel vela_model(&topology, vt_cfg);
  comm::CommClockConfig clock_cfg;
  clock_cfg.compute_seconds = 1.9;  // matches bench_fig6_steptime
  comm::CommClock clock(&topology, clock_cfg);
  const auto plans = runtime.router.sample_step(kTokensPerStep);
  const comm::VelaStepRecord record =
      vela_model.account_step(plans, placements.vela);

  std::FILE* f = std::fopen("bench_overlap.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open bench_overlap.json for writing\n");
    return;
  }
  const double sequential_s = clock.vela_step_seconds(record);
  std::fprintf(f, "{\n  \"setting\": \"%s\",\n", setting.name.c_str());
  std::fprintf(f, "  \"compute_seconds\": %.3f,\n",
               clock_cfg.compute_seconds);
  std::fprintf(f, "  \"sequential_step_seconds\": %.6f,\n  \"sweep\": [\n",
               sequential_s);
  const std::size_t depths[] = {1, 2, 4, 8, 16, 32};
  const std::size_t count = sizeof(depths) / sizeof(depths[0]);
  for (std::size_t i = 0; i < count; ++i) {
    const core::ModeledStepTimes t =
        core::modeled_step_times(clock, record, depths[i]);
    std::fprintf(f,
                 "    {\"chunks\": %zu, \"step_seconds\": %.6f, "
                 "\"speedup_vs_sequential\": %.4f}%s\n",
                 depths[i], t.overlap_s, sequential_s / t.overlap_s,
                 i + 1 < count ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote bench_overlap.json\n");
}

// Bounded-memory expert-store sweep (DESIGN.md §15): the Zipf-trace replay
// from bench/offload_csv.h across eviction policies and resident budgets.
// The headline record: locality-priority admission (fed the trace's true
// long-run frequencies, as the placement layer derives from its routing
// statistics) must beat plain LRU's hit rate on the skewed corpus.
void write_bench_offload_json() {
  using vela::bench::OffloadPoint;
  const std::vector<OffloadPoint> points =
      vela::bench::run_offload_sweep(".");

  std::FILE* f = std::fopen("bench_offload.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open bench_offload.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"experts\": %u,\n", vela::bench::kOffloadExperts);
  std::fprintf(f, "  \"touches\": %d,\n", vela::bench::kOffloadTouches);
  std::fprintf(f, "  \"zipf_s\": %.2f,\n  \"sweep\": [\n",
               vela::bench::kOffloadZipfS);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const OffloadPoint& p = points[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"budget\": %lld, "
                 "\"hit_rate\": %.4f, \"page_out_mb\": %.3f, "
                 "\"page_in_mb\": %.3f, \"thrash_mb\": %.3f, "
                 "\"replicate_once_mb\": %.3f}%s\n",
                 p.policy.c_str(), p.budget, p.hit_rate, p.page_out_mb,
                 p.page_in_mb, p.thrash_mb, p.replicate_once_mb,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote bench_offload.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_parallel_json();
  write_bench_overlap_json();
  write_bench_offload_json();
  return 0;
}
