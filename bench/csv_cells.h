// THE cell-formatting convention for every CSV emitter in bench/.
//
// fig_csv.h, proc_csv.h and degrade_csv.h each used to spell out their own
// std::to_string row assembly — near-duplicates that could drift (a different
// float precision or an unescaped comma in one emitter silently forks the
// schema the golden files pin). All emitters now build rows through cell()/
// cells() below; tests/test_csv_cells.cpp pins the behavior.
//
// Formatting contract (golden-file compatible, byte for byte):
//   * integral types and float/double format exactly as std::to_string —
//     floats fixed with six decimals, the formatting every existing golden
//     CSV was generated with;
//   * strings pass through verbatim unless they contain a comma, quote, CR
//     or LF, in which case they are RFC 4180-quoted (existing series names
//     never trigger this, so goldens are unchanged).
#pragma once

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace vela::bench {

// RFC 4180 quoting, applied only when the cell needs it.
inline std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

inline std::string cell(const std::string& value) { return csv_escape(value); }
inline std::string cell(const char* value) {
  return csv_escape(std::string(value));
}
// Overloads (not a template) so float keeps std::to_string(float)'s exact
// formatting rather than promoting to double.
inline std::string cell(float value) { return std::to_string(value); }
inline std::string cell(double value) { return std::to_string(value); }
template <typename T,
          typename = std::enable_if_t<std::is_integral_v<std::decay_t<T>>>>
std::string cell(T value) {
  return std::to_string(value);
}

// cells(a, b, c, ...) → the row vector CsvWriter::row takes.
template <typename... Ts>
std::vector<std::string> cells(Ts&&... values) {
  return {cell(std::forward<Ts>(values))...};
}

}  // namespace vela::bench
