// Fault-tolerance overhead & recovery-cost study.
//
// Runs the same short fine-tune under increasingly hostile fault plans and
// reports what resilience costs: per-step traffic (recovery bytes included),
// modelled step time (injected delays included), retry-layer activity, and
// the final loss — which stays put whenever the recovery path is lossless.
#include <chrono>
#include <cstdio>

#include "comm/fault_injector.h"
#include "core/vela_system.h"
#include "data/corpus.h"
#include "degrade_csv.h"
#include "util/csv.h"

using namespace vela;

namespace {

constexpr int kSteps = 30;

struct Scenario {
  const char* name;
  bool inject = false;
  comm::FaultPlan plan;
};

core::VelaSystemConfig config() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 3;
  cfg.wire_bits = 32;
  cfg.clock.compute_seconds = 0.5;
  return cfg;
}

void run_scenario(const Scenario& s, CsvWriter& csv) {
  auto cfg = config();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  comm::FaultInjector injector(s.plan);  // must outlive the system
  core::VelaSystem vela(cfg, &corpus);

  core::FaultToleranceConfig ft;
  ft.retry.timeout = std::chrono::milliseconds(60);
  ft.retry.max_retries = 4;
  ft.snapshot_interval = 5;
  vela.enable_fault_tolerance(ft);

  if (s.inject) vela.attach_fault_injector(&injector);

  auto batch = corpus.make_dataset(2, 6);
  const auto t0 = std::chrono::steady_clock::now();
  double traffic_mb = 0.0, recovery_mb = 0.0, step_seconds = 0.0;
  std::size_t retries = 0, recovered = 0, faults = 0;
  float final_loss = 0.0f;
  for (int i = 0; i < kSteps; ++i) {
    const core::StepReport r = vela.train_step(batch);
    traffic_mb += r.external_mb_per_node;
    recovery_mb += r.recovery_mb;
    step_seconds += r.step_seconds;
    retries += r.retries;
    recovered += r.workers_recovered;
    faults += r.faults_injected;
    final_loss = r.loss;
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const core::FaultStats stats = vela.master().fault_stats();

  std::printf(
      "%-14s faults=%-4zu retries=%-2zu respawns=%-2zu retx=%-4llu "
      "traffic=%7.3f MB/node recovery=%6.3f MB step=%6.3f s loss=%.5f "
      "wall=%7.1f ms\n",
      s.name, faults, retries, recovered,
      static_cast<unsigned long long>(stats.retransmissions),
      traffic_mb / kSteps, recovery_mb, step_seconds / kSteps, final_loss,
      wall_ms);
  csv.row(std::vector<std::string>{
      s.name, std::to_string(faults), std::to_string(retries),
      std::to_string(recovered), std::to_string(stats.retransmissions),
      std::to_string(traffic_mb / kSteps), std::to_string(recovery_mb),
      std::to_string(step_seconds / kSteps), std::to_string(final_loss),
      std::to_string(wall_ms)});
}

}  // namespace

int main() {
  Scenario fault_free{"fault-free", false, {}};

  Scenario noise{"light-noise", true, {}};
  noise.plan.drop_rate = 0.004;
  noise.plan.corrupt_rate = 0.004;
  noise.plan.duplicate_rate = 0.01;
  noise.plan.seed = 7;

  Scenario delays{"delays", true, {}};
  delays.plan.delay_rate = 0.02;
  delays.plan.delay_seconds = 0.05;
  delays.plan.seed = 7;

  Scenario crashes{"crashes", true, {}};
  crashes.plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 20, comm::FaultKind::kCrashWorker, 0.0});
  crashes.plan.rules.push_back(
      {3, comm::LinkDir::kToWorker, 200, comm::FaultKind::kCrashWorker, 0.0});

  CsvWriter csv("bench_fault_tolerance.csv",
                {"scenario", "faults", "retries", "respawns",
                 "retransmissions", "traffic_mb_per_node", "recovery_mb",
                 "step_seconds", "final_loss", "wall_ms"});
  std::printf("fault-tolerance cost over %d fine-tune steps\n", kSteps);
  run_scenario(fault_free, csv);
  run_scenario(noise, csv);
  run_scenario(delays, csv);
  run_scenario(crashes, csv);

  // Degrade-and-continue (DESIGN.md §11): a scripted kill with a zero
  // respawn budget shrinks the fleet for good; the per-step recovery CSV
  // is shared with the golden test (tests/test_degrade_golden.cpp).
  CsvWriter degrade_csv("bench_fault_degrade.csv", bench::degrade_columns());
  const bench::DegradeRunStats d = bench::emit_degrade_recovery(
      "tiny-degrade", degrade_csv, kSteps, /*kill_worker=*/1,
      /*kill_message=*/20);
  std::printf(
      "%-14s lost=%zu live=%zu recovery=%6.3f MB loss=%.5f (per-step CSV in "
      "%s)\n",
      "degrade", d.workers_lost, d.live_workers, d.recovery_mb,
      static_cast<double>(d.final_loss), degrade_csv.path().c_str());
  return 0;
}
