// Validates Theorem 1 numerically: ΔP_t(e) ≤ μ·E·L²·P_{t-1}(e)(1−P_{t-1}(e)).
//
// Two experiments:
//   1) a controlled gating model (logits = parameters) where the Lipschitz
//      constant is measured exactly — the bound must hold for every expert
//      on every SGD step;
//   2) the uncertainty-term story: softmax movement under identical logit
//      perturbations as a function of the initial confidence.
#include <cmath>
#include <cstdio>

#include "tensor/ops.h"
#include "util/csv.h"
#include "util/rng.h"

using namespace vela;

int main() {
  std::printf("=== Theorem 1: stability of expert selection ===\n");

  // ---- experiment 1: bound verification -------------------------------------
  const std::size_t kExperts = 8;
  const double kLr = 0.01;
  const int kTrials = 2000;
  Rng rng(404);
  int violations = 0;
  double worst_margin = 1e9, mean_ratio = 0.0;
  std::size_t ratio_count = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Tensor w({1, kExperts});
    for (std::size_t e = 0; e < kExperts; ++e) {
      w.at(0, e) = static_cast<float>(rng.normal(0.0, 1.5));
    }
    const Tensor p0 = ops::softmax_rows(w);
    Tensor grad = p0;
    grad.at(0, rng.uniform_index(kExperts)) -= 1.0f;
    double lips = 0.0;
    for (std::size_t e = 0; e < kExperts; ++e) {
      lips = std::max(lips, std::abs(double(grad.at(0, e))));
    }
    Tensor w1 = w;
    w1.axpy_(-static_cast<float>(kLr), grad);
    const Tensor p1 = ops::softmax_rows(w1);
    for (std::size_t e = 0; e < kExperts; ++e) {
      const double delta = std::abs(double(p1.at(0, e)) - p0.at(0, e));
      const double bound = kLr * kExperts * lips * lips *
                           double(p0.at(0, e)) * (1.0 - p0.at(0, e));
      const double slack = bound + 10.0 * kLr * kLr;
      if (delta > slack) ++violations;
      worst_margin = std::min(worst_margin, slack - delta);
      if (bound > 1e-12) {
        mean_ratio += delta / bound;
        ++ratio_count;
      }
    }
  }
  std::printf("\n[bound check] %d trials x %zu experts, lr=%.3f\n", kTrials,
              kExperts, kLr);
  std::printf("  violations of the Theorem 1 bound: %d\n", violations);
  std::printf("  mean observed ΔP / bound ratio:    %.3f (must be <= 1)\n",
              mean_ratio / double(ratio_count));
  std::printf("  worst margin (slack - ΔP):         %.3e\n", worst_margin);

  // ---- experiment 2: the uncertainty term -----------------------------------
  std::printf("\n[uncertainty term] softmax movement vs initial confidence "
              "(fixed perturbation)\n");
  std::printf("  %-12s %-12s %-12s %-12s\n", "P(top)", "P(1-P)", "ΔP(top)",
              "bound-share");
  CsvWriter csv("theorem1_uncertainty.csv",
                {"p_top", "uncertainty", "delta_p"});
  for (double gap = 0.0; gap <= 8.01; gap += 1.0) {
    Tensor w({1, 4});
    w.at(0, 0) = static_cast<float>(gap);
    const Tensor p0 = ops::softmax_rows(w);
    Tensor perturb = Tensor::from_rows({{-0.05f, 0.05f, -0.02f, 0.02f}});
    const Tensor p1 = ops::softmax_rows(ops::add(w, perturb));
    const double ptop = p0.at(0, 0);
    const double delta = std::abs(double(p1.at(0, 0)) - ptop);
    const double unc = ptop * (1.0 - ptop);
    std::printf("  %-12.4f %-12.4f %-12.5f %-12.3f\n", ptop, unc, delta,
                unc > 0 ? delta / unc : 0.0);
    csv.row({ptop, unc, delta});
  }
  std::printf("\n=> confident selections (P→1) are frozen by the vanishing\n"
              "   uncertainty term — Claim 1 of the paper. CSV: "
              "theorem1_uncertainty.csv\n");
  return violations == 0 ? 0 : 1;
}
